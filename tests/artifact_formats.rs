//! The artifact appendix's CSV formats, exercised across crates: a solver's
//! real output survives the round-trip and stays consistent with the
//! instance it came from.

use qlrb::classical::Greedy;
use qlrb::core::io::{read_input_csv, read_output_csv, write_input_csv, write_output_csv};
use qlrb::core::{Instance, Rebalancer};

#[test]
fn input_roundtrip_through_disk_format() {
    let inst = Instance::uniform(100, vec![1.87, 1.97, 14.86, 103.23]).unwrap();
    let csv = write_input_csv(&inst);
    let back = read_input_csv(&csv).unwrap();
    assert_eq!(back, inst);
    // Rebalancing the parsed instance equals rebalancing the original.
    let a = Greedy.rebalance(&inst).unwrap().matrix;
    let b = Greedy.rebalance(&back).unwrap().matrix;
    assert_eq!(a, b);
}

#[test]
fn solver_output_roundtrips_and_cross_checks() {
    let inst = Instance::uniform(50, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
    let plan = Greedy.rebalance(&inst).unwrap().matrix;
    let csv = write_output_csv(&inst, &plan);
    let back = read_output_csv(&csv).unwrap();
    assert_eq!(back, plan);
    back.validate(&inst).unwrap();
    // The L column in the CSV matches the recomputed loads.
    let loads = plan.new_loads(&inst);
    for (i, line) in csv.lines().skip(1).enumerate() {
        let l: f64 = line.split(',').next_back().unwrap().parse().unwrap();
        assert!((l - loads[i]).abs() < 1e-9, "row {i}");
    }
}

#[test]
fn samoa_instance_serializes_like_any_other() {
    let inst = qlrb::samoa::scenario::LakeScenario::small().to_instance();
    let csv = write_input_csv(&inst);
    let back = read_input_csv(&csv).unwrap();
    assert_eq!(back.num_procs(), inst.num_procs());
    assert_eq!(back.tasks_per_proc(), inst.tasks_per_proc());
    for (a, b) in back.weights().iter().zip(inst.weights()) {
        // Text round-trip is only as exact as float formatting.
        assert!((a - b).abs() < 1e-9);
    }
}
