//! Reproducibility: the paper notes hybrid-solver results are
//! non-deterministic across cloud runs; this implementation is instead
//! fully deterministic under a fixed seed, and seed changes genuinely
//! re-randomize.

use qlrb::core::cqm::Variant;
use qlrb::core::{Instance, Rebalancer};
use qlrb::harness::groups::run_paper_methods;
use qlrb::harness::HarnessConfig;

fn inst() -> Instance {
    Instance::uniform(12, vec![1.0, 3.0, 5.0, 9.0]).unwrap()
}

#[test]
fn full_method_suite_is_deterministic_per_seed() {
    let cfg = HarnessConfig::fast();
    let a = run_paper_methods(&inst(), &cfg, "run");
    let b = run_paper_methods(&inst(), &cfg, "run");
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.algorithm, rb.algorithm);
        assert_eq!(ra.migrated, rb.migrated, "{}", ra.algorithm);
        assert_eq!(ra.r_imb, rb.r_imb, "{}", ra.algorithm);
        assert_eq!(ra.speedup, rb.speedup, "{}", ra.algorithm);
    }
}

#[test]
fn different_seeds_stay_feasible_and_rerandomize_the_sample_set() {
    let inst = inst();
    // The *returned plan* may legitimately coincide across seeds (the best
    // feasible solution can be unique); what must change with the seed is
    // the underlying sample set the solver explored.
    let mut state_sets = Vec::new();
    for seed in 0..4u64 {
        let cfg = HarnessConfig {
            seed,
            ..HarnessConfig::fast()
        };
        let method = cfg.quantum(&inst, Variant::Full, 15, "q");
        let out = method.rebalance(&inst).unwrap();
        out.matrix.validate(&inst).unwrap();
        assert!(out.matrix.num_migrated() <= 15);

        let lrp = qlrb::core::LrpCqm::build(&inst, Variant::Full, 15).unwrap();
        let set = method.solver.solve(&lrp.cqm, &[]);
        state_sets.push(
            set.samples
                .iter()
                .map(|s| s.state.clone())
                .collect::<Vec<_>>(),
        );
    }
    let distinct = state_sets.windows(2).any(|w| w[0] != w[1]);
    assert!(
        distinct,
        "four seeds producing byte-identical sample sets suggests the seed is ignored"
    );
}

#[test]
fn solver_sample_sets_are_byte_identical_per_seed() {
    // Cross-layer check: with a fixed seed and `time_limit: None`, the
    // hybrid solver's *entire sample set* — states, energies, feasibility,
    // sampler attribution — is byte-identical across invocations, and
    // identical whether the CQM was built fresh for the budget or derived
    // from a shared base via `with_budget` (the harness's shared-base path).
    let inst = inst();
    let k = 15;
    let fresh = qlrb::core::LrpCqm::build(&inst, Variant::Reduced, k).unwrap();
    let shared = qlrb::core::LrpCqm::build(&inst, Variant::Reduced, 0)
        .unwrap()
        .with_budget(k);
    let solver = qlrb::anneal::HybridCqmSolver::builder()
        .num_reads(6)
        .sweeps(200)
        .seed(77)
        .time_limit(None)
        .build()
        .unwrap();
    let a = solver.solve(&fresh.cqm, &[]);
    let b = solver.solve(&fresh.cqm, &[]);
    let c = solver.solve(&shared.cqm, &[]);
    for other in [&b, &c] {
        assert_eq!(a.samples.len(), other.samples.len());
        for (sa, sb) in a.samples.iter().zip(&other.samples) {
            assert_eq!(sa.state, sb.state);
            assert_eq!(sa.objective, sb.objective);
            assert_eq!(sa.violation, sb.violation);
            assert_eq!(sa.feasible, sb.feasible);
            assert_eq!(sa.sampler, sb.sampler);
        }
    }
}

#[test]
fn workload_generators_are_pure() {
    let a = qlrb::workloads::imbalance_levels();
    let b = qlrb::workloads::imbalance_levels();
    assert_eq!(a.len(), b.len());
    for ((la, ia), (lb, ib)) in a.iter().zip(&b) {
        assert_eq!(la, lb);
        assert_eq!(ia, ib);
    }
    let s1 = qlrb::samoa::scenario::table5_instance();
    let s2 = qlrb::samoa::scenario::table5_instance();
    assert_eq!(s1, s2);
}
