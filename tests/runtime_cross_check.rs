//! Cross-checks between the analytic metrics (the paper's) and the
//! discrete-event runtime simulator.

use qlrb::classical::{Greedy, KarmarkarKarp, ProactLb};
use qlrb::core::{Instance, Rebalancer};
use qlrb::harness::runtime::execute_plan;
use qlrb::runtime::SimConfig;

fn instance() -> Instance {
    Instance::uniform(30, vec![1.0, 2.5, 4.0, 8.0, 1.5, 3.0]).unwrap()
}

#[test]
fn analytic_simulator_agrees_with_lmax_metric_for_every_method() {
    let inst = instance();
    let methods: Vec<Box<dyn Rebalancer>> = vec![
        Box::new(Greedy),
        Box::new(KarmarkarKarp),
        Box::new(ProactLb),
    ];
    for method in methods {
        let plan = method.rebalance(&inst).unwrap().matrix;
        let cmp = execute_plan(&inst, &plan, &SimConfig::analytic()).expect("valid plan");
        assert!(
            (cmp.analytic_speedup - cmp.achieved_speedup).abs() < 1e-9,
            "{}: analytic {} vs simulated {}",
            method.name(),
            cmp.analytic_speedup,
            cmp.achieved_speedup
        );
    }
}

#[test]
fn migration_heavy_plans_pay_more_communication() {
    let inst = instance();
    let greedy = Greedy.rebalance(&inst).unwrap().matrix;
    let proact = ProactLb.rebalance(&inst).unwrap().matrix;
    assert!(greedy.num_migrated() > proact.num_migrated());
    let cfg = SimConfig {
        comp_threads: 4,
        comm_latency: 0.05,
        comm_cost_per_load: 0.05,
        iterations: 1,
    };
    let g = execute_plan(&inst, &greedy, &cfg).expect("valid plan");
    let p = execute_plan(&inst, &proact, &cfg).expect("valid plan");
    assert!(
        g.migration_comm_time > p.migration_comm_time,
        "more migrations must cost more comm time: {} vs {}",
        g.migration_comm_time,
        p.migration_comm_time
    );
}

#[test]
fn rebalancing_helps_even_with_communication_when_amortized() {
    let inst = instance();
    let plan = ProactLb.rebalance(&inst).unwrap().matrix;
    let cfg = SimConfig {
        comp_threads: 4,
        comm_latency: 0.05,
        comm_cost_per_load: 0.05,
        iterations: 20,
    };
    let cmp = execute_plan(&inst, &plan, &cfg).expect("valid plan");
    assert!(
        cmp.achieved_speedup > 1.2,
        "amortized over 20 iterations rebalancing must win: {}",
        cmp.achieved_speedup
    );
}

#[test]
fn multithreaded_nodes_change_absolute_but_not_relative_ordering() {
    let inst = instance();
    let greedy = Greedy.rebalance(&inst).unwrap().matrix;
    let proact = ProactLb.rebalance(&inst).unwrap().matrix;
    for threads in [1usize, 4, 28] {
        let cfg = SimConfig {
            comp_threads: threads,
            comm_latency: 0.0,
            comm_cost_per_load: 0.0,
            iterations: 1,
        };
        let g = execute_plan(&inst, &greedy, &cfg).expect("valid plan");
        let p = execute_plan(&inst, &proact, &cfg).expect("valid plan");
        // Both beat baseline regardless of per-node parallelism.
        assert!(g.achieved_speedup >= 1.0 - 1e-9, "threads = {threads}");
        assert!(p.achieved_speedup >= 1.0 - 1e-9, "threads = {threads}");
    }
}
