//! End-to-end tests of the `qlrb` CLI binary: the artifact workflow
//! (generate → info → rebalance → simulate) through real process spawns.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qlrb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qlrb"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qlrb-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn full_artifact_workflow() {
    let input = tmpfile("input.csv");
    let plan = tmpfile("plan.csv");

    // generate
    let out = qlrb(&[
        "generate",
        "--workload",
        "mxm-imbalance",
        "--case",
        "Imb.3",
        "--out",
        input.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&input).unwrap();
    assert!(text.starts_with("Process,P1"));

    // info
    let out = qlrb(&["info", "--input", input.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("imbalance ratio"), "{stdout}");
    assert!(stdout.contains("logical qubits"), "{stdout}");

    // rebalance (classical, fast)
    let out = qlrb(&[
        "rebalance",
        "--input",
        input.to_str().unwrap(),
        "--method",
        "proactlb",
        "--out",
        plan.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ProactLB"), "{stdout}");
    assert!(plan.exists());

    // simulate
    let out = qlrb(&[
        "simulate",
        "--input",
        input.to_str().unwrap(),
        "--plan",
        plan.to_str().unwrap(),
        "--iterations",
        "4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("achieved speedup"), "{stdout}");
    assert!(
        stdout.contains('█') || stdout.contains('#'),
        "gantt rendered: {stdout}"
    );
}

#[test]
fn telemetry_manifest_workflow() {
    let input = tmpfile("tele-input.csv");
    let plan = tmpfile("tele-plan.csv");
    let rebalance_manifest = tmpfile("tele-rebalance.json");
    let simulate_manifest = tmpfile("tele-simulate.json");

    let out = qlrb(&[
        "generate",
        "--workload",
        "samoa",
        "--out",
        input.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // rebalance with telemetry: a quantum method records per-read traces.
    let out = qlrb(&[
        "rebalance",
        "--input",
        input.to_str().unwrap(),
        "--method",
        "qcqm1",
        "--k",
        "16",
        "--seed",
        "7",
        "--out",
        plan.to_str().unwrap(),
        "--telemetry",
        rebalance_manifest.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote telemetry manifest"), "{stdout}");
    let manifest = qlrb::telemetry::RunManifest::from_json(
        &std::fs::read_to_string(&rebalance_manifest).unwrap(),
    )
    .expect("manifest parses");
    manifest.validate().expect("manifest validates");
    assert_eq!(manifest.command, "qlrb rebalance");
    let solve = &manifest.cases[0].methods[0].solve;
    assert_eq!(solve.reads.len(), solve.requested_reads);
    assert!(manifest.config.solver.as_ref().unwrap().seed == 7);

    // simulate with telemetry: baseline + rebalanced counters.
    let out = qlrb(&[
        "simulate",
        "--input",
        input.to_str().unwrap(),
        "--plan",
        plan.to_str().unwrap(),
        "--iterations",
        "3",
        "--telemetry",
        simulate_manifest.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest = qlrb::telemetry::RunManifest::from_json(
        &std::fs::read_to_string(&simulate_manifest).unwrap(),
    )
    .unwrap();
    manifest.validate().unwrap();
    let labels: Vec<&str> = manifest.cases.iter().map(|c| c.label.as_str()).collect();
    assert_eq!(labels, vec!["baseline", "rebalanced"]);
    for case in &manifest.cases {
        let sim = case.sim.as_ref().expect("sim counters present");
        assert_eq!(sim.iterations, 3);
    }

    // trace summarize digests both manifests.
    for path in [&rebalance_manifest, &simulate_manifest] {
        let out = qlrb(&["trace", "summarize", "--input", path.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("run manifest"), "{stdout}");
    }
}

#[test]
fn telemetry_rejects_classical_methods() {
    let input = tmpfile("tele-classical.csv");
    let out = qlrb(&[
        "generate",
        "--workload",
        "samoa",
        "--out",
        input.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = qlrb(&[
        "rebalance",
        "--input",
        input.to_str().unwrap(),
        "--method",
        "greedy",
        "--telemetry",
        tmpfile("nope.json").to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("classical"));
}

#[test]
fn fault_plan_workflow() {
    let input = tmpfile("fault-input.csv");
    let plan_json = tmpfile("fault-plan.json");
    let manifest_path = tmpfile("fault-manifest.json");
    let out = qlrb(&[
        "generate",
        "--workload",
        "samoa",
        "--out",
        input.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Every first attempt fails transiently; --max-retries 2 recovers all.
    std::fs::write(&plan_json, r#"[{"fail_attempts": 1, "kind": "transient"}]"#).unwrap();
    let out = qlrb(&[
        "rebalance",
        "--input",
        input.to_str().unwrap(),
        "--method",
        "qcqm1",
        "--k",
        "16",
        "--seed",
        "7",
        "--fault-plan",
        plan_json.to_str().unwrap(),
        "--max-retries",
        "2",
        "--telemetry",
        manifest_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest =
        qlrb::telemetry::RunManifest::from_json(&std::fs::read_to_string(&manifest_path).unwrap())
            .expect("manifest parses");
    manifest.validate().expect("manifest validates");
    let cfg = manifest.config.solver.as_ref().unwrap();
    assert_eq!(cfg.backend, "fault-injection");
    assert_eq!(cfg.max_retries, 2);
    let solve = &manifest.cases[0].methods[0].solve;
    assert!(solve.failed_reads.is_empty(), "every read recovered");
    assert!(solve.reads.iter().all(|r| r.attempts == 2));

    // A malformed plan is rejected with a parse error, not a panic.
    std::fs::write(&plan_json, r#"[{"kind": "exploded"}]"#).unwrap();
    let out = qlrb(&[
        "rebalance",
        "--input",
        input.to_str().unwrap(),
        "--method",
        "qcqm1",
        "--k",
        "16",
        "--fault-plan",
        plan_json.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parsing"));
}

#[test]
fn fault_flags_reject_classical_methods_and_simulate() {
    let input = tmpfile("fault-reject.csv");
    let plan_json = tmpfile("fault-reject-plan.json");
    let out = qlrb(&[
        "generate",
        "--workload",
        "samoa",
        "--out",
        input.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    std::fs::write(&plan_json, "[]").unwrap();

    let out = qlrb(&[
        "rebalance",
        "--input",
        input.to_str().unwrap(),
        "--method",
        "greedy",
        "--fault-plan",
        plan_json.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("classical"));

    let out = qlrb(&[
        "simulate",
        "--input",
        input.to_str().unwrap(),
        "--plan",
        "unused.csv",
        "--max-retries",
        "3",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("sampler backend"));
}

#[test]
fn trace_diff_localizes_and_audit_verifies() {
    let input = tmpfile("diff-input.csv");
    let out = qlrb(&[
        "generate",
        "--workload",
        "samoa",
        "--out",
        input.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let rebalance = |seed: &str, manifest: &PathBuf| {
        let out = qlrb(&[
            "rebalance",
            "--input",
            input.to_str().unwrap(),
            "--method",
            "qcqm1",
            "--k",
            "16",
            "--seed",
            seed,
            "--out",
            tmpfile(&format!("diff-plan-{seed}.csv")).to_str().unwrap(),
            "--telemetry",
            manifest.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    let a = tmpfile("diff-a.json");
    let b = tmpfile("diff-b.json");
    let c = tmpfile("diff-c.json");
    rebalance("7", &a);
    rebalance("7", &b);
    rebalance("8", &c);

    // Identically-seeded replays carry identical traces: exit 0.
    let out = qlrb(&[
        "trace",
        "diff",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("traces identical"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A different seed is a different trace, localized to the first
    // divergent read-level field: exit 1.
    let out = qlrb(&[
        "trace",
        "diff",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("first divergence"), "{stdout}");
    assert!(stdout.contains("read"), "{stdout}");

    // The recorded digest re-derives from the record it seals.
    let out = qlrb(&["audit", "--input", a.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("audit OK"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A record edited after sealing no longer recomputes: audit fails.
    let mut tampered =
        qlrb::telemetry::RunManifest::from_json(&std::fs::read_to_string(&a).unwrap()).unwrap();
    tampered.cases[0].methods[0].solve.reads[0].sweeps += 1;
    let tampered_path = tmpfile("diff-tampered.json");
    std::fs::write(&tampered_path, tampered.to_json_pretty()).unwrap();
    let out = qlrb(&["audit", "--input", tampered_path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("does not recompute"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn lint_json_matches_the_shared_schema() {
    let input = tmpfile("lint-json-input.csv");
    let out = qlrb(&[
        "generate",
        "--workload",
        "mxm-imbalance",
        "--case",
        "Imb.3",
        "--out",
        input.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let out = qlrb(&[
        "lint",
        "--input",
        input.to_str().unwrap(),
        "--variant",
        "qcqm1",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Golden clean document — each variant entry is the same
    // `{errors, warnings, diagnostics}` shape `xtask lint --json` emits
    // via the shared serializer, so downstream tooling can parse either.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.trim_end(),
        "{\n  \"Q_CQM1\": {\n    \"errors\": 0,\n    \"warnings\": 0,\n    \"diagnostics\": []\n  }\n}",
        "{stdout}"
    );
}

#[test]
fn generate_to_stdout_roundtrips() {
    let out = qlrb(&["generate", "--workload", "samoa"]);
    assert!(out.status.success());
    let csv = String::from_utf8(out.stdout).unwrap();
    let inst = qlrb::core::io::read_input_csv(&csv).expect("parseable");
    assert_eq!(inst.num_procs(), 8);
}

#[test]
fn helpful_errors() {
    let out = qlrb(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = qlrb(&["rebalance", "--method", "greedy"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input is required"));

    let out = qlrb(&["generate", "--workload", "nonsense"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}
