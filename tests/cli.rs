//! End-to-end tests of the `qlrb` CLI binary: the artifact workflow
//! (generate → info → rebalance → simulate) through real process spawns.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qlrb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qlrb"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qlrb-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn full_artifact_workflow() {
    let input = tmpfile("input.csv");
    let plan = tmpfile("plan.csv");

    // generate
    let out = qlrb(&[
        "generate",
        "--workload",
        "mxm-imbalance",
        "--case",
        "Imb.3",
        "--out",
        input.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&input).unwrap();
    assert!(text.starts_with("Process,P1"));

    // info
    let out = qlrb(&["info", "--input", input.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("imbalance ratio"), "{stdout}");
    assert!(stdout.contains("logical qubits"), "{stdout}");

    // rebalance (classical, fast)
    let out = qlrb(&[
        "rebalance",
        "--input",
        input.to_str().unwrap(),
        "--method",
        "proactlb",
        "--out",
        plan.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ProactLB"), "{stdout}");
    assert!(plan.exists());

    // simulate
    let out = qlrb(&[
        "simulate",
        "--input",
        input.to_str().unwrap(),
        "--plan",
        plan.to_str().unwrap(),
        "--iterations",
        "4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("achieved speedup"), "{stdout}");
    assert!(
        stdout.contains('█') || stdout.contains('#'),
        "gantt rendered: {stdout}"
    );
}

#[test]
fn generate_to_stdout_roundtrips() {
    let out = qlrb(&["generate", "--workload", "samoa"]);
    assert!(out.status.success());
    let csv = String::from_utf8(out.stdout).unwrap();
    let inst = qlrb::core::io::read_input_csv(&csv).expect("parseable");
    assert_eq!(inst.num_procs(), 8);
}

#[test]
fn helpful_errors() {
    let out = qlrb(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = qlrb(&["rebalance", "--method", "greedy"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input is required"));

    let out = qlrb(&["generate", "--workload", "nonsense"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}
