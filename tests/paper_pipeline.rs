//! End-to-end pipeline tests: workload generation → all seven methods →
//! invariants the paper's evaluation relies on.

use qlrb::classical::{Greedy, KarmarkarKarp, ProactLb};
use qlrb::core::{Instance, Rebalancer};
use qlrb::harness::groups::run_paper_methods;
use qlrb::harness::HarnessConfig;

fn small_mxm() -> Instance {
    // A scaled-down Imb.3 shape so hybrid solves stay fast in debug tests.
    let sizes = [128u32, 192, 256, 256, 320, 384, 448, 512];
    let weights = sizes
        .iter()
        .map(|&s| qlrb::workloads::load_model(s))
        .collect();
    Instance::uniform(10, weights).unwrap()
}

#[test]
fn all_methods_reduce_imbalance_on_mxm() {
    let inst = small_mxm();
    let case = run_paper_methods(&inst, &HarnessConfig::fast(), "small");
    let baseline = inst.stats().imbalance_ratio;
    assert!(baseline > 1.0, "input is genuinely imbalanced: {baseline}");
    for row in &case.rows {
        assert!(
            row.r_imb < baseline,
            "{} failed to improve: {} !< {baseline}",
            row.algorithm,
            row.r_imb
        );
        assert!(row.speedup >= 1.0, "{} slowed things down", row.algorithm);
    }
}

#[test]
fn migration_budgets_are_respected() {
    let inst = small_mxm();
    let case = run_paper_methods(&inst, &HarnessConfig::fast(), "small");
    let k1 = case.row("ProactLB").unwrap().migrated;
    let k2 = case.row("Greedy").unwrap().migrated;
    for (name, k) in [
        ("Q_CQM1_k1", k1),
        ("Q_CQM2_k1", k1),
        ("Q_CQM1_k2", k2),
        ("Q_CQM2_k2", k2),
    ] {
        let row = case.row(name).unwrap();
        assert!(
            row.migrated <= k,
            "{name} migrated {} > budget {k}",
            row.migrated
        );
    }
}

#[test]
fn quantum_with_k1_matches_proactlb_quality_with_fewer_moves_than_greedy() {
    // The paper's headline: hybrid methods reach classical balance with a
    // fraction of the migrations (≈¼ in the realistic case).
    let inst = small_mxm();
    let case = run_paper_methods(&inst, &HarnessConfig::fast(), "small");
    let greedy = case.row("Greedy").unwrap();
    let q1k1 = case.row("Q_CQM1_k1").unwrap();
    assert!(
        q1k1.migrated * 2 < greedy.migrated,
        "Q_CQM1_k1 ({}) should migrate well under half of Greedy ({})",
        q1k1.migrated,
        greedy.migrated
    );
    let proact = case.row("ProactLB").unwrap();
    assert!(
        q1k1.r_imb <= proact.r_imb + 1e-9,
        "warm-started hybrid never loses to ProactLB: {} vs {}",
        q1k1.r_imb,
        proact.r_imb
    );
}

#[test]
fn classical_methods_scale_as_the_paper_tables() {
    // Table III shape: Greedy/KK migrate ≈ N·(M−1)/M, ProactLB far less.
    for (m, inst) in qlrb::workloads::node_scaling() {
        if m > 16 {
            continue; // keep debug-mode test time modest
        }
        let n_total = inst.num_tasks();
        let expected = n_total - n_total / m as u64;
        let g = Greedy.rebalance(&inst).unwrap().matrix.num_migrated();
        let kk = KarmarkarKarp
            .rebalance(&inst)
            .unwrap()
            .matrix
            .num_migrated();
        let p = ProactLb.rebalance(&inst).unwrap().matrix.num_migrated();
        let tol = n_total / 10;
        assert!(
            g.abs_diff(expected) <= tol,
            "{m} nodes: Greedy {g} far from {expected}"
        );
        assert!(
            kk.abs_diff(expected) <= tol,
            "{m} nodes: KK {kk} far from {expected}"
        );
        assert!(p * 2 < g, "{m} nodes: ProactLB {p} should be << Greedy {g}");
    }
}

#[test]
fn plans_never_lose_tasks_across_methods() {
    let inst = small_mxm();
    let methods: Vec<Box<dyn Rebalancer>> = vec![
        Box::new(Greedy),
        Box::new(KarmarkarKarp),
        Box::new(ProactLb),
        Box::new(HarnessConfig::fast().quantum(&inst, qlrb::core::cqm::Variant::Reduced, 20, "q")),
    ];
    for method in methods {
        let out = method.rebalance(&inst).unwrap();
        out.matrix.validate(&inst).unwrap();
        let total: u64 = (0..inst.num_procs()).map(|i| out.matrix.tasks_on(i)).sum();
        assert_eq!(total, inst.num_tasks(), "{}", method.name());
    }
}
