//! The realistic use case end to end: AMR mesh → section costs → LRP
//! instance → rebalancing, including the paper's pinned Table V baseline.

use qlrb::classical::{Greedy, ProactLb};
use qlrb::core::Rebalancer;
use qlrb::samoa::scenario::{table5_instance, LakeScenario};

#[test]
fn table5_baseline_matches_paper_exactly() {
    let inst = table5_instance();
    assert_eq!(inst.num_procs(), 32);
    assert_eq!(inst.tasks_per_proc(), 208);
    assert!((inst.stats().imbalance_ratio - 4.1994).abs() < 1e-9);
}

#[test]
fn classical_methods_nearly_flatten_the_lake_imbalance() {
    let inst = table5_instance();
    // Greedy reaches near-perfect balance at the cost of mass migration
    // (paper: R_imb 0.00007, ~6447 of 6656 tasks moved).
    let g = Greedy.rebalance(&inst).unwrap();
    let after = inst.stats_after(&g.matrix);
    assert!(
        after.imbalance_ratio < 0.05,
        "Greedy R_imb = {}",
        after.imbalance_ratio
    );
    let n_total = inst.num_tasks();
    assert!(
        g.matrix.num_migrated() > n_total * 8 / 10,
        "Greedy moves most tasks: {}",
        g.matrix.num_migrated()
    );
    // ProactLB balances with a fraction of the moves (paper: 1568 ≈ ¼).
    let p = ProactLb.rebalance(&inst).unwrap();
    let after_p = inst.stats_after(&p.matrix);
    assert!(
        after_p.imbalance_ratio < 0.25,
        "ProactLB R_imb = {}",
        after_p.imbalance_ratio
    );
    assert!(
        p.matrix.num_migrated() * 3 < g.matrix.num_migrated(),
        "ProactLB {} vs Greedy {}",
        p.matrix.num_migrated(),
        g.matrix.num_migrated()
    );
    // Speedup close to the paper's ≈5.2 (speedup = (1+R_baseline)/(1+R_after)).
    let speedup = inst.speedup(&g.matrix);
    assert!(
        (4.5..=5.5).contains(&speedup),
        "Greedy speedup {speedup} far from the paper's ≈5.2"
    );
}

#[test]
fn hybrid_method_on_a_scaled_lake() {
    // A smaller lake so the CQM stays debug-test-sized; same pipeline.
    let scenario = LakeScenario::small();
    let inst = scenario.to_instance();
    let cfg = qlrb::harness::HarnessConfig::fast();
    let proact = ProactLb.rebalance(&inst).unwrap();
    let k1 = proact.matrix.num_migrated();
    let method = cfg.quantum_seeded(
        &inst,
        qlrb::core::cqm::Variant::Reduced,
        k1,
        "Q_CQM1_k1",
        vec![proact.matrix.clone()],
    );
    let out = method.rebalance(&inst).unwrap();
    out.matrix.validate(&inst).unwrap();
    assert!(out.matrix.num_migrated() <= k1);
    let after = inst.stats_after(&out.matrix);
    let after_proact = inst.stats_after(&proact.matrix);
    assert!(
        after.imbalance_ratio <= after_proact.imbalance_ratio + 1e-9,
        "hybrid ({}) no worse than its classical warm start ({})",
        after.imbalance_ratio,
        after_proact.imbalance_ratio
    );
}

#[test]
fn mesh_scales_with_scenario_depth() {
    let shallow = LakeScenario {
        d_min: 8,
        d_max: 9,
        ..LakeScenario::small()
    };
    let deep = LakeScenario {
        d_min: 11,
        d_max: 12,
        ..LakeScenario::small()
    };
    assert!(deep.build_mesh().num_cells() > 4 * shallow.build_mesh().num_cells());
}
