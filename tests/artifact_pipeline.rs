//! The paper artifact's full data pipeline, end to end: Chameleon execution
//! log → parsed imbalance input → rebalancing → output CSV → runtime
//! simulation — every stage through its public API.

use qlrb::classical::ProactLb;
use qlrb::core::io::{read_output_csv, write_output_csv};
use qlrb::core::{Instance, Rebalancer};
use qlrb::harness::runtime::execute_plan;
use qlrb::runtime::SimConfig;
use qlrb::workloads::{parse_log, write_log};

#[test]
fn cham_log_to_simulated_speedup() {
    // 1. A Chameleon run produced a log (synthesized from an MxM instance).
    let truth = qlrb::workloads::imbalance_levels()
        .into_iter()
        .find(|(l, _)| l == "Imb.2")
        .unwrap()
        .1;
    let log = write_log(&truth, 3);

    // 2. The artifact's parser recovers the imbalance input.
    let inst = parse_log(&log).expect("log parses");
    assert_eq!(inst, truth);

    // 3. A rebalancing method produces a plan; it survives the output CSV.
    let plan = ProactLb.rebalance(&inst).expect("proactlb").matrix;
    let csv = write_output_csv(&inst, &plan);
    let plan_back = read_output_csv(&csv).expect("output parses");
    assert_eq!(plan_back, plan);

    // 4. The plan executes on the simulated runtime with real comm costs.
    // With 27-way node parallelism a single iteration is communication-
    // bound and migration cannot pay for itself; amortized over a few BSP
    // iterations (the BSP model's whole point) it must.
    let cfg = SimConfig {
        comp_threads: 4,
        iterations: 8,
        ..SimConfig::default()
    };
    let cmp = execute_plan(&inst, &plan_back, &cfg).expect("valid plan");
    assert!(cmp.analytic_speedup > 1.5, "{}", cmp.analytic_speedup);
    assert!(cmp.achieved_speedup > 1.0, "{}", cmp.achieved_speedup);
}

#[test]
fn general_and_uniform_models_agree_on_uniform_data() {
    use qlrb::core::general::{greedy_lpt, TaskInstance};

    let uni = Instance::uniform(12, vec![1.0, 2.5, 4.0]).unwrap();
    let general = TaskInstance::from_uniform(&uni);
    assert_eq!(general.loads(), uni.loads());
    assert_eq!(general.stats().imbalance_ratio, uni.stats().imbalance_ratio);
    // Task-level LPT's plan collapses to a valid matrix on the uniform view.
    let plan = greedy_lpt(&general);
    let matrix = plan.to_matrix(&general);
    matrix.validate(&uni).unwrap();
    assert_eq!(matrix.num_migrated(), plan.num_migrated(&general));
}

#[test]
fn samoa_fv_instance_feeds_the_same_pipeline() {
    // The numerical-solver variant of the scenario drops into the exact
    // same rebalancing machinery as the analytic one.
    let scenario = qlrb::samoa::LakeScenario::small();
    let inst = scenario.to_instance_via_fv(64);
    let out = ProactLb.rebalance(&inst).expect("proactlb");
    out.matrix.validate(&inst).unwrap();
    assert!(
        inst.stats_after(&out.matrix).imbalance_ratio < inst.stats().imbalance_ratio,
        "rebalancing helps the FV-derived instance too"
    );
}
