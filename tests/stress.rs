//! Cross-family stress tests: every rebalancing method against every
//! workload generator family, checking the invariants that must hold
//! regardless of instance shape.

use qlrb::classical::{Greedy, GreedyRelabeled, KarmarkarKarp, ProactLb};
use qlrb::core::{Instance, Rebalancer};
use qlrb::workloads::synthetic::{hotspot_instance, lognormal_instance, random_instance};

fn families() -> Vec<(String, Instance)> {
    let mut out: Vec<(String, Instance)> = Vec::new();
    for seed in 0..3u64 {
        out.push((
            format!("random#{seed}"),
            random_instance(seed, 6, 15, 0.5, 8.0),
        ));
        out.push((
            format!("lognormal#{seed}"),
            lognormal_instance(seed, 6, 15, 1.2),
        ));
    }
    out.push(("hotspot-1".into(), hotspot_instance(6, 15, 1, 20.0)));
    out.push(("hotspot-3".into(), hotspot_instance(6, 15, 3, 5.0)));
    out.push((
        "degenerate-equal".into(),
        Instance::uniform(15, vec![2.0; 6]).unwrap(),
    ));
    out.push((
        "single-proc".into(),
        Instance::uniform(15, vec![3.0]).unwrap(),
    ));
    out
}

#[test]
fn every_method_returns_valid_conserving_plans() {
    let methods: Vec<Box<dyn Rebalancer>> = vec![
        Box::new(Greedy),
        Box::new(KarmarkarKarp),
        Box::new(ProactLb),
        Box::new(GreedyRelabeled),
    ];
    for (label, inst) in families() {
        for method in &methods {
            let out = method
                .rebalance(&inst)
                .unwrap_or_else(|e| panic!("{} on {label}: {e}", method.name()));
            out.matrix
                .validate(&inst)
                .unwrap_or_else(|e| panic!("{} on {label}: {e}", method.name()));
            let total: u64 = (0..inst.num_procs()).map(|i| out.matrix.tasks_on(i)).sum();
            assert_eq!(total, inst.num_tasks(), "{} on {label}", method.name());
        }
    }
}

#[test]
fn migration_aware_methods_never_worsen_anywhere() {
    for (label, inst) in families() {
        let out = ProactLb.rebalance(&inst).unwrap();
        let after = inst.stats_after(&out.matrix);
        assert!(
            after.l_max <= inst.stats().l_max + 1e-9,
            "ProactLB worsened {label}: {} > {}",
            after.l_max,
            inst.stats().l_max
        );
    }
}

#[test]
fn relabeling_dominates_plain_greedy_on_migrations_everywhere() {
    for (label, inst) in families() {
        let plain = Greedy.rebalance(&inst).unwrap().matrix;
        let relabeled = GreedyRelabeled.rebalance(&inst).unwrap().matrix;
        assert!(
            relabeled.num_migrated() <= plain.num_migrated(),
            "{label}: {} > {}",
            relabeled.num_migrated(),
            plain.num_migrated()
        );
        // Identical partition quality — only labels differ.
        let a = inst.stats_after(&plain).l_max;
        let b = inst.stats_after(&relabeled).l_max;
        assert!((a - b).abs() < 1e-9, "{label}");
    }
}

#[test]
fn hybrid_handles_the_nastiest_family() {
    // One hybrid solve on the most extreme shape (a single 20x hotspot),
    // fast budget: must stay within budget and improve.
    let inst = hotspot_instance(6, 15, 1, 20.0);
    let cfg = qlrb::harness::HarnessConfig::fast();
    let k = inst.num_tasks() / 3;
    let method = cfg.quantum(&inst, qlrb::core::cqm::Variant::Reduced, k, "Q_CQM1");
    let out = method.rebalance(&inst).unwrap();
    out.matrix.validate(&inst).unwrap();
    assert!(out.matrix.num_migrated() <= k);
    assert!(
        inst.stats_after(&out.matrix).imbalance_ratio < inst.stats().imbalance_ratio / 2.0,
        "hybrid should at least halve a hotspot's imbalance"
    );
}
