//! Integration tests of the telemetry layer: the manifest JSON schema
//! (golden key-path file), serde round-trips, and the zero-perturbation
//! guarantee — recording a solve must not change its results.
//!
//! Regenerate the golden schema after intentional layout changes with
//! `QLRB_UPDATE_GOLDEN=1 cargo test --test telemetry`.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use qlrb::anneal::{HybridCqmSolver, SamplerKind};
use qlrb::core::cqm::{LrpCqm, Variant};
use qlrb::core::Instance;
use qlrb::telemetry::{
    CaseTrace, ConfigSnapshot, DecompositionLevelRecord, DecompositionRecord,
    DecompositionWindowRecord, HarnessSnapshot, MemorySink, MethodTrace, RunManifest,
    ServerLoadRecord, ServerRequestRecord, SimConfigSnapshot, SimCounters, SolveRecord,
    SolverConfig, TraceSink,
};

fn small_lrp() -> LrpCqm {
    let inst = Instance::uniform(10, vec![1.0, 2.0, 4.0]).unwrap();
    LrpCqm::build(&inst, Variant::Reduced, 8).unwrap()
}

/// One real traced solve exercising all four samplers, the time-limit wave
/// path, and seeded reads.
fn traced_solve() -> (SolveRecord, SolverConfig) {
    let lrp = small_lrp();
    let sink = Arc::new(MemorySink::new());
    let solver = HybridCqmSolver::builder()
        .num_reads(4)
        .sweeps(150)
        .seed(9)
        .samplers(vec![
            SamplerKind::Sa,
            SamplerKind::Sqa,
            SamplerKind::Tabu,
            SamplerKind::Pt,
        ])
        .time_limit(Duration::from_secs(120))
        .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .build()
        .unwrap();
    let config = solver.config();
    let _ = solver.solve(&lrp.cqm, &[]);
    let solve = sink.take().into_iter().next().expect("one solve recorded");
    (solve, config)
}

/// A manifest populating every layer of the schema: solver + harness + sim
/// config, a method-traced case (with a schema-v7 decomposition table
/// attached), and a sim-counter case.
fn full_manifest() -> RunManifest {
    let (mut solve, config) = traced_solve();
    // Attach the decomposition orchestration trace so its key paths are
    // part of the golden schema, then re-seal: the digest folds the
    // decomposition record in when present.
    solve.decomposition = Some(DecompositionRecord {
        strategy: "multilevel".into(),
        window_cap: 32_768,
        levels: vec![DecompositionLevelRecord {
            level: 0,
            size: 3,
            solved_vars: 48,
            objective_before: 9.0,
            objective_after: 1.5,
            wall_ms: 4.0,
        }],
        windows: vec![DecompositionWindowRecord {
            level: 0,
            window: 0,
            vars: 48,
            objective_before: 2.0,
            objective_after: 1.5,
            accepted: true,
            wall_ms: 1.0,
        }],
        sub_solves: 1,
    });
    qlrb::telemetry::fingerprint::seal(&mut solve);
    let mut manifest = RunManifest::new(
        "telemetry-test",
        ConfigSnapshot {
            solver: Some(config),
            harness: Some(HarnessSnapshot {
                seed: 9,
                reads: 4,
                sweeps: 150,
            }),
            sim: Some(SimConfigSnapshot {
                comp_threads: 4,
                comm_latency: 0.01,
                comm_cost_per_load: 0.05,
                iterations: 2,
            }),
        },
    );
    manifest.cases.push(CaseTrace {
        label: "traced-case".into(),
        methods: vec![MethodTrace {
            method: "Q_CQM1".into(),
            solve,
        }],
        sim: None,
    });
    manifest.cases.push(CaseTrace {
        label: "sim-case".into(),
        methods: vec![],
        sim: Some(SimCounters {
            iterations: 2,
            migration_messages: 5,
            recv_messages: 5,
            barrier_wait_total: 1.5,
            barrier_wait_max: 0.75,
            comm_busy_total: 2.0,
            total_makespan: 30.0,
        }),
    });
    // A schema-v8 service-load record so the server key paths are part of
    // the golden schema: one cache miss, one repeat-tenant hit, one shed.
    manifest.server = Some(ServerLoadRecord {
        workers: 2,
        queue_capacity: 4,
        cache_capacity: 64,
        completed: 2,
        rejected: 1,
        cache_hits: 1,
        cache_misses: 1,
        max_queue_depth: 4,
        p50_latency_ms: 4.0,
        p99_latency_ms: 12.0,
        throughput_rps: 125.0,
        wall_ms: 16.0,
        requests: vec![
            ServerRequestRecord {
                request: 0,
                tenant: "tenant-a".into(),
                workload: "mxm-64".into(),
                method: "qcqm1".into(),
                outcome: "completed".into(),
                cache: "miss".into(),
                queue_depth: 0,
                latency_ms: 12.0,
                trace_digest: "00f00f00f00f00f0".into(),
            },
            ServerRequestRecord {
                request: 1,
                tenant: "tenant-a".into(),
                workload: "mxm-64".into(),
                method: "qcqm1".into(),
                outcome: "completed".into(),
                cache: "hit".into(),
                queue_depth: 1,
                latency_ms: 4.0,
                trace_digest: "00f00f00f00f00f0".into(),
            },
            ServerRequestRecord {
                request: 2,
                tenant: "tenant-b".into(),
                workload: "samoa-small".into(),
                method: "qcqm2".into(),
                outcome: "rejected".into(),
                cache: String::new(),
                queue_depth: 4,
                latency_ms: 0.5,
                trace_digest: String::new(),
            },
        ],
    });
    manifest.finalize();
    manifest
}

/// Collects every key path in a serialized value; sequences contribute
/// `path[]` so array layouts are part of the schema.
fn collect_paths(v: &serde::Value, prefix: &str, out: &mut BTreeSet<String>) {
    match v {
        serde::Value::Map(entries) => {
            for (key, val) in entries {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                out.insert(path.clone());
                collect_paths(val, &path, out);
            }
        }
        serde::Value::Seq(items) => {
            let path = format!("{prefix}[]");
            for item in items {
                collect_paths(item, &path, out);
            }
        }
        _ => {}
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("manifest_schema.txt")
}

#[test]
fn manifest_schema_matches_golden() {
    let manifest = full_manifest();
    manifest.validate().expect("test manifest is well-formed");
    let mut paths = BTreeSet::new();
    collect_paths(&serde::Serialize::to_value(&manifest), "", &mut paths);
    let mut actual = String::new();
    for p in &paths {
        actual.push_str(p);
        actual.push('\n');
    }

    let golden = golden_path();
    if std::env::var("QLRB_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden.display()));
    assert_eq!(
        actual, expected,
        "manifest key paths diverged from tests/golden/manifest_schema.txt; \
         if the change is intentional, regenerate with QLRB_UPDATE_GOLDEN=1 \
         and bump MANIFEST_SCHEMA_VERSION"
    );
}

#[test]
fn manifest_round_trips_through_json() {
    let manifest = full_manifest();
    let back = RunManifest::from_json(&manifest.to_json_pretty()).unwrap();
    assert_eq!(back, manifest);
    back.validate().expect("round-tripped manifest validates");
    let digest = back.summarize();
    assert!(digest.contains("Q_CQM1"), "{digest}");
    assert!(digest.contains("migration msg"), "{digest}");
    assert!(digest.contains("2 completed / 1 rejected"), "{digest}");
}

#[test]
fn pre_v8_manifests_still_parse() {
    // A manifest written before schema v8 has no `server` record at all.
    // Parsing must fill it with the default (None); only `validate()` —
    // which pins the current schema version — rejects the old version tag.
    let manifest = full_manifest();
    let text = manifest
        .to_json_pretty()
        .replace("\"server\"", "\"v8_key\"");
    assert!(!text.contains("\"server\""), "v8 key survived the strip");

    let back = RunManifest::from_json(&text).expect("pre-v8 manifest parses");
    assert_eq!(back.server, None);
    back.validate()
        .expect("cases still carry the run, so the manifest stays valid");
    let old = RunManifest {
        schema: 7,
        ..back.clone()
    };
    assert!(old.validate().is_err());
}

#[test]
fn pre_v7_manifests_still_parse() {
    // A manifest written before schema v7 carries neither the per-solve
    // `decomposition` record nor the solver-config `decompose` switch.
    // Parsing must fill both with their defaults (None / false); only
    // `validate()` — which pins the current schema version — rejects it.
    let (solve, config) = traced_solve();
    assert_eq!(
        solve.decomposition, None,
        "monolithic solve stays monolithic"
    );
    let mut manifest = RunManifest::new(
        "telemetry-test-pre-v7",
        ConfigSnapshot {
            solver: Some(config),
            harness: None,
            sim: None,
        },
    );
    manifest.cases.push(CaseTrace {
        label: "traced-case".into(),
        methods: vec![MethodTrace {
            method: "Q_CQM1".into(),
            solve,
        }],
        sim: None,
    });
    manifest.finalize();
    // Hide the v7 keys behind names an old writer never emitted; the
    // parser must treat them as unknown fields and fall back to defaults.
    let text = manifest
        .to_json_pretty()
        .replace("\"decomposition\"", "\"v7_key_a\"")
        .replace("\"decompose\"", "\"v7_key_b\"");
    assert!(!text.contains("decompos"), "v7 keys survived the strip");

    let back = RunManifest::from_json(&text).expect("pre-v7 manifest parses");
    let solve = &back.cases[0].methods[0].solve;
    assert_eq!(solve.decomposition, None);
    let solver = back.config.solver.as_ref().expect("solver config present");
    assert!(!solver.decompose);
    // The schema gate still fires — parse leniency is not version leniency.
    let old = RunManifest {
        schema: 6,
        ..back.clone()
    };
    assert!(old.validate().is_err());
}

#[test]
fn recording_sink_is_observationally_free() {
    // The zero-cost-when-disabled contract's stronger sibling: a recording
    // sink must not perturb the solver either. Same seed, with and without
    // telemetry — the sample sets must match byte for byte.
    let lrp = small_lrp();
    let quiet = HybridCqmSolver::builder()
        .num_reads(6)
        .sweeps(200)
        .seed(41)
        .build()
        .unwrap();
    let sink = Arc::new(MemorySink::new());
    let traced = quiet
        .to_builder()
        .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .build()
        .unwrap();

    let a = quiet.solve(&lrp.cqm, &[]);
    let b = traced.solve(&lrp.cqm, &[]);
    assert_eq!(a.samples.len(), b.samples.len());
    for (sa, sb) in a.samples.iter().zip(&b.samples) {
        assert_eq!(sa.state, sb.state);
        assert_eq!(sa.objective, sb.objective);
        assert_eq!(sa.violation, sb.violation);
        assert_eq!(sa.feasible, sb.feasible);
        assert_eq!(sa.sampler, sb.sampler);
    }
    assert_eq!(a.summary(), b.summary());

    // And the trace is complete: every requested read reported.
    let solve = sink.take().into_iter().next().unwrap();
    assert_eq!(solve.reads.len(), 6);
    assert_eq!(solve.summary, a.summary());
}

#[test]
fn trace_covers_every_portfolio_member() {
    let (solve, config) = traced_solve();
    assert_eq!(solve.reads.len(), 4);
    let samplers: BTreeSet<&str> = solve.reads.iter().map(|r| r.sampler.as_str()).collect();
    assert_eq!(
        samplers.into_iter().collect::<Vec<_>>(),
        vec!["PT", "SA", "SQA", "TABU"]
    );
    assert_eq!(config.samplers, vec!["SA", "SQA", "TABU", "PT"]);
    assert_eq!(config.time_limit_ms, Some(120_000.0));
    for read in &solve.reads {
        assert!(read.wall_ms >= 0.0);
        assert!((0.0..=1.0).contains(&read.acceptance_rate), "{read:?}");
        assert!(read.proposals > 0);
    }
    // The wave structure accounts for every read exactly once.
    let wave_reads: usize = solve.waves.iter().map(|w| w.reads).sum();
    assert_eq!(wave_reads, solve.reads.len());
}
