//! Quickstart: rebalance a small imbalanced instance with a classical
//! baseline and the paper's hybrid quantum formulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qlrb::classical::{Greedy, ProactLb};
use qlrb::core::cqm::Variant;
use qlrb::core::{Instance, QuantumRebalancer, Rebalancer};

fn main() {
    // The paper's Fig. 7 example: 4 MPI processes × 5 tasks, per-task
    // weights 1.87 / 1.97 / 3.12 / 2.81 ms.
    let inst = Instance::uniform(5, vec![1.87, 1.97, 3.12, 2.81]).expect("valid instance");
    let before = inst.stats();
    println!(
        "Input: {} processes x {} tasks",
        inst.num_procs(),
        inst.tasks_per_proc()
    );
    println!(
        "Baseline: L_max = {:.2}, L_avg = {:.2}, R_imb = {:.4}\n",
        before.l_max, before.l_avg, before.imbalance_ratio
    );

    // Classical baselines.
    for method in [&Greedy as &dyn Rebalancer, &ProactLb] {
        let out = method.rebalance(&inst).expect("classical methods succeed");
        let after = inst.stats_after(&out.matrix);
        println!(
            "{:<10} R_imb = {:.4}  speedup = {:.3}  migrated = {:2}  runtime = {:?}",
            method.name(),
            after.imbalance_ratio,
            inst.speedup(&out.matrix),
            out.matrix.num_migrated(),
            out.runtime
        );
    }

    // The hybrid classical-quantum method: Q_CQM1 with a budget of k = 6
    // migrations, solved on the simulated Leap-style hybrid CQM solver.
    let quantum = QuantumRebalancer::new(Variant::Reduced, 6).labeled("Q_CQM1(k=6)");
    let out = quantum.rebalance(&inst).expect("hybrid solve succeeds");
    let after = inst.stats_after(&out.matrix);
    println!(
        "{:<10} R_imb = {:.4}  speedup = {:.3}  migrated = {:2}  cpu = {:?}  qpu = {:?}",
        quantum.name(),
        after.imbalance_ratio,
        inst.speedup(&out.matrix),
        out.matrix.num_migrated(),
        out.runtime,
        out.qpu_time.expect("hybrid methods report QPU time")
    );

    // The artifact's output CSV format (paper Table VII).
    println!(
        "\nMigration plan ({}):\n{}",
        quantum.name(),
        qlrb::core::io::write_output_csv(&inst, &out.matrix)
    );
}
