//! Executing a rebalancing plan on the simulated Chameleon runtime: the
//! BSP Gantt chart of the paper's Fig. 1, before and after rebalancing,
//! plus achieved speedup including migration communication costs.
//!
//! ```text
//! cargo run --release --example runtime_simulation
//! ```

use qlrb::classical::ProactLb;
use qlrb::core::{Instance, Rebalancer};
use qlrb::harness::runtime::execute_plan;
use qlrb::runtime::{render_gantt, simulate, SimConfig, SimInput};

fn main() {
    // Fig. 1's shape: 4 processes × 5 tasks, process 3 the slowest.
    let inst = Instance::uniform(5, vec![1.87, 1.97, 3.12, 2.81]).expect("valid instance");
    let cfg = SimConfig {
        comp_threads: 2,
        comm_latency: 0.05,
        comm_cost_per_load: 0.02,
        iterations: 1,
    };

    let baseline = simulate(&SimInput::from_instance(&inst), &cfg);
    println!("== Baseline execution (no rebalancing) ==");
    println!("{}", render_gantt(&baseline.trace, inst.num_procs(), 60));
    println!(
        "makespan = {:.2}, total wait = {:.2}\n",
        baseline.iterations[0].makespan,
        baseline.iterations[0].total_wait()
    );

    let plan = ProactLb.rebalance(&inst).expect("proactlb").matrix;
    let rebalanced = simulate(
        &SimInput::from_plan(&inst, &plan).expect("validated above"),
        &cfg,
    );
    println!(
        "== After ProactLB rebalancing ({} migrations) ==",
        plan.num_migrated()
    );
    println!("{}", render_gantt(&rebalanced.trace, inst.num_procs(), 60));
    println!(
        "makespan = {:.2}, total wait = {:.2}",
        rebalanced.iterations[0].makespan,
        rebalanced.iterations[0].total_wait()
    );

    let cmp = execute_plan(&inst, &plan, &cfg).expect("valid plan");
    println!(
        "\nanalytic speedup (paper metric) = {:.3}, achieved speedup = {:.3}, \
         migration comm time = {:.3}",
        cmp.analytic_speedup, cmp.achieved_speedup, cmp.migration_comm_time
    );

    // Amortization: one migration, many BSP iterations.
    for iters in [1usize, 4, 16] {
        let cfg_n = SimConfig {
            iterations: iters,
            ..cfg
        };
        let cmp = execute_plan(&inst, &plan, &cfg_n).expect("valid plan");
        println!(
            "iterations = {iters:>2}: achieved speedup = {:.3}",
            cmp.achieved_speedup
        );
    }
}
