//! The realistic use case end to end: build the oscillating-lake AMR
//! scenario, extract the imbalanced LRP instance, and rebalance it with
//! classical and hybrid methods (the paper's Table V, at adjustable scale).
//!
//! ```text
//! cargo run --release --example samoa_rebalance           # small scenario
//! QLRB_TABLE5=1 cargo run --release --example samoa_rebalance  # full 32x208
//! ```

use qlrb::classical::{Greedy, KarmarkarKarp, ProactLb};
use qlrb::core::cqm::Variant;
use qlrb::core::{Instance, Rebalancer};
use qlrb::harness::HarnessConfig;
use qlrb::samoa::scenario::{table5_instance, LakeScenario};

fn main() {
    let full = std::env::var("QLRB_TABLE5").is_ok_and(|v| v == "1");
    let inst: Instance = if full {
        println!("Scenario: paper Table V configuration (32 nodes x 208 tasks)");
        table5_instance()
    } else {
        let scenario = LakeScenario::small();
        let mesh = scenario.build_mesh();
        println!(
            "Scenario: oscillating lake, {} cells ({} nodes x {} sections), t = {:.2}",
            mesh.num_cells(),
            scenario.nodes,
            scenario.sections_per_node,
            scenario.time
        );
        scenario.to_instance()
    };

    let before = inst.stats();
    println!(
        "Baseline: R_imb = {:.4}, L_max = {:.2}, L_avg = {:.2}\n",
        before.imbalance_ratio, before.l_max, before.l_avg
    );

    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>12} {:>9}",
        "Algorithm", "R_imb", "Speedup", "# mig.", "CPU(ms)", "QPU(ms)"
    );
    let cfg = HarnessConfig::fast();
    let greedy = Greedy.rebalance(&inst).expect("greedy");
    let proact = ProactLb.rebalance(&inst).expect("proactlb");
    let k1 = proact.matrix.num_migrated();
    let k2 = greedy.matrix.num_migrated();

    let mut methods: Vec<(String, qlrb::core::RebalanceOutcome)> = vec![
        ("Greedy".into(), greedy),
        ("KK".into(), KarmarkarKarp.rebalance(&inst).expect("kk")),
        ("ProactLB".into(), proact),
    ];
    for (variant, k, name) in [
        (Variant::Reduced, k1, "Q_CQM1_k1"),
        (Variant::Reduced, k2, "Q_CQM1_k2"),
    ] {
        let method = cfg.quantum(&inst, variant, k, name);
        methods.push((name.to_string(), method.rebalance(&inst).expect("hybrid")));
    }

    for (name, out) in &methods {
        let after = inst.stats_after(&out.matrix);
        println!(
            "{:<12} {:>9.5} {:>9.4} {:>9} {:>12.3} {:>9}",
            name,
            after.imbalance_ratio,
            inst.speedup(&out.matrix),
            out.matrix.num_migrated(),
            out.runtime.as_secs_f64() * 1e3,
            out.qpu_time
                .map(|q| format!("{:.1}", q.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into()),
        );
    }
}
