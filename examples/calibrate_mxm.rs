//! Calibrates the MxM load model against the real kernel: runs actual
//! `A = B × C` multiplications at increasing sizes and checks that measured
//! time per model unit is roughly constant (the cubic law the experiment
//! generators rely on).
//!
//! ```text
//! cargo run --release --example calibrate_mxm
//! ```

use qlrb::workloads::mxm::{calibrate, load_model};

fn main() {
    let sizes = [64u32, 128, 192, 256, 320];
    println!(
        "{:>6} {:>12} {:>12} {:>16}",
        "size", "seconds", "model", "sec/model-unit"
    );
    let points = calibrate(&sizes);
    for p in &points {
        println!(
            "{:>6} {:>12.6} {:>12.3} {:>16.6}",
            p.size,
            p.seconds,
            load_model(p.size),
            p.seconds_per_unit
        );
    }
    let units: Vec<f64> = points.iter().map(|p| p.seconds_per_unit).collect();
    let mean = units.iter().sum::<f64>() / units.len() as f64;
    let max_dev = units
        .iter()
        .map(|u| (u - mean).abs() / mean)
        .fold(0.0f64, f64::max);
    println!(
        "\nmean = {mean:.6} s/unit, max relative deviation = {:.1}% \
         (cubic model {})",
        max_dev * 100.0,
        if max_dev < 0.5 {
            "holds"
        } else {
            "is off on this machine"
        }
    );
}
