//! Beyond the paper's uniform model: the general task-level LRP with
//! heterogeneous per-task weights, plus the certified branch-and-bound
//! optimum as a quality anchor for the uniform heuristics.
//!
//! ```text
//! cargo run --release --example task_level_lrp
//! ```

use qlrb::classical::{BranchAndBound, Greedy, KarmarkarKarp, ProactLb};
use qlrb::core::general::{greedy_lpt, proact_tasks, TaskInstance, TaskPlan};
use qlrb::core::{Instance, Rebalancer};

fn main() {
    // --- General model: every task has its own weight --------------------
    let inst = TaskInstance::new(vec![
        vec![12.0, 3.0, 1.5, 1.5], // P1: one dominating task
        vec![4.0, 4.0, 4.0],       // P2
        vec![0.5, 0.5, 0.5, 0.5],  // P3: many light tasks
        vec![],                    // P4: idle
    ])
    .expect("valid task instance");
    println!(
        "Task-level instance: {} tasks on {} processes, loads {:?}",
        inst.num_tasks(),
        inst.num_procs(),
        inst.loads()
    );
    println!("baseline R_imb = {:.4}\n", inst.stats().imbalance_ratio);

    for (name, plan) in [
        ("identity", TaskPlan::identity(&inst)),
        ("greedy_lpt", greedy_lpt(&inst)),
        ("proact_tasks", proact_tasks(&inst)),
    ] {
        let after = inst.stats_after(&plan);
        println!(
            "{name:<14} R_imb = {:.4}  L_max = {:5.2}  migrated = {}",
            after.imbalance_ratio,
            after.l_max,
            plan.num_migrated(&inst)
        );
    }

    // --- Uniform model: heuristics vs the certified optimum --------------
    let uni = Instance::uniform(8, vec![1.0, 1.0, 1.0, 9.0, 2.0]).expect("valid");
    println!(
        "\nUniform instance (5 procs x 8 tasks), baseline R_imb = {:.4}",
        uni.stats().imbalance_ratio
    );
    let opt = BranchAndBound::default();
    for method in [&Greedy as &dyn Rebalancer, &KarmarkarKarp, &ProactLb, &opt] {
        let out = method.rebalance(&uni).expect("solve");
        let after = uni.stats_after(&out.matrix);
        println!(
            "{:<14} L_max = {:6.2}  R_imb = {:.4}  migrated = {:3}  ({:?})",
            method.name(),
            after.l_max,
            after.imbalance_ratio,
            out.matrix.num_migrated(),
            out.runtime
        );
    }
    let exact = opt.solve(&uni);
    println!(
        "\nBnB expanded {} nodes; optimum certified: {}",
        exact.nodes, exact.optimal
    );
}
