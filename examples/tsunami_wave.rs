//! The tsunami use case end to end: watch the wave propagate (ASCII frames
//! from the finite-volume solver), extract the LRP instance its cost
//! pattern induces, and rebalance it.
//!
//! ```text
//! cargo run --release --example tsunami_wave
//! ```

use qlrb::classical::{Greedy, ProactLb};
use qlrb::core::cqm::Variant;
use qlrb::core::Rebalancer;
use qlrb::harness::HarnessConfig;
use qlrb::samoa::TsunamiScenario;

fn main() {
    let scenario = TsunamiScenario::default();
    println!(
        "Tsunami: ocean depth {}, epicenter {:?}, amplitude {}\n",
        scenario.ocean_depth, scenario.epicenter, scenario.amplitude
    );

    // Watch the wave travel ('!' marks troubled cells — the limiter's work).
    let mut fv = scenario.initial_state();
    for frame in 0..4 {
        println!("t = {:.3}  (volume {:.5})", fv.time(), fv.volume());
        println!("{}", fv.render_ascii(64, scenario.cost.trouble_band));
        if frame < 3 {
            fv.run_until(fv.time() + scenario.time / 3.0, 0.4);
        }
    }

    // The load the wave imposes at the sample time.
    let inst = scenario.to_instance();
    println!(
        "LRP instance: {} nodes x {} tasks, R_imb = {:.4}",
        inst.num_procs(),
        inst.tasks_per_proc(),
        inst.stats().imbalance_ratio
    );

    let cfg = HarnessConfig::fast();
    let proact = ProactLb.rebalance(&inst).expect("proactlb");
    let k1 = proact.matrix.num_migrated();
    let methods: Vec<(String, qlrb::core::RebalanceOutcome)> = vec![
        ("Greedy".into(), Greedy.rebalance(&inst).expect("greedy")),
        ("ProactLB".into(), proact),
        (
            "Q_CQM1_k1".into(),
            cfg.quantum(&inst, Variant::Reduced, k1, "Q_CQM1_k1")
                .rebalance(&inst)
                .expect("hybrid"),
        ),
    ];
    println!(
        "\n{:<12} {:>9} {:>9} {:>8}",
        "Algorithm", "R_imb", "Speedup", "# mig."
    );
    for (name, out) in &methods {
        let after = inst.stats_after(&out.matrix);
        println!(
            "{:<12} {:>9.5} {:>9.4} {:>8}",
            name,
            after.imbalance_ratio,
            inst.speedup(&out.matrix),
            out.matrix.num_migrated()
        );
    }
}
