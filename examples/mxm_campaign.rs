//! The MxM experiment campaign: runs the paper's Fig. 3 group (five
//! imbalance levels on 8 nodes × 50 tasks) and prints the figure panels.
//!
//! ```text
//! cargo run --release --example mxm_campaign            # full budget
//! QLRB_FAST=1 cargo run --release --example mxm_campaign # quick look
//! ```
//!
//! For the other two groups (node scaling, task scaling) use the dedicated
//! regeneration binaries in `qlrb-bench`.

use qlrb::harness::figures::{ascii_bars, figure_panels, Metric};
use qlrb::harness::{varied_imbalance, HarnessConfig};

fn main() {
    let cfg = if std::env::var("QLRB_FAST").is_ok_and(|v| v == "1") {
        HarnessConfig::fast()
    } else {
        HarnessConfig::default()
    };
    let exp = varied_imbalance(&cfg);

    println!("{}", exp.to_table());
    println!("{}", figure_panels(&exp));

    // A quick visual of the most imbalanced case.
    let worst = exp.cases.last().expect("five cases");
    println!("{}", ascii_bars(worst, Metric::RImb, 40));
    println!("{}", ascii_bars(worst, Metric::Migrated, 40));
}
