//! A deep dive into the hybrid solver on one instance: formulation
//! variants, penalty encodings, samplers in isolation, and the migration
//! budget trade-off (the paper's §VI discussion points, runnable).
//!
//! ```text
//! cargo run --release --example hybrid_vs_classical
//! ```

use qlrb::anneal::hybrid::SamplerKind;
use qlrb::core::cqm::{logical_qubits, Variant};
use qlrb::core::{Instance, Rebalancer};
use qlrb::harness::HarnessConfig;
use qlrb::model::penalty::PenaltyStyle;

fn main() {
    let inst = Instance::uniform(32, vec![1.0, 1.5, 2.25, 3.375, 5.0, 7.5, 11.0, 16.0])
        .expect("valid instance");
    let before = inst.stats();
    println!(
        "Instance: M = {}, n = {}, R_imb = {:.4}",
        inst.num_procs(),
        inst.tasks_per_proc(),
        before.imbalance_ratio
    );
    let m = inst.num_procs() as u64;
    let n = inst.tasks_per_proc();
    println!(
        "Logical qubits: Q_CQM1 = {}, Q_CQM2 = {}\n",
        logical_qubits(Variant::Reduced, m, n),
        logical_qubits(Variant::Full, m, n)
    );
    let cfg = HarnessConfig::default();
    let k = inst.num_tasks() / 4;

    println!("-- Formulation variants (k = N/4 = {k}) --");
    for variant in [Variant::Reduced, Variant::Full] {
        let method = cfg.quantum(&inst, variant, k, variant.label());
        let out = method.rebalance(&inst).expect("solve");
        let after = inst.stats_after(&out.matrix);
        println!(
            "{:<8} R_imb = {:.4}  migrated = {:3}  cpu = {:6.1} ms",
            variant.label(),
            after.imbalance_ratio,
            out.matrix.num_migrated(),
            out.runtime.as_secs_f64() * 1e3
        );
    }

    println!("\n-- Inequality penalty encodings (Q_CQM1) --");
    for (style, name) in [
        (PenaltyStyle::ViolationQuadratic, "violation-quadratic"),
        (
            PenaltyStyle::Unbalanced {
                l1: 0.96,
                l2: 0.0331,
            },
            "unbalanced",
        ),
        (PenaltyStyle::Slack, "slack-variables"),
    ] {
        let mut method = cfg.quantum(&inst, Variant::Reduced, k, name);
        method.solver = method
            .solver
            .to_builder()
            .style(style)
            .build()
            .expect("style override keeps the config valid");
        let out = method.rebalance(&inst).expect("solve");
        let after = inst.stats_after(&out.matrix);
        println!(
            "{:<20} R_imb = {:.4}  migrated = {:3}",
            name,
            after.imbalance_ratio,
            out.matrix.num_migrated()
        );
    }

    println!("\n-- Portfolio members in isolation (Q_CQM1) --");
    for (kind, name) in [
        (SamplerKind::Sa, "SA"),
        (SamplerKind::Sqa, "SQA"),
        (SamplerKind::Tabu, "Tabu"),
    ] {
        let mut method = cfg.quantum(&inst, Variant::Reduced, k, name);
        method.solver = method
            .solver
            .to_builder()
            .samplers(vec![kind])
            .build()
            .expect("single-sampler portfolio is valid");
        let out = method.rebalance(&inst).expect("solve");
        let after = inst.stats_after(&out.matrix);
        println!(
            "{:<6} R_imb = {:.4}  migrated = {:3}  cpu = {:6.1} ms",
            name,
            after.imbalance_ratio,
            out.matrix.num_migrated(),
            out.runtime.as_secs_f64() * 1e3
        );
    }

    println!("\n-- Migration budget sweep (Q_CQM1) --");
    let n_total = inst.num_tasks();
    for k in [0, n_total / 32, n_total / 8, n_total / 4, n_total / 2] {
        let method = cfg.quantum(&inst, Variant::Reduced, k, &format!("k={k}"));
        let out = method.rebalance(&inst).expect("solve");
        let after = inst.stats_after(&out.matrix);
        println!(
            "k = {:>4}: R_imb = {:.4}  migrated = {:3}  speedup = {:.3}",
            k,
            after.imbalance_ratio,
            out.matrix.num_migrated(),
            inst.speedup(&out.matrix)
        );
    }
}
