#!/usr/bin/env bash
# Smoke-checks the fault-tolerant sampler backend end to end:
# (a) two identically-seeded runs under a transient fault plan must produce
#     byte-identical plans and record the retries in telemetry, and
# (b) an all-crash plan must degrade gracefully — exit 0 with a
#     "backend-exhausted" termination — instead of panicking.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

input="$workdir/input.csv"
cargo run --release --quiet --bin qlrb -- \
  generate --workload samoa --out "$input"

# Every read's first submission fails transiently; retries must recover it.
transient="$workdir/transient.json"
echo '[{"fail_attempts": 1, "kind": "transient"}]' > "$transient"

for run in a b; do
  cargo run --release --quiet --bin qlrb -- \
    rebalance --input "$input" --method qcqm1 --k 16 --seed 7 \
    --fault-plan "$transient" --max-retries 2 \
    --out "$workdir/plan_$run.csv" --telemetry "$workdir/tele_$run.json"
done

cmp -s "$workdir/plan_a.csv" "$workdir/plan_b.csv" \
  || { echo "identically-seeded faulty runs diverged" >&2; exit 1; }
echo "faulty runs deterministic: plans identical"

grep -q '"attempts": 2' "$workdir/tele_a.json" \
  || { echo "telemetry did not record the retry" >&2; exit 1; }
grep -q '"backend": "fault-injection"' "$workdir/tele_a.json" \
  || { echo "telemetry did not record the backend" >&2; exit 1; }

# A fully dead backend: the solve must still exit 0 and record why.
crash="$workdir/crash.json"
echo '[{"kind": "crash"}]' > "$crash"
cargo run --release --quiet --bin qlrb -- \
  rebalance --input "$input" --method qcqm1 --k 16 --seed 7 \
  --fault-plan "$crash" --max-retries 1 \
  --out "$workdir/plan_crash.csv" --telemetry "$workdir/tele_crash.json" \
  || { echo "all-crash plan must degrade, not fail the process" >&2; exit 1; }
grep -q '"termination": "backend-exhausted"' "$workdir/tele_crash.json" \
  || { echo "degraded run missing backend-exhausted termination" >&2; exit 1; }
echo "all-crash run degraded gracefully"

echo "check_faults: OK"
