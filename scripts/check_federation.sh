#!/usr/bin/env bash
# Smoke-checks backend federation end to end:
# (a) two identically-seeded runs over a three-member pool with a straggling
#     "qpu" member and --speculate must produce byte-identical plans and
#     byte-identical manifests (modulo wall-clock keys),
# (b) the manifest must record the speculative races and charge the
#     cancelled member nothing (no phantom reads, cost, or QPU time), and
# (c) the manifest must validate against the current schema.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

input="$workdir/input.csv"
cargo run --release --quiet --bin qlrb -- \
  generate --workload samoa --out "$input"

# Every submission to the "qpu" member times out, so each read that lands
# there straggles and --speculate races its duplicate on the next member.
straggler="$workdir/straggler.json"
echo '[{"backend": "qpu", "kind": "timeout"}]' > "$straggler"

for run in a b; do
  cargo run --release --quiet --bin qlrb -- \
    rebalance --input "$input" --method qcqm1 --k 16 --seed 7 \
    --backends fast,strong,qpu --speculate --fault-plan "$straggler" \
    --out "$workdir/plan_$run.csv" --telemetry "$workdir/tele_$run.json"
done

cmp -s "$workdir/plan_a.csv" "$workdir/plan_b.csv" \
  || { echo "identically-seeded federated runs diverged" >&2; exit 1; }

# Manifests must agree too (win/cancel records included) once wall-clock
# and environment stamps are stripped.
volatile='"(wall_ms|generated_unix_s|cpu_ms|qpu_ms|median_cpu_ms|median_qpu_ms|git_describe|command)"'
for run in a b; do
  grep -vE "$volatile" "$workdir/tele_$run.json" > "$workdir/stable_$run.json"
done
cmp -s "$workdir/stable_a.json" "$workdir/stable_b.json" \
  || { echo "federated manifests diverged" >&2; exit 1; }
echo "federated runs deterministic: plans and manifests identical"

grep -q '"speculated": true' "$workdir/tele_a.json" \
  || { echo "no speculative race was recorded" >&2; exit 1; }
grep -q '"cancelled_backend": "qpu"' "$workdir/tele_a.json" \
  || { echo "no cancellation against the straggler was recorded" >&2; exit 1; }
for member in fast strong qpu; do
  grep -q "\"backend\": \"$member\"" "$workdir/tele_a.json" \
    || { echo "member '$member' missing from the manifest" >&2; exit 1; }
done

# No phantom charge: the always-timing-out member wins no reads and is
# charged no cost or QPU time. Its backend_usage entry is the only object
# with "backend": "qpu" followed by a "reads" key.
python3 - "$workdir/tele_a.json" <<'EOF'
import json, sys
manifest = json.load(open(sys.argv[1]))
solve = manifest["cases"][0]["methods"][0]["solve"]
usage = {u["backend"]: u for u in solve["backend_usage"]}
qpu = usage["qpu"]
assert qpu["reads"] == 0, f"straggler won reads: {qpu}"
assert qpu["cost"] == 0.0, f"phantom cost charged: {qpu}"
assert qpu["qpu_ms"] == 0.0, f"phantom QPU time charged: {qpu}"
assert qpu["cancelled"] > 0, f"no duplicates were cancelled: {qpu}"
assert usage["fast"]["reads"] + usage["strong"]["reads"] == len(solve["reads"])
print("no phantom charge: straggler cancelled %d duplicates, won 0 reads"
      % qpu["cancelled"])
EOF

# The manifest must validate against the pinned schema version.
cargo run --release --quiet --bin qlrb -- \
  trace summarize --input "$workdir/tele_a.json" > /dev/null \
  || { echo "federated manifest failed schema validation" >&2; exit 1; }
echo "federated manifest validates"

echo "check_federation: OK"
