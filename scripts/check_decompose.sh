#!/usr/bin/env bash
# Decomposition-frontend gate (DESIGN.md §Decomposition): a 1024-node
# instance is far past the monolithic 32768-variable ceiling, so the
# frontend must (a) make the monolithic path fail *fast* with the
# structured model-too-large error that points at `--decompose`, and
# (b) produce a feasible plan via multilevel coarsen/refine — twice,
# byte-identically, with `qlrb trace diff` confirming the merged solve
# records match bit-for-bit and `qlrb trace summarize` rendering the
# per-level decomposition table (manifest schema v7).
#
# QLRB_SKIP_DECOMPOSE_GATE=1 skips the gate (e.g. while bisecting an
# unrelated failure on a slow machine).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${QLRB_SKIP_DECOMPOSE_GATE:-0}" = "1" ]; then
  echo "check_decompose: SKIPPED (QLRB_SKIP_DECOMPOSE_GATE=1)"
  exit 0
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

qlrb() { cargo run --release --quiet --bin qlrb -- "$@"; }

input="$workdir/input.csv"
qlrb generate --workload mxm-nodes-large --case 1024 --out "$input"

# Monolithic path: must refuse, structurally, and point at the flag.
# (The size precheck fires on the qubit count, before any model is built.)
if err="$(qlrb rebalance --input "$input" --method qcqm1 --k-frac 0.5 --seed 7 \
    --out "$workdir/mono_plan.csv" 2>&1)"; then
  echo "monolithic solve of a 1024-node instance unexpectedly succeeded" >&2
  exit 1
fi
echo "$err" | grep -q "model too large" \
  || { echo "monolithic failure is not the structured size error: $err" >&2; exit 1; }
echo "$err" | grep -q -- "--decompose" \
  || { echo "size error does not point at --decompose: $err" >&2; exit 1; }
echo "monolithic path refused with the structured size error"

# Decomposed path: a non-trivial feasible plan, twice, identical down to
# the trace. The budget is half the task count so the coarse solve has
# real load to move (a toy budget prunes to the identity).
for run in a b; do
  out="$(qlrb rebalance --input "$input" --method qcqm1 --k-frac 0.5 --seed 7 \
    --decompose --out "$workdir/plan_$run.csv" \
    --telemetry "$workdir/trace_$run.json")"
  echo "$out"
done
migrated="$(echo "$out" | sed -n 's/.*migrated \([0-9]*\).*/\1/p')"
if [[ -z "$migrated" || "$migrated" == "0" ]]; then
  echo "decomposed plan migrated nothing: $out" >&2
  exit 1
fi
cmp -s "$workdir/plan_a.csv" "$workdir/plan_b.csv" \
  || { echo "decomposed plans differ between identical-seed runs" >&2; exit 1; }
qlrb trace diff "$workdir/trace_a.json" "$workdir/trace_b.json" \
  || { echo "decomposed replay diverged" >&2; exit 1; }
echo "decomposed replay identical (plan bytes and trace digest)"

# The merged record must carry the per-level decomposition table.
summary="$(qlrb trace summarize --input "$workdir/trace_a.json")"
echo "$summary" | grep -q "decomposition:" \
  || { echo "trace summarize shows no decomposition table: $summary" >&2; exit 1; }
echo "$summary" | grep -q "multilevel" \
  || { echo "decomposition table does not name the multilevel strategy" >&2; exit 1; }
echo "decomposition table present in trace summarize"

echo "check_decompose: OK"
