#!/usr/bin/env bash
# Determinism replay gate (DESIGN.md §Determinism audit): every solver
# configuration in the matrix must reproduce its solve trace bit-for-bit
# when replayed with the same seed — asserted through `qlrb trace diff`
# on the recorded manifests rather than byte comparison, so a failure
# names the first divergent read (wave, slot, sampler, backend, field)
# instead of "files differ". A seed perturbation must conversely produce
# a localized divergence (proof the gate can fail), and `qlrb audit`
# must re-derive every stored digest, rejecting a tampered manifest.
#
# QLRB_SKIP_DETERMINISM_GATE=1 skips the gate (e.g. while bisecting an
# unrelated failure on a slow machine).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${QLRB_SKIP_DETERMINISM_GATE:-0}" = "1" ]; then
  echo "check_determinism: SKIPPED (QLRB_SKIP_DETERMINISM_GATE=1)"
  exit 0
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

qlrb() { cargo run --release --quiet --bin qlrb -- "$@"; }

input="$workdir/input.csv"
qlrb generate --workload samoa --out "$input"

# Every read's first submission fails transiently; retries recover it.
faults="$workdir/faults.json"
echo '[{"fail_attempts": 1, "kind": "transient"}]' > "$faults"

# name|extra-flags — one replay pair per solver configuration. Covers the
# scalar path, the batched bitset kernels, speculative federation, the
# fault-injecting backend, and the decomposing frontend (whose merged
# solve record must replay bit-for-bit like any other).
matrix=(
  "scalar|"
  "batched|--batched"
  "speculate|--backends fast,strong,qpu --speculate"
  "faulty|--fault-plan $faults --max-retries 2"
  "decompose|--decompose"
)

for entry in "${matrix[@]}"; do
  name="${entry%%|*}"
  extra="${entry#*|}"
  for run in a b; do
    # shellcheck disable=SC2086
    qlrb rebalance --input "$input" --method qcqm1 --k 16 --seed 7 $extra \
      --out "$workdir/${name}_plan_$run.csv" \
      --telemetry "$workdir/${name}_$run.json"
  done
  qlrb trace diff "$workdir/${name}_a.json" "$workdir/${name}_b.json" \
    || { echo "config '$name': replay diverged" >&2; exit 1; }
  echo "config '$name': replay identical"
done

# The gate must be able to fail: a different seed is a different trace,
# and the diff must localize it, not merely notice it.
qlrb rebalance --input "$input" --method qcqm1 --k 16 --seed 8 \
  --out "$workdir/scalar_plan_c.csv" --telemetry "$workdir/scalar_c.json"
if divergence="$(qlrb trace diff "$workdir/scalar_a.json" "$workdir/scalar_c.json")"; then
  echo "seed perturbation went undetected" >&2
  exit 1
fi
echo "$divergence" | grep -q "first divergence" \
  || { echo "diff did not localize the divergence: $divergence" >&2; exit 1; }
echo "seed perturbation localized: $divergence"

# Every stored digest must re-derive from its own record…
qlrb audit --input "$workdir/scalar_a.json" \
  || { echo "audit rejected a freshly recorded manifest" >&2; exit 1; }

# …and a record edited after sealing must be caught.
python3 - "$workdir/scalar_a.json" "$workdir/tampered.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
m["cases"][0]["methods"][0]["solve"]["reads"][0]["sweeps"] += 1
json.dump(m, open(sys.argv[2], "w"))
EOF
if qlrb audit --input "$workdir/tampered.json"; then
  echo "audit accepted a tampered manifest" >&2
  exit 1
fi
echo "tampered manifest rejected"

echo "check_determinism: OK"
