#!/usr/bin/env bash
# Smoke-checks the adaptive portfolio scheduler end to end: the same tiny
# rebalance is run exhaustively and with --early-stop --adaptive, and the
# early-stopped run must (a) execute strictly fewer reads, (b) terminate
# for a recorded reason other than "exhausted", and (c) land on the same
# best feasible objective — early termination must save work, not quality.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

input="$workdir/input.csv"
cargo run --release --quiet --bin qlrb -- \
  generate --workload samoa --out "$input"

base="$workdir/base.json"
fast="$workdir/fast.json"
cargo run --release --quiet --bin qlrb -- \
  rebalance --input "$input" --method qcqm1 --k 16 --seed 7 \
  --out "$workdir/base_plan.csv" --telemetry "$base"
cargo run --release --quiet --bin qlrb -- \
  rebalance --input "$input" --method qcqm1 --k 16 --seed 7 \
  --early-stop --adaptive \
  --out "$workdir/fast_plan.csv" --telemetry "$fast"

# One read record per executed read; the scheduler must have spent fewer.
reads_base="$(grep -c '"read":' "$base")"
reads_fast="$(grep -c '"read":' "$fast")"
echo "reads: exhaustive $reads_base, early-stop $reads_fast"
[ "$reads_fast" -lt "$reads_base" ] \
  || { echo "early stop saved no reads" >&2; exit 1; }

# Termination reasons: the baseline runs the budget out, the scheduled run
# records why it stopped early.
grep -q '"termination": "exhausted"' "$base" \
  || { echo "baseline should exhaust its read budget" >&2; exit 1; }
grep -q '"termination": "exhausted"' "$fast" \
  && { echo "scheduled run should not exhaust its read budget" >&2; exit 1; }

# Early termination must not cost solution quality on this instance.
best_base="$(grep -o '"best_feasible_objective": [^,}]*' "$base" | head -1)"
best_fast="$(grep -o '"best_feasible_objective": [^,}]*' "$fast" | head -1)"
echo "objective: exhaustive {$best_base}, early-stop {$best_fast}"
[ -n "$best_base" ] && [ "$best_base" = "$best_fast" ] \
  || { echo "best feasible objective changed under early stop" >&2; exit 1; }

# `trace summarize` re-validates the manifest and reports the stop reason.
summary="$(cargo run --release --quiet --bin qlrb -- \
  trace summarize --input "$fast")"
echo "$summary"
echo "$summary" | grep -q "stopped:" \
  || { echo "summary missing termination reason" >&2; exit 1; }

echo "check_scheduler: OK"
