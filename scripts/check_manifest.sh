#!/usr/bin/env bash
# Smoke-checks the telemetry pipeline end to end: runs a tiny rebalance
# with --telemetry, validates the emitted manifest through `trace
# summarize`, and asserts the per-read records are present.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

input="$workdir/input.csv"
plan="$workdir/plan.csv"
manifest="$workdir/trace.json"

cargo run --release --quiet --bin qlrb -- \
  generate --workload samoa --out "$input"
cargo run --release --quiet --bin qlrb -- \
  rebalance --input "$input" --method qcqm1 --k 16 --seed 7 \
  --out "$plan" --telemetry "$manifest"

test -s "$manifest" || { echo "manifest not written" >&2; exit 1; }
grep -q '"schema"' "$manifest" || { echo "manifest missing schema" >&2; exit 1; }
grep -q '"sampler"' "$manifest" || { echo "manifest has no read records" >&2; exit 1; }
grep -q '"trace_digest"' "$manifest" || { echo "manifest missing trace digest" >&2; exit 1; }

# Every stored digest must re-derive from the record it seals.
cargo run --release --quiet --bin qlrb -- audit --input "$manifest" \
  || { echo "audit rejected a freshly recorded manifest" >&2; exit 1; }

# `trace summarize` re-validates the manifest structurally before printing.
summary="$(cargo run --release --quiet --bin qlrb -- \
  trace summarize --input "$manifest")"
echo "$summary"
echo "$summary" | grep -q "run manifest: qlrb rebalance" \
  || { echo "summary missing header" >&2; exit 1; }
echo "$summary" | grep -q "read(s)" \
  || { echo "summary missing read counts" >&2; exit 1; }
echo "$summary" | grep -q "digest" \
  || { echo "summary missing trace digest" >&2; exit 1; }

echo "check_manifest: OK"
