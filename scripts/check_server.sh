#!/usr/bin/env bash
# Service gate (DESIGN.md §Service): boot the `qlrb serve` daemon on a
# loopback port and hold it to the servable-determinism contract:
#
#  * replaying the same seeded request mix twice produces byte-identical
#    plans files and trace-diff-clean manifests (`qlrb trace diff` ignores
#    the volatile server record but checks every solve read);
#  * repeat-tenant requests hit the compiled-model cache (the second
#    replay, against the warm daemon, must be 100% cache hits);
#  * under saturation (1 worker, queue depth 1, a 12-way client burst)
#    overload comes back as structured 429-style rejections and every
#    admitted request still completes — completed + rejected must equal
#    the total, i.e. zero dropped in-flight solves, never a panic;
#  * the load run's p50/p99 latency + throughput headline is recorded in
#    results/server_load.json (refreshed on every gate run).
#
# QLRB_SKIP_SERVER_GATE=1 skips the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${QLRB_SKIP_SERVER_GATE:-0}" = "1" ]; then
  echo "check_server: SKIPPED (QLRB_SKIP_SERVER_GATE=1)"
  exit 0
fi

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

cargo build --release --quiet --bin qlrb
cargo build --release --quiet -p qlrb-server --bin qlrb-loadgen
QLRB=target/release/qlrb
LOADGEN=target/release/qlrb-loadgen

# Boots a daemon on an OS-assigned loopback port; sets $daemon_pid and
# $addr. The "listening on" line is printed only after the accept loop is
# live, so its appearance is the readiness signal.
start_daemon() {
  local log=$1
  shift
  "$QLRB" serve --addr 127.0.0.1:0 "$@" > "$log" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^qlrb serve: listening on \([0-9.:]*\).*/\1/p' "$log")"
    [ -n "$addr" ] && return 0
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$log" >&2; return 1; }
    sleep 0.1
  done
  echo "daemon never reported readiness" >&2
  cat "$log" >&2
  return 1
}

stop_daemon() {
  kill "$daemon_pid" 2>/dev/null || true
  wait "$daemon_pid" 2>/dev/null || true
  daemon_pid=""
}

# --- Replay determinism + cache reuse -----------------------------------
start_daemon "$workdir/daemon_replay.log" --workers 4 --queue-capacity 64

for run in a b; do
  "$LOADGEN" --addr "$addr" --requests 60 --concurrency 6 --seed 11 \
    --reads 2 --sweeps 80 --include-traces \
    --out "$workdir/run_$run.json" --plans "$workdir/plans_$run.txt"
done

cmp "$workdir/plans_a.txt" "$workdir/plans_b.txt" \
  || { echo "replayed plans differ" >&2; exit 1; }
echo "replay: plans byte-identical"

"$QLRB" trace diff "$workdir/run_a.json" "$workdir/run_b.json" \
  || { echo "replayed solve traces diverged" >&2; exit 1; }
echo "replay: trace diff clean"

python3 - "$workdir/run_a.json" "$workdir/run_b.json" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))["server"]
b = json.load(open(sys.argv[2]))["server"]
n = len(a["requests"])
assert a["completed"] + a["rejected"] == n, "run a dropped a request"
assert a["rejected"] == 0, f"unsaturated run shed load: {a['rejected']}"
assert a["cache_hits"] > 0, "repeat-tenant requests never hit the cache"
assert a["cache_misses"] > 0, "a cold cache must miss at least once"
assert all(r["trace_digest"] for r in a["requests"]), "completed request without a digest"
assert 0 < a["p50_latency_ms"] <= a["p99_latency_ms"], "latency percentiles inconsistent"
assert a["throughput_rps"] > 0, "no throughput recorded"
# Second replay ran against the warm daemon: every model is cached.
assert b["rejected"] == 0 and b["completed"] == len(b["requests"])
assert b["cache_hits"] == b["completed"], (
    f"warm replay should be all hits: {b['cache_hits']}/{b['completed']}")
print(f"replay: cache {a['cache_hits']} hit(s) / {a['cache_misses']} miss(es) cold, "
      f"{b['cache_hits']}/{b['completed']} hits warm; "
      f"p50 {a['p50_latency_ms']:.1f} ms, p99 {a['p99_latency_ms']:.1f} ms, "
      f"{a['throughput_rps']:.1f} req/s")
EOF

stop_daemon

# --- Overload: structured shedding, zero dropped in-flight solves -------
start_daemon "$workdir/daemon_tiny.log" --workers 1 --queue-capacity 1

"$LOADGEN" --addr "$addr" --requests 24 --concurrency 12 --seed 5 \
  --reads 6 --sweeps 600 --out "$workdir/overload.json"

python3 - "$workdir/overload.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))["server"]
n = len(s["requests"])
assert s["completed"] + s["rejected"] == n, (
    f"dropped in-flight solves: {s['completed']} + {s['rejected']} != {n}")
assert s["rejected"] > 0, "saturation produced no rejections"
assert s["completed"] >= 1, "admitted requests must still complete"
assert s["max_queue_depth"] <= s["queue_capacity"], "queue exceeded its bound"
rejected = [r for r in s["requests"] if r["outcome"] == "rejected"]
assert all(not r["trace_digest"] and not r["cache"] for r in rejected), (
    "rejections must be structured (no solve evidence)")
print(f"overload: {s['completed']} completed / {s['rejected']} rejected of {n}, "
      f"peak queue {s['max_queue_depth']}/{s['queue_capacity']}")
EOF

stop_daemon

# Refresh the committed load-test evidence with this machine's run.
mkdir -p results
cp "$workdir/run_a.json" results/server_load.json
echo "check_server: wrote results/server_load.json"

echo "check_server: OK"
