#!/usr/bin/env bash
# Smoke-checks the static-analysis pipeline end to end: the workspace
# source linter must be clean, and `qlrb lint` must certify the bundled
# MxM imbalance instance clean in both text and JSON modes.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# 1. Workspace invariants (no-unwrap / no-wallclock / no-entropy /
#    forbid-unsafe; see DESIGN.md §Static analysis).
cargo run --release --quiet -p xtask -- lint

# 2. Model lint on a real instance: generate the paper's Imb.3 MxM case
#    and lint both formulations.
input="$workdir/input.csv"
cargo run --release --quiet --bin qlrb -- \
  generate --workload mxm-imbalance --case Imb.3 --out "$input"

report="$(cargo run --release --quiet --bin qlrb -- lint --input "$input")"
echo "$report"
echo "$report" | grep -q "Q_CQM1" || { echo "missing Q_CQM1 report" >&2; exit 1; }
echo "$report" | grep -q "Q_CQM2" || { echo "missing Q_CQM2 report" >&2; exit 1; }
echo "$report" | grep -q "clean" || { echo "built models should lint clean" >&2; exit 1; }

json="$(cargo run --release --quiet --bin qlrb -- lint --input "$input" --json)"
echo "$json" | grep -q '"errors": 0' || { echo "json reports errors" >&2; exit 1; }
echo "$json" | grep -q '"diagnostics"' || { echo "json missing diagnostics key" >&2; exit 1; }

echo "check_lint: OK"
