#!/usr/bin/env bash
# Tier-1 verification plus the lint gate (see ROADMAP.md):
# format check, clippy with warnings denied, docs with warnings denied,
# release build, tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Workspace invariants clippy cannot express (DESIGN.md §Static analysis).
cargo run -p xtask -- lint
cargo build --release
cargo test -q
# Model-lint smoke: the bundled MxM instance must certify clean.
./scripts/check_lint.sh
# Scheduler smoke: --early-stop must save reads without costing quality.
./scripts/check_scheduler.sh
# Fault smoke: injected faults stay deterministic; all-crash degrades.
./scripts/check_faults.sh
# Federation smoke: pooled backends + speculation stay deterministic and
# never charge a cancelled duplicate.
./scripts/check_federation.sh
# Bench ratchet: Table-V hybrid medians must not regress >15% over the
# committed baseline (QLRB_SKIP_BENCH_GATE=1 opts out on noisy machines).
./scripts/check_bench.sh
