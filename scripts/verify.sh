#!/usr/bin/env bash
# Tier-1 verification plus the lint gate (see ROADMAP.md):
# format check, clippy with warnings denied, docs with warnings denied,
# release build, tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
cargo build --release
cargo test -q
