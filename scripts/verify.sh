#!/usr/bin/env bash
# Tier-1 verification plus the lint gate (see ROADMAP.md):
# format check, clippy with warnings denied, docs with warnings denied,
# release build, tests, then the smoke gates. Ends with a one-line
# summary of which gates ran and which were skipped via their
# QLRB_SKIP_*_GATE escape hatches.
set -euo pipefail
cd "$(dirname "$0")/.."

ran=()
skipped=()
gate() {
  local name=$1
  shift
  "$@"
  ran+=("$name")
}
skip() {
  skipped+=("$1")
  echo "verify: skipping $1 ($2=1)"
}

gate fmt cargo fmt --check
gate clippy cargo clippy --workspace --all-targets -- -D warnings
gate doc env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Workspace invariants clippy cannot express (DESIGN.md §Static analysis).
gate xtask-lint cargo run -p xtask -- lint
gate build cargo build --release
gate test cargo test -q
# Model-lint smoke: the bundled MxM instance must certify clean.
gate lint ./scripts/check_lint.sh
# Scheduler smoke: --early-stop must save reads without costing quality.
gate scheduler ./scripts/check_scheduler.sh
# Fault smoke: injected faults stay deterministic; all-crash degrades.
gate faults ./scripts/check_faults.sh
# Federation smoke: pooled backends + speculation stay deterministic and
# never charge a cancelled duplicate.
gate federation ./scripts/check_federation.sh
# Telemetry smoke: the emitted manifest validates and carries digests.
gate manifest ./scripts/check_manifest.sh
# Bench ratchet: Table-V hybrid medians must not regress >15% over the
# committed baseline (QLRB_SKIP_BENCH_GATE=1 opts out on noisy machines).
if [ "${QLRB_SKIP_BENCH_GATE:-0}" = "1" ]; then
  skip bench QLRB_SKIP_BENCH_GATE
else
  gate bench ./scripts/check_bench.sh
fi
# Determinism replay gate: every solver configuration must reproduce its
# trace digest bit-for-bit on replay; divergences must localize
# (QLRB_SKIP_DETERMINISM_GATE=1 opts out while bisecting).
if [ "${QLRB_SKIP_DETERMINISM_GATE:-0}" = "1" ]; then
  skip determinism QLRB_SKIP_DETERMINISM_GATE
else
  gate determinism ./scripts/check_determinism.sh
fi
# Decomposition smoke: a 1024-node instance past the monolithic ceiling
# must fail structurally without --decompose and solve deterministically
# with it (QLRB_SKIP_DECOMPOSE_GATE=1 opts out on slow machines).
if [ "${QLRB_SKIP_DECOMPOSE_GATE:-0}" = "1" ]; then
  skip decompose QLRB_SKIP_DECOMPOSE_GATE
else
  gate decompose ./scripts/check_decompose.sh
fi
# Service gate: the serve daemon must replay a seeded request mix to
# byte-identical plans, reuse cached models for repeat tenants, and shed
# overload with structured rejections — zero dropped in-flight solves
# (QLRB_SKIP_SERVER_GATE=1 opts out on machines without loopback).
if [ "${QLRB_SKIP_SERVER_GATE:-0}" = "1" ]; then
  skip server QLRB_SKIP_SERVER_GATE
else
  gate server ./scripts/check_server.sh
fi

echo "verify: ran [${ran[*]}]; skipped [${skipped[*]:-none}]"
