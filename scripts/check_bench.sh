#!/usr/bin/env bash
# Bench-regression ratchet: re-runs `bench_summary` and compares the
# Table-V hybrid medians in `results/bench_summary.json` against the
# committed `results/bench_baseline.json`. A scenario that regresses more
# than 15% over its baseline median fails the gate.
#
# Opt-outs:
#   QLRB_SKIP_BENCH_GATE=1   skip entirely (underpowered / shared machines
#                            where wall-clock medians are noise).
#   QLRB_BENCH_REUSE=1       compare the existing results/bench_summary.json
#                            instead of re-running the benchmark.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${QLRB_SKIP_BENCH_GATE:-0}" == "1" ]]; then
  echo "check_bench: skipped (QLRB_SKIP_BENCH_GATE=1)"
  exit 0
fi

baseline="results/bench_baseline.json"
current="results/bench_summary.json"
if [[ ! -f "$baseline" ]]; then
  echo "check_bench: missing $baseline" >&2
  exit 1
fi

if [[ "${QLRB_BENCH_REUSE:-0}" != "1" ]]; then
  cargo run --release --quiet -p qlrb-bench --bin bench_summary
fi
if [[ ! -f "$current" ]]; then
  echo "check_bench: missing $current" >&2
  exit 1
fi

# Pulls one scenario's "median_ms" out of a bench JSON file. The schema is
# flat ({"name": ..., "median_ms": ...} one object per line), so awk is
# enough and the gate needs no JSON tooling.
median_of() {
  local file="$1" name="$2"
  awk -v name="$name" '
    $0 ~ "\"name\": \"" name "\"" {
      if (match($0, /"median_ms": [0-9.]+/)) {
        print substr($0, RSTART + 13, RLENGTH - 13)
        exit
      }
    }
  ' "$file"
}

fail=0
# The ratchet tracks the paper's headline "Runtime" quantities plus the
# decomposition frontend's scaling rows; single-sampler rows wobble too
# much at 2 reads to gate on.
for name in hybrid_solve_table5_reduced hybrid_solve_table5_full \
    decompose_1024node decompose_2048node decompose_4096node; do
  base="$(median_of "$baseline" "$name")"
  cur="$(median_of "$current" "$name")"
  if [[ -z "$base" || -z "$cur" ]]; then
    echo "check_bench: scenario $name missing from baseline or current summary" >&2
    fail=1
    continue
  fi
  # Regression threshold: current > baseline * 1.15 (integer microseconds
  # to keep the comparison in awk).
  verdict="$(awk -v b="$base" -v c="$cur" 'BEGIN { print (c > b * 1.15) ? "regressed" : "ok" }')"
  ratio="$(awk -v b="$base" -v c="$cur" 'BEGIN { printf "%.2f", c / b }')"
  echo "check_bench: $name median ${cur} ms vs baseline ${base} ms (x${ratio})"
  if [[ "$verdict" == "regressed" ]]; then
    echo "check_bench: $name regressed >15% over baseline" >&2
    fail=1
  fi
done

if [[ "$fail" != "0" ]]; then
  echo "check_bench: FAILED — investigate before committing, or rerun on a" >&2
  echo "quiet machine; QLRB_SKIP_BENCH_GATE=1 skips the gate where wall-clock" >&2
  echo "is meaningless. If a slowdown is intended, update $baseline with the" >&2
  echo "new numbers and justify it in the PR." >&2
  exit 1
fi
echo "check_bench: OK"
