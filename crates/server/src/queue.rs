//! Bounded admission queue between the accept loop and the worker pool.
//!
//! Admission control lives entirely in [`BoundedQueue::try_push`]: when the
//! queue is at capacity the push fails *immediately* with the observed
//! depth, and the accept loop turns that into a structured 429-style
//! rejection — the daemon never blocks accepts or buffers unboundedly
//! under saturation. Workers block in [`BoundedQueue::pop`] until work
//! arrives. Closing the queue wakes every worker, but jobs already
//! admitted keep draining: `pop` hands out remaining items before
//! returning `None`, so shutdown and overload never drop an in-flight
//! solve.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct QueueState<T> {
    items: VecDeque<T>,
    max_depth: usize,
    closed: bool,
}

/// A fixed-capacity MPMC queue with non-blocking admission and blocking
/// consumption. See the module docs for the shed-don't-block contract.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                max_depth: 0,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        // Pushes and pops only move items; no invariant can be left torn
        // by a panicking holder, so recover rather than wedge the daemon.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits `item` if there is room. Returns `Ok(depth_after_push)` on
    /// admission and `Err(observed_depth)` when the queue is full or
    /// closed — the caller sheds the request with that depth as evidence.
    pub fn try_push(&self, item: T) -> Result<usize, usize> {
        let mut st = self.lock();
        if st.closed || st.items.len() >= self.capacity {
            return Err(st.items.len());
        }
        st.items.push_back(item);
        let depth = st.items.len();
        if depth > st.max_depth {
            st.max_depth = depth;
        }
        drop(st);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available and returns it. Returns `None`
    /// only once the queue is closed *and* fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .available
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops admitting new items and wakes every blocked consumer.
    /// Already-admitted items remain poppable.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently waiting.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Highest depth ever observed.
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_when_full_and_tracks_high_water() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(2), "full queue sheds with its depth");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(2));
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn close_drains_in_flight_items_before_none() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(2), "closed queue admits nothing");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for v in 0..5 {
            while q.try_push(v).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
