//! Just enough HTTP/1.1 to carry JSON over loopback.
//!
//! The daemon speaks a deliberately tiny dialect: one request per
//! connection, `Connection: close`, bodies bounded at 1 MiB, and only the
//! headers we need (`Content-Length`). Keeping the wire layer in-tree —
//! rather than pulling a framework dependency — keeps the server inside
//! the workspace's no-new-dependencies constraint and keeps every byte on
//! the wire auditable by the determinism gate. The client half
//! ([`post`] / [`get`]) exists for the load generator and the check
//! scripts; it speaks the same dialect back.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest request body the server will read (1 MiB): an inline-weights
/// solve for thousands of processes fits comfortably; anything bigger is
/// a client bug or abuse.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed inbound request: method, path, and raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (`GET` / `POST`).
    pub method: String,
    /// Request path (`/solve`, `/stats`, `/health`).
    pub path: String,
    /// Raw body bytes as text (JSON for `/solve`).
    pub body: String,
}

/// Reads one HTTP/1.1 request from `stream`. Fails with a description on
/// malformed framing, oversized bodies, or a dropped connection.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_BODY_BYTES {
            return Err("request headers exceed the size bound".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed before the headers completed".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(format!("malformed request line: {request_line:?}"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length: {:?}", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte bound"
        ));
    }

    let body_start = header_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Writes a one-shot JSON response and flushes. The connection is marked
/// `close`; callers drop the stream afterwards.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> Result<(), String> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write: {e}"))
}

/// Client half: POSTs `body` to `http://{addr}{path}` and returns
/// `(status, body)`. One connection per call, read to EOF.
pub fn post(addr: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Client half: GETs `http://{addr}{path}` and returns `(status, body)`.
pub fn get(addr: &str, path: &str) -> Result<(u16, String), String> {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    )
}

fn roundtrip(addr: &str, raw: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(raw.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    parse_response(&response)
}

fn parse_response(raw: &[u8]) -> Result<(u16, String), String> {
    let header_end =
        find_header_end(raw).ok_or_else(|| "response missing header terminator".to_string())?;
    let head = String::from_utf8_lossy(&raw[..header_end]).into_owned();
    let status_line = head.split("\r\n").next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;
    let body = String::from_utf8_lossy(&raw[header_end + 4..]).into_owned();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/solve");
            assert_eq!(req.body, "{\"workload\":\"samoa\"}");
            write_response(&mut stream, 200, "{\"ok\":true}").unwrap();
        });
        let (status, body) = post(&addr, "/solve", "{\"workload\":\"samoa\"}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn oversized_content_length_is_refused() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream).unwrap_err()
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST /solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        let err = server.join().unwrap();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn status_reasons_cover_the_emitted_codes() {
        for code in [200u16, 400, 404, 429] {
            assert!(!status_reason(code).is_empty());
        }
    }
}
