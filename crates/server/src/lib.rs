#![forbid(unsafe_code)]
//! # qlrb-server — rebalancing as a service
//!
//! The paper's workflow is batch: build a CQM, solve, write a plan. Real
//! HPC schedulers rebalance *continuously* — many tenants, the same few
//! instance shapes, arriving concurrently. This crate turns the batch
//! pipeline into a long-running daemon (`qlrb serve`) without changing a
//! single solver semantic:
//!
//! * [`protocol`] — the JSON wire vocabulary: [`protocol::SolveRequest`],
//!   the unified [`protocol::SolveReply`] envelope (completed / rejected /
//!   invalid), and the [`protocol::ServerStats`] counter snapshot.
//! * [`http`] — a dependency-free HTTP/1.1 sliver (one request per
//!   connection, bounded bodies) carrying that JSON over loopback, plus
//!   the client half the load generator uses.
//! * [`queue`] — [`queue::BoundedQueue`], the admission-control seam:
//!   non-blocking push that sheds with the observed depth (the accept
//!   loop turns that into a 429-style structured rejection), blocking pop
//!   for workers, and drain-on-close so in-flight solves never drop.
//! * [`cache`] — [`cache::ModelCache`], the compiled-model cache keyed on
//!   *(formulation, instance shape)*: repeat tenants skip the quadratic
//!   CSR build and share one base model via
//!   [`qlrb_core::QuantumRebalancer::rebalance_with_base`], with
//!   single-build-per-key concurrency and FIFO eviction.
//! * [`server`] — [`server::Server`]: the accept thread, the bounded
//!   worker pool, and the per-request solve path, every step of which is
//!   validated through the same builder API as the CLI.
//!
//! The `qlrb-loadgen` binary (in `src/bin/`) replays deterministic mixed
//! MxM / sam(oa)² request schedules against a daemon and writes the
//! schema-v8 run manifest (`server` record: per-request admission and
//! latency evidence, cache hit/miss totals, queue high-water, and the
//! p50/p99 + throughput headline) that `scripts/check_server.sh` gates on.

pub mod cache;
pub mod http;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{instance_digest, CacheOutcome, ModelCache, ModelKey};
pub use protocol::{ServerStats, SolveReply, SolveRequest};
pub use queue::BoundedQueue;
pub use server::{Server, ServerConfig, ANONYMOUS_TENANT};
