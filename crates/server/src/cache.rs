//! The compiled-model cache: repeat tenants skip the CQM build.
//!
//! Building an LRP formulation is the expensive, shape-dependent part of a
//! solve request (CSR compilation is quadratic in processes); the budget
//! `k` only rewrites one right-hand side (see
//! [`qlrb_core::cqm::LrpCqm::with_budget`]). The cache therefore keys on
//! *(formulation, instance shape)* — variant label, process count, tasks
//! per process, and a content digest of the weights — and stores one base
//! model built at `k = 0` that every budget shares through
//! [`qlrb_core::QuantumRebalancer::rebalance_with_base`].
//!
//! Concurrency contract: at most one build runs per key. The first
//! requester of a key inserts a `Building` marker and compiles outside the
//! lock; concurrent requesters of the same key wait on a condvar and are
//! served the finished model as a *hit* (they skipped the compile, which
//! is what the counter measures). This also makes the aggregate miss count
//! deterministic under concurrency: one miss per distinct key, regardless
//! of arrival interleaving. Capacity is bounded with FIFO eviction.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use qlrb_core::cqm::{LrpCqm, Variant};
use qlrb_core::Instance;

/// Cache key: the formulation and the instance's exact shape + content.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Formulation label (`"Q_CQM1"` / `"Q_CQM2"`).
    pub formulation: String,
    /// Process count.
    pub procs: usize,
    /// Tasks per process.
    pub tasks: u64,
    /// FNV-1a digest of the weight vector's bit patterns.
    pub digest: u64,
}

impl ModelKey {
    /// The key for solving `inst` under `variant`.
    pub fn for_instance(variant: Variant, inst: &Instance) -> Self {
        Self {
            formulation: variant.label().to_string(),
            procs: inst.num_procs(),
            tasks: inst.tasks_per_proc(),
            digest: instance_digest(inst),
        }
    }
}

/// FNV-1a over the instance's shape and weight bits: two instances collide
/// only if they are bitwise-identical workloads (modulo 64-bit hashing).
pub fn instance_digest(inst: &Instance) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    fold(inst.num_procs() as u64);
    fold(inst.tasks_per_proc());
    for w in inst.weights() {
        fold(w.to_bits());
    }
    drop(fold);
    h
}

/// Whether a lookup was served from cache or compiled on the spot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served a previously compiled model (including "waited for the
    /// in-flight build of the same key" — the compile was still skipped).
    Hit,
    /// Compiled the model on this call.
    Miss,
}

impl CacheOutcome {
    /// The wire label the per-request telemetry records.
    pub fn label(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
        }
    }
}

enum Slot {
    /// A build for this key is in flight on another thread.
    Building,
    /// The compiled base model (built at `k = 0`).
    Ready(Arc<LrpCqm>),
}

struct CacheState {
    slots: HashMap<ModelKey, Slot>,
    /// Insertion order of `Ready` entries, oldest first (FIFO eviction).
    order: VecDeque<ModelKey>,
    hits: u64,
    misses: u64,
}

/// Bounded, blocking compiled-model cache. See the module docs for the
/// keying and single-build-per-key contract.
pub struct ModelCache {
    capacity: usize,
    state: Mutex<CacheState>,
    ready: Condvar,
}

impl ModelCache {
    /// A cache holding at most `capacity` compiled models (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState {
                slots: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        // A worker that panicked mid-solve never holds this lock across a
        // cache mutation (builds happen outside it), so the state is
        // consistent; keep serving rather than poisoning the whole daemon.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the compiled model for `key`, building it with `build` if
    /// absent. Concurrent callers of the same key block until the one
    /// in-flight build finishes and then count as hits. A failed build
    /// clears the marker (so the key can be retried) and propagates the
    /// error to everyone who was waiting on it via their own retry.
    pub fn get_or_build<F>(
        &self,
        key: &ModelKey,
        build: F,
    ) -> Result<(Arc<LrpCqm>, CacheOutcome), String>
    where
        F: FnOnce() -> Result<LrpCqm, String>,
    {
        let mut st = self.lock();
        loop {
            match st.slots.get(key) {
                Some(Slot::Ready(model)) => {
                    let model = Arc::clone(model);
                    st.hits += 1;
                    return Ok((model, CacheOutcome::Hit));
                }
                Some(Slot::Building) => {
                    st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                None => break,
            }
        }
        st.slots.insert(key.clone(), Slot::Building);
        drop(st);

        let built = build();
        let mut st = self.lock();
        match built {
            Ok(model) => {
                let model = Arc::new(model);
                while st.order.len() + 1 > self.capacity {
                    match st.order.pop_front() {
                        Some(old) => {
                            st.slots.remove(&old);
                        }
                        None => break,
                    }
                }
                st.slots
                    .insert(key.clone(), Slot::Ready(Arc::clone(&model)));
                st.order.push_back(key.clone());
                st.misses += 1;
                self.ready.notify_all();
                Ok((model, CacheOutcome::Miss))
            }
            Err(e) => {
                st.slots.remove(key);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// `(hits, misses)` since construction.
    pub fn counters(&self) -> (u64, u64) {
        let st = self.lock();
        (st.hits, st.misses)
    }

    /// Compiled models currently resident.
    pub fn len(&self) -> usize {
        self.lock().order.len()
    }

    /// Whether the cache holds no compiled models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(weights: Vec<f64>) -> Instance {
        Instance::uniform(10, weights).unwrap()
    }

    fn build_for(inst: &Instance, variant: Variant) -> Result<LrpCqm, String> {
        LrpCqm::build(inst, variant, 0).map_err(|e| e.to_string())
    }

    #[test]
    fn repeat_lookups_hit() {
        let cache = ModelCache::new(8);
        let i = inst(vec![1.0, 2.0, 4.0]);
        let key = ModelKey::for_instance(Variant::Reduced, &i);
        let (_, first) = cache
            .get_or_build(&key, || build_for(&i, Variant::Reduced))
            .unwrap();
        let (model, second) = cache
            .get_or_build(&key, || panic!("second lookup must not rebuild"))
            .unwrap();
        assert_eq!(first, CacheOutcome::Miss);
        assert_eq!(second, CacheOutcome::Hit);
        assert_eq!(model.variant, Variant::Reduced);
        assert_eq!(cache.counters(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_shapes_and_formulations_get_distinct_slots() {
        let cache = ModelCache::new(8);
        let a = inst(vec![1.0, 2.0, 4.0]);
        let b = inst(vec![1.0, 2.0, 5.0]);
        for (i, variant) in [
            (&a, Variant::Reduced),
            (&a, Variant::Full),
            (&b, Variant::Reduced),
        ] {
            let key = ModelKey::for_instance(variant, i);
            let (_, outcome) = cache.get_or_build(&key, || build_for(i, variant)).unwrap();
            assert_eq!(outcome, CacheOutcome::Miss);
        }
        assert_eq!(cache.counters(), (0, 3));
        assert_ne!(
            ModelKey::for_instance(Variant::Reduced, &a),
            ModelKey::for_instance(Variant::Reduced, &b)
        );
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = ModelCache::new(2);
        let weights = [
            vec![1.0, 2.0, 3.0],
            vec![1.0, 2.0, 4.0],
            vec![1.0, 2.0, 5.0],
        ];
        let insts: Vec<Instance> = weights.iter().map(|w| inst(w.clone())).collect();
        for i in &insts {
            let key = ModelKey::for_instance(Variant::Reduced, i);
            cache
                .get_or_build(&key, || build_for(i, Variant::Reduced))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        // The first key was evicted; looking it up again rebuilds.
        let key = ModelKey::for_instance(Variant::Reduced, &insts[0]);
        let (_, outcome) = cache
            .get_or_build(&key, || build_for(&insts[0], Variant::Reduced))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
    }

    #[test]
    fn failed_build_clears_the_marker() {
        let cache = ModelCache::new(2);
        let i = inst(vec![1.0, 2.0, 4.0]);
        let key = ModelKey::for_instance(Variant::Full, &i);
        let err = cache.get_or_build(&key, || Err("boom".into()));
        assert_eq!(err.unwrap_err(), "boom");
        assert_eq!(cache.counters(), (0, 0));
        // The key is retryable.
        let (_, outcome) = cache
            .get_or_build(&key, || build_for(&i, Variant::Full))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Arc::new(ModelCache::new(8));
        let i = Arc::new(inst(vec![1.0, 2.0, 4.0, 8.0]));
        let builds = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (cache, i, builds) = (Arc::clone(&cache), Arc::clone(&i), Arc::clone(&builds));
            handles.push(std::thread::spawn(move || {
                let key = ModelKey::for_instance(Variant::Reduced, &i);
                let (_, outcome) = cache
                    .get_or_build(&key, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        build_for(&i, Variant::Reduced)
                    })
                    .unwrap();
                outcome
            }));
        }
        let outcomes: Vec<CacheOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "one build per key");
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| **o == CacheOutcome::Miss)
                .count(),
            1
        );
        assert_eq!(cache.counters(), (7, 1));
    }
}
