//! The `qlrb serve` daemon: accept loop, bounded worker pool, and the
//! per-request solve path.
//!
//! Architecture (one box per module):
//!
//! ```text
//!   accept thread ──► BoundedQueue ──► worker pool (N threads)
//!        │                 │                 │
//!        │ full? 429       │ high-water      ├─► ModelCache (hit/miss)
//!        ▼                 ▼                 ▼
//!   SolveReply::overloaded              builder-validated solve
//! ```
//!
//! Every solve request flows through the same builder API the CLI uses
//! ([`qlrb_anneal::hybrid::HybridCqmSolver::builder`]), so server-side
//! validation is *identical* to batch validation: a zero read deadline, an
//! unknown workload, or a malformed body all come back as structured
//! `invalid` replies — the daemon never panics on input. Admission control
//! is a bounded queue: when it is full the accept thread answers
//! immediately with a 429-style `rejected` reply carrying the observed
//! depth and a retry hint, and already-admitted solves always finish
//! (the queue drains on close).
//!
//! Determinism: a request's plan depends only on the request itself (its
//! workload, method, budget, and seed) — never on queue timing or cache
//! state, because cached base models are observationally identical to
//! fresh builds (regression-tested in `qlrb-core`). Replaying a request
//! mix therefore reproduces byte-identical plans and trace digests, which
//! `scripts/check_server.sh` gates on.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use qlrb_anneal::hybrid::HybridCqmSolver;
use qlrb_core::cqm::{LrpCqm, Variant};
use qlrb_core::io::write_output_csv;
use qlrb_core::{Instance, QuantumRebalancer};
use qlrb_telemetry::{MemorySink, TraceSink};

use crate::cache::{CacheOutcome, ModelCache, ModelKey};
use crate::http;
use crate::protocol::{ServerStats, SolveReply, SolveRequest, OUTCOME_COMPLETED};
use crate::queue::BoundedQueue;

/// Tenant label used when a request leaves `tenant` empty.
pub const ANONYMOUS_TENANT: &str = "anonymous";

/// Tunables for one daemon instance. `Default` matches the CLI defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests, gate scripts).
    pub addr: String,
    /// Worker threads solving concurrently.
    pub workers: usize,
    /// Bounded-queue capacity; pushes beyond it are shed with a 429.
    pub queue_capacity: usize,
    /// Compiled-model cache capacity, in models.
    pub cache_capacity: usize,
    /// Per-tenant ceiling on reads per solve (requests are clamped).
    pub max_reads: usize,
    /// Per-tenant ceiling on sweeps per read (requests are clamped).
    pub max_sweeps: usize,
    /// Reads per solve when the request does not say.
    pub default_num_reads: usize,
    /// Sweeps per read when the request does not say.
    pub default_sweeps: usize,
    /// Per-read proposal-clock deadline applied when the request does not
    /// carry one; `None` leaves reads un-deadlined.
    pub default_read_deadline_proposals: Option<u64>,
    /// Backoff hint stamped on rejected replies.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            queue_capacity: 64,
            cache_capacity: 64,
            max_reads: 16,
            max_sweeps: 2000,
            default_num_reads: 2,
            default_sweeps: 200,
            default_read_deadline_proposals: None,
            retry_after_ms: 50,
        }
    }
}

/// One admitted solve: the parsed request plus the connection to answer on.
struct Job {
    request: SolveRequest,
    stream: TcpStream,
    depth_at_admission: usize,
}

struct Counters {
    requests: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    invalid: AtomicU64,
}

/// A running daemon. Dropping the handle does not stop it; call
/// [`Server::shutdown`] (or let the process exit).
pub struct Server {
    cfg: ServerConfig,
    addr: std::net::SocketAddr,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ModelCache>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept thread and the worker pool, and returns.
    pub fn start(cfg: ServerConfig) -> Result<Self, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let queue = Arc::new(BoundedQueue::<Job>::new(cfg.queue_capacity));
        let cache = Arc::new(ModelCache::new(cfg.cache_capacity));
        let counters = Arc::new(Counters {
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));

        let mut worker_handles = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let queue = Arc::clone(&queue);
            let cache = Arc::clone(&cache);
            let counters = Arc::clone(&counters);
            let cfg = cfg.clone();
            worker_handles.push(std::thread::spawn(move || {
                while let Some(mut job) = queue.pop() {
                    let reply = solve_job(&cfg, &cache, &job.request, job.depth_at_admission);
                    match reply.outcome.as_str() {
                        OUTCOME_COMPLETED => counters.completed.fetch_add(1, Ordering::Relaxed),
                        _ => counters.invalid.fetch_add(1, Ordering::Relaxed),
                    };
                    respond(&mut job.stream, &reply);
                }
            }));
        }

        let accept_handle = {
            let queue = Arc::clone(&queue);
            let cache = Arc::clone(&cache);
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else { continue };
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    handle_connection(&cfg, &queue, &cache, &counters, &mut stream);
                }
            })
        };

        Ok(Self {
            cfg,
            addr,
            queue,
            cache,
            counters,
            stop,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Counter snapshot, as served at `GET /stats`.
    pub fn stats(&self) -> ServerStats {
        let (cache_hits, cache_misses) = self.cache.counters();
        ServerStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            invalid: self.counters.invalid.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_entries: self.cache.len(),
            cache_capacity: self.cache.capacity(),
            queue_depth: self.queue.depth(),
            max_queue_depth: self.queue.max_depth(),
            queue_capacity: self.queue.capacity(),
            workers: self.worker_handles.len(),
        }
    }

    /// Stops accepting, drains the queue (admitted solves still finish),
    /// and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.queue.close();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until the accept thread exits (i.e. forever, for the CLI
    /// foreground daemon; until [`Server::shutdown`] from another thread
    /// otherwise).
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.queue.close();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }

    /// The configuration this daemon was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }
}

fn respond(stream: &mut TcpStream, reply: &SolveReply) {
    let body = serde_json::to_string(reply).unwrap_or_else(|_| "{}".into());
    let _ = http::write_response(stream, reply.http_status(), &body);
}

/// One connection: route by method/path, answer, close.
fn handle_connection(
    cfg: &ServerConfig,
    queue: &Arc<BoundedQueue<Job>>,
    cache: &Arc<ModelCache>,
    counters: &Arc<Counters>,
    stream: &mut TcpStream,
) {
    let req = match http::read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            let reply = SolveReply::invalid(0, ANONYMOUS_TENANT, format!("malformed request: {e}"));
            respond(stream, &reply);
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            let _ = http::write_response(stream, 200, "{\"ok\":true}");
        }
        ("GET", "/stats") => {
            let (cache_hits, cache_misses) = cache.counters();
            let stats = ServerStats {
                requests: counters.requests.load(Ordering::Relaxed),
                completed: counters.completed.load(Ordering::Relaxed),
                rejected: counters.rejected.load(Ordering::Relaxed),
                invalid: counters.invalid.load(Ordering::Relaxed),
                cache_hits,
                cache_misses,
                cache_entries: cache.len(),
                cache_capacity: cache.capacity(),
                queue_depth: queue.depth(),
                max_queue_depth: queue.max_depth(),
                queue_capacity: queue.capacity(),
                workers: cfg.workers.max(1),
            };
            let body = serde_json::to_string(&stats).unwrap_or_else(|_| "{}".into());
            let _ = http::write_response(stream, 200, &body);
        }
        ("POST", "/solve") => {
            counters.requests.fetch_add(1, Ordering::Relaxed);
            let solve: SolveRequest = match serde_json::from_str(&req.body) {
                Ok(s) => s,
                Err(e) => {
                    counters.invalid.fetch_add(1, Ordering::Relaxed);
                    let reply =
                        SolveReply::invalid(0, ANONYMOUS_TENANT, format!("bad JSON body: {e}"));
                    respond(stream, &reply);
                    return;
                }
            };
            let id = solve.id;
            let tenant = normalize_tenant(&solve.tenant);
            // Admission control: try_push or shed, never block the accept
            // loop. The stream travels with the job; the worker answers.
            let stream_clone = match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    counters.invalid.fetch_add(1, Ordering::Relaxed);
                    let reply = SolveReply::invalid(id, &tenant, format!("connection error: {e}"));
                    respond(stream, &reply);
                    return;
                }
            };
            let depth_at_admission = queue.depth();
            match queue.try_push(Job {
                request: solve,
                stream: stream_clone,
                depth_at_admission,
            }) {
                Ok(_depth) => {}
                Err(depth) => {
                    counters.rejected.fetch_add(1, Ordering::Relaxed);
                    let reply = SolveReply::overloaded(
                        id,
                        &tenant,
                        depth,
                        queue.capacity(),
                        cfg.retry_after_ms,
                    );
                    respond(stream, &reply);
                }
            }
        }
        _ => {
            let _ = http::write_response(
                stream,
                404,
                &format!("{{\"error\":\"no such endpoint\",\"path\":{:?}}}", req.path),
            );
        }
    }
}

fn normalize_tenant(tenant: &str) -> String {
    if tenant.is_empty() {
        ANONYMOUS_TENANT.into()
    } else {
        tenant.into()
    }
}

/// Resolves the request's workload to an [`Instance`].
fn resolve_instance(req: &SolveRequest) -> Result<Instance, String> {
    let case = req.case.as_deref().unwrap_or("");
    match req.workload.as_str() {
        "mxm-imbalance" => {
            let want = if case.is_empty() { "Imb.3" } else { case };
            qlrb_workloads::imbalance_levels()
                .into_iter()
                .find(|(label, _)| label == want)
                .map(|(_, inst)| inst)
                .ok_or_else(|| format!("no imbalance case {want:?} (expected Imb.0 – Imb.4)"))
        }
        "mxm-nodes" => {
            let want = if case.is_empty() { "8" } else { case };
            qlrb_workloads::node_scaling()
                .into_iter()
                .find(|(m, _)| m.to_string() == want)
                .map(|(_, inst)| inst)
                .ok_or_else(|| format!("no node-scaling case {want:?} (expected 4/8/16/32/64)"))
        }
        "mxm-tasks" => {
            let want = if case.is_empty() { "10" } else { case };
            qlrb_workloads::task_scaling()
                .into_iter()
                .find(|(n, _)| n.to_string() == want)
                .map(|(_, inst)| inst)
                .ok_or_else(|| format!("no task-scaling case {want:?}"))
        }
        "samoa" => Ok(samoa_mini::LakeScenario::small().to_instance()),
        "samoa-table5" => Ok(samoa_mini::scenario::table5_instance()),
        "inline" => {
            let weights = req
                .weights
                .clone()
                .ok_or_else(|| "workload \"inline\" requires `weights`".to_string())?;
            Instance::uniform(req.tasks_per_proc.unwrap_or(16), weights)
                .map_err(|e| format!("invalid inline instance: {e}"))
        }
        other => Err(format!(
            "no such workload {other:?} (expected mxm-imbalance, mxm-nodes, mxm-tasks, samoa, samoa-table5, or inline)"
        )),
    }
}

fn resolve_variant(method: &str) -> Result<Variant, String> {
    match method {
        "" | "qcqm1" => Ok(Variant::Reduced),
        "qcqm2" => Ok(Variant::Full),
        other => Err(format!(
            "no such method {other:?} (expected qcqm1 or qcqm2)"
        )),
    }
}

/// The worker-side solve path: validate through the builder, fetch or
/// compile the base model, solve against it, and assemble the reply.
/// Infallible in the panic sense — every error becomes an `invalid` reply.
fn solve_job(
    cfg: &ServerConfig,
    cache: &ModelCache,
    req: &SolveRequest,
    depth_at_admission: usize,
) -> SolveReply {
    let tenant = normalize_tenant(&req.tenant);
    let inst = match resolve_instance(req) {
        Ok(i) => i,
        Err(e) => return SolveReply::invalid(req.id, &tenant, e),
    };
    let variant = match resolve_variant(&req.method) {
        Ok(v) => v,
        Err(e) => return SolveReply::invalid(req.id, &tenant, e),
    };

    // Per-tenant read budget: requests are clamped to the configured
    // ceiling rather than rejected — a tenant asking for more work gets
    // the most the server will grant.
    let num_reads = req
        .num_reads
        .unwrap_or(cfg.default_num_reads)
        .clamp(1, cfg.max_reads.max(1));
    let sweeps = req
        .sweeps
        .unwrap_or(cfg.default_sweeps)
        .clamp(1, cfg.max_sweeps.max(1));
    // `Some(0)` must reach the builder so the ZeroReadDeadline validation
    // fires as a structured reply, not get silently defaulted away.
    let deadline = match req.read_deadline_proposals {
        Some(d) => Some(d),
        None => cfg.default_read_deadline_proposals,
    };
    let seed = req.seed.unwrap_or(2024);

    let sink = Arc::new(MemorySink::new());
    let solver = match HybridCqmSolver::builder()
        .num_reads(num_reads)
        .sweeps(sweeps)
        .seed(seed)
        .read_deadline_proposals(deadline)
        .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .build()
    {
        Ok(s) => s,
        Err(e) => {
            return SolveReply::invalid(req.id, &tenant, format!("invalid solver config: {e}"))
        }
    };

    // The compiled-model cache: one base CQM per (formulation, shape),
    // built at k = 0; each request rewrites only the budget RHS.
    let key = ModelKey::for_instance(variant, &inst);
    let (base, outcome) = match cache.get_or_build(&key, || {
        LrpCqm::build(&inst, variant, 0).map_err(|e| format!("model build failed: {e}"))
    }) {
        Ok(pair) => pair,
        Err(e) => return SolveReply::invalid(req.id, &tenant, e),
    };

    let total_tasks = inst.tasks_per_proc() * inst.num_procs() as u64;
    let k = req.k.unwrap_or_else(|| (total_tasks / 4).max(1));
    let rebalancer = QuantumRebalancer {
        variant,
        k,
        solver,
        label: None,
        extra_seed_plans: Vec::new(),
        prune_tolerance: 0.02,
        migration_penalty: 0.0,
    };
    let out = match rebalancer.rebalance_with_base(&inst, &base) {
        Ok(o) => o,
        Err(e) => return SolveReply::invalid(req.id, &tenant, format!("solve failed: {e}")),
    };

    let before = inst.stats();
    let after = inst.stats_after(&out.matrix);
    let record = sink.take().into_iter().next_back();
    let trace_digest = record
        .as_ref()
        .map(|r| r.trace_digest.clone())
        .unwrap_or_default();

    SolveReply {
        id: req.id,
        tenant,
        outcome: OUTCOME_COMPLETED.into(),
        cache: match outcome {
            CacheOutcome::Hit => "hit".into(),
            CacheOutcome::Miss => "miss".into(),
        },
        queue_depth: depth_at_admission,
        plan_csv: write_output_csv(&inst, &out.matrix),
        imbalance_before: before.imbalance_ratio,
        imbalance_after: after.imbalance_ratio,
        migrated: out.matrix.num_migrated(),
        method_label: variant.label().into(),
        trace_digest,
        solve: if req.include_trace { record } else { None },
        ..SolveReply::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{OUTCOME_INVALID, OUTCOME_REJECTED};

    fn test_server(queue_capacity: usize) -> Server {
        Server::start(ServerConfig {
            workers: 2,
            queue_capacity,
            default_num_reads: 2,
            default_sweeps: 60,
            ..ServerConfig::default()
        })
        .unwrap()
    }

    fn post_solve(addr: &str, body: &str) -> (u16, SolveReply) {
        let (status, text) = http::post(addr, "/solve", body).unwrap();
        let reply: SolveReply = serde_json::from_str(&text).unwrap_or_else(|e| {
            panic!("unparsable reply ({e}): {text}");
        });
        (status, reply)
    }

    #[test]
    fn solves_and_caches_over_http() {
        let server = test_server(16);
        let addr = server.local_addr().to_string();

        let (status, health) = http::get(&addr, "/health").unwrap();
        assert_eq!((status, health.as_str()), (200, "{\"ok\":true}"));

        let body = "{\"id\": 1, \"tenant\": \"t-a\", \"workload\": \"samoa\", \"seed\": 7}";
        let (status, first) = post_solve(&addr, body);
        assert_eq!(status, 200, "{first:?}");
        assert_eq!(first.outcome, OUTCOME_COMPLETED);
        assert_eq!(first.cache, "miss");
        assert_eq!(first.method_label, "Q_CQM1");
        assert!(!first.plan_csv.is_empty());
        assert!(!first.trace_digest.is_empty());
        assert!(first.imbalance_after <= first.imbalance_before);

        // Same tenant shape again: the compiled model is reused and the
        // solve (same seed) reproduces the identical plan + digest.
        let (_, second) = post_solve(&addr, body);
        assert_eq!(second.cache, "hit");
        assert_eq!(second.plan_csv, first.plan_csv);
        assert_eq!(second.trace_digest, first.trace_digest);

        let stats = server.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);

        let (status, text) = http::get(&addr, "/stats").unwrap();
        assert_eq!(status, 200);
        let wire_stats: ServerStats = serde_json::from_str(&text).unwrap();
        assert_eq!(wire_stats.completed, 2);

        server.shutdown();
    }

    #[test]
    fn invalid_requests_get_structured_replies() {
        let server = test_server(16);
        let addr = server.local_addr().to_string();

        let cases = [
            "{\"workload\": \"no-such-workload\"}",
            "{\"workload\": \"samoa\", \"method\": \"qaoa\"}",
            "{\"workload\": \"inline\"}",
            "{\"workload\": \"samoa\", \"read_deadline_proposals\": 0}",
            "this is not json",
        ];
        for body in cases {
            let (status, reply) = post_solve(&addr, body);
            assert_eq!(status, 400, "{body}");
            assert_eq!(reply.outcome, OUTCOME_INVALID, "{body}");
            assert!(!reply.detail.is_empty(), "{body}");
        }
        // The zero-deadline rejection surfaces the builder's error text.
        let (_, reply) = post_solve(
            &addr,
            "{\"workload\": \"samoa\", \"read_deadline_proposals\": 0}",
        );
        assert!(
            reply.detail.contains("read_deadline_proposals"),
            "builder error should name the deadline: {}",
            reply.detail
        );
        assert_eq!(server.stats().invalid, cases.len() as u64 + 1);
        server.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_429_and_drains_in_flight() {
        // One worker, capacity-1 queue, slow-ish solves: firing a burst
        // concurrently must produce at least one rejection, and every
        // admitted request must still complete.
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 1,
            default_num_reads: 4,
            default_sweeps: 400,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();

        let burst = 12;
        let mut handles = Vec::new();
        for i in 0..burst {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let body = format!(
                    "{{\"id\": {i}, \"workload\": \"mxm-imbalance\", \"case\": \"Imb.3\", \"seed\": {i}}}"
                );
                post_solve(&addr, &body)
            }));
        }
        let replies: Vec<(u16, SolveReply)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let completed = replies
            .iter()
            .filter(|(_, r)| r.outcome == OUTCOME_COMPLETED)
            .count();
        let rejected = replies
            .iter()
            .filter(|(s, r)| r.outcome == OUTCOME_REJECTED && *s == 429)
            .count();
        assert_eq!(completed + rejected, burst, "no request may vanish");
        assert!(completed >= 1, "the admitted requests complete");
        for (_, r) in replies
            .iter()
            .filter(|(_, r)| r.outcome == OUTCOME_REJECTED)
        {
            assert_eq!(r.error, crate::protocol::ERROR_OVERLOADED);
            assert!(r.retry_after_ms > 0);
        }
        let stats = server.stats();
        assert_eq!(stats.completed + stats.rejected, burst as u64);
        server.shutdown();
    }
}
