//! `qlrb-loadgen` — deterministic load generator for `qlrb serve`.
//!
//! Replays a seeded mix of MxM and sam(oa)² solve requests (several
//! tenants, both formulations, a handful of instance shapes so the
//! compiled-model cache sees repeats) against a running daemon from a
//! configurable number of client threads, then writes the schema-v8 run
//! manifest: the `server` record with one entry per request (outcome,
//! cache hit/miss, queue depth, client-observed latency, trace digest)
//! and the p50/p99 + throughput headline.
//!
//! Everything about the *schedule* is a pure function of `--seed`:
//! workload, tenant, formulation, and per-request solver seed all come
//! from splitmix64 streams. Combined with the solver's own determinism
//! this makes replays comparable — `scripts/check_server.sh` runs the
//! same schedule twice and requires byte-identical plans files and
//! trace-diff-clean manifests. Latencies and queue depths are of course
//! not reproducible; the determinism audit (`qlrb trace diff`) ignores
//! the `server` record for exactly that reason.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use qlrb_server::http;
use qlrb_server::protocol::{
    ServerStats, SolveReply, SolveRequest, OUTCOME_COMPLETED, OUTCOME_REJECTED,
};
use qlrb_telemetry::{
    percentile_ms, CaseTrace, ConfigSnapshot, MethodTrace, RunManifest, ServerLoadRecord,
    ServerRequestRecord,
};

const USAGE: &str = "\
qlrb-loadgen — deterministic load generator for the qlrb serve daemon

USAGE:
    qlrb-loadgen [--addr HOST:PORT] [--requests N] [--concurrency C]
                 [--seed S] [--reads R] [--sweeps W] [--include-traces]
                 [--out MANIFEST.json] [--plans PLANS.txt]

OPTIONS:
    --addr HOST:PORT     daemon to load (default 127.0.0.1:7077)
    --requests N         total solve requests to send (default 200)
    --concurrency C      client threads posting concurrently (default 8)
    --seed S             schedule seed; the whole request mix derives from
                         it (default 2024)
    --reads R            num_reads sent with every request (default 2)
    --sweeps W           sweeps sent with every request (default 120)
    --include-traces     ask for full solve records and emit one manifest
                         case per completed request (replay diffing)
    --out PATH           write the schema-v8 run manifest here
    --plans PATH         write the id-ordered plans file here (byte-identical
                         across replays of the same seed)
";

/// The request mix: a few shapes, repeated, so the model cache earns hits.
const WORKLOADS: &[(&str, &str)] = &[
    ("mxm-imbalance", "Imb.1"),
    ("mxm-imbalance", "Imb.3"),
    ("mxm-nodes", "8"),
    ("mxm-nodes", "16"),
    ("samoa", ""),
];
const TENANTS: &[&str] = &["tenant-0", "tenant-1", "tenant-2", "tenant-3"];
const METHODS: &[&str] = &["qcqm1", "qcqm2"];

struct Options {
    addr: String,
    requests: usize,
    concurrency: usize,
    seed: u64,
    reads: usize,
    sweeps: usize,
    include_traces: bool,
    out: Option<String>,
    plans: Option<String>,
}

fn fail(msg: &str) -> ! {
    eprintln!("qlrb-loadgen: {msg}");
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut opts = Options {
        addr: "127.0.0.1:7077".into(),
        requests: 200,
        concurrency: 8,
        seed: 2024,
        reads: 2,
        sweeps: 120,
        include_traces: false,
        out: None,
        plans: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--requests" => {
                opts.requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| fail("--requests must be an integer"));
            }
            "--concurrency" => {
                opts.concurrency = value("--concurrency")
                    .parse()
                    .unwrap_or_else(|_| fail("--concurrency must be an integer"));
            }
            "--seed" => {
                opts.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed must be an integer"));
            }
            "--reads" => {
                opts.reads = value("--reads")
                    .parse()
                    .unwrap_or_else(|_| fail("--reads must be an integer"));
            }
            "--sweeps" => {
                opts.sweeps = value("--sweeps")
                    .parse()
                    .unwrap_or_else(|_| fail("--sweeps must be an integer"));
            }
            "--include-traces" => opts.include_traces = true,
            "--out" => opts.out = Some(value("--out")),
            "--plans" => opts.plans = Some(value("--plans")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if opts.requests == 0 {
        fail("--requests must be at least 1");
    }
    if opts.concurrency == 0 {
        fail("--concurrency must be at least 1");
    }
    opts
}

/// splitmix64: the schedule's only randomness source — stateless per
/// request, so request `i` is the same regardless of thread interleaving.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic request for slot `i` of the schedule.
fn request_for(opts: &Options, i: usize) -> SolveRequest {
    let mut state = opts.seed ^ (i as u64).wrapping_mul(0xa076_1d64_78bd_642f);
    let (workload, case) = WORKLOADS[(splitmix64(&mut state) % WORKLOADS.len() as u64) as usize];
    let tenant = TENANTS[(splitmix64(&mut state) % TENANTS.len() as u64) as usize];
    let method = METHODS[(splitmix64(&mut state) % METHODS.len() as u64) as usize];
    let solver_seed = splitmix64(&mut state) % 100_000;
    SolveRequest {
        id: i as u64,
        tenant: tenant.to_string(),
        workload: workload.to_string(),
        case: if case.is_empty() {
            None
        } else {
            Some(case.to_string())
        },
        method: method.to_string(),
        seed: Some(solver_seed),
        num_reads: Some(opts.reads),
        sweeps: Some(opts.sweeps),
        include_trace: opts.include_traces,
        ..SolveRequest::default()
    }
}

struct Outcome {
    id: u64,
    request: SolveRequest,
    reply: SolveReply,
    latency_ms: f64,
}

fn main() {
    let opts = Arc::new(parse_options());

    // Readiness probe before unleashing the client threads.
    if let Err(e) = http::get(&opts.addr, "/health") {
        fail(&format!("daemon at {} is not answering: {e}", opts.addr));
    }

    let next = Arc::new(AtomicUsize::new(0));
    let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::new()));
    let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let run_start = Instant::now();

    let mut handles = Vec::new();
    for _ in 0..opts.concurrency {
        let (opts, next, outcomes, errors) = (
            Arc::clone(&opts),
            Arc::clone(&next),
            Arc::clone(&outcomes),
            Arc::clone(&errors),
        );
        handles.push(std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= opts.requests {
                break;
            }
            let request = request_for(&opts, i);
            let body = match serde_json::to_string(&request) {
                Ok(b) => b,
                Err(e) => {
                    errors
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(format!("request {i}: serialize: {e}"));
                    continue;
                }
            };
            let sent = Instant::now();
            let posted = http::post(&opts.addr, "/solve", &body);
            let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
            match posted.and_then(|(_, text)| {
                serde_json::from_str::<SolveReply>(&text)
                    .map_err(|e| format!("unparsable reply: {e}: {text}"))
            }) {
                Ok(reply) => outcomes
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(Outcome {
                        id: request.id,
                        request,
                        reply,
                        latency_ms,
                    }),
                Err(e) => errors
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(format!("request {i}: {e}")),
            }
        }));
    }
    for h in handles {
        if h.join().is_err() {
            fail("a client thread panicked");
        }
    }
    let wall_ms = run_start.elapsed().as_secs_f64() * 1e3;

    let errors = std::mem::take(&mut *errors.lock().unwrap_or_else(PoisonError::into_inner));
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("qlrb-loadgen: {e}");
        }
        fail(&format!("{} request(s) failed in transport", errors.len()));
    }

    let mut outcomes =
        std::mem::take(&mut *outcomes.lock().unwrap_or_else(PoisonError::into_inner));
    outcomes.sort_by_key(|o| o.id);

    // Aggregate from the replies themselves, not from /stats: a daemon
    // serving several runs accumulates counters across them, but this
    // run's evidence is exactly what came back on its own requests.
    let mut completed = 0usize;
    let mut rejected = 0usize;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut max_queue_depth = 0usize;
    let mut completed_latencies: Vec<f64> = Vec::new();
    for o in &outcomes {
        match o.reply.outcome.as_str() {
            OUTCOME_COMPLETED => {
                completed += 1;
                completed_latencies.push(o.latency_ms);
                match o.reply.cache.as_str() {
                    "hit" => cache_hits += 1,
                    _ => cache_misses += 1,
                }
            }
            OUTCOME_REJECTED => rejected += 1,
            other => fail(&format!(
                "request {} came back {other:?} ({}): the schedule only sends valid requests",
                o.id, o.reply.detail
            )),
        }
        max_queue_depth = max_queue_depth.max(o.reply.queue_depth);
    }

    // Shape metadata (workers, capacities) comes from the daemon.
    let stats: ServerStats = match http::get(&opts.addr, "/stats") {
        Ok((200, text)) => {
            serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("unparsable /stats: {e}")))
        }
        Ok((status, _)) => fail(&format!("/stats answered {status}")),
        Err(e) => fail(&format!("/stats: {e}")),
    };

    let record = ServerLoadRecord {
        workers: stats.workers,
        queue_capacity: stats.queue_capacity,
        cache_capacity: stats.cache_capacity,
        completed,
        rejected,
        cache_hits,
        cache_misses,
        max_queue_depth,
        p50_latency_ms: percentile_ms(&completed_latencies, 50.0),
        p99_latency_ms: percentile_ms(&completed_latencies, 99.0),
        throughput_rps: if wall_ms > 0.0 {
            completed as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        wall_ms,
        requests: outcomes
            .iter()
            .map(|o| {
                let done = o.reply.outcome == OUTCOME_COMPLETED;
                ServerRequestRecord {
                    request: o.id,
                    tenant: o.reply.tenant.clone(),
                    workload: match &o.request.case {
                        Some(case) => format!("{}/{case}", o.request.workload),
                        None => o.request.workload.clone(),
                    },
                    method: o.request.method.clone(),
                    outcome: o.reply.outcome.clone(),
                    cache: if done {
                        o.reply.cache.clone()
                    } else {
                        String::new()
                    },
                    queue_depth: o.reply.queue_depth,
                    latency_ms: o.latency_ms,
                    trace_digest: o.reply.trace_digest.clone(),
                }
            })
            .collect(),
    };

    let mut manifest = RunManifest::new("qlrb-loadgen", ConfigSnapshot::default());
    if opts.include_traces {
        // One case per completed request: `qlrb trace diff` between two
        // replays of the same seed then checks full solver determinism,
        // read by read, while ignoring the volatile server record.
        for o in &outcomes {
            if o.reply.outcome != OUTCOME_COMPLETED {
                continue;
            }
            let Some(solve) = o.reply.solve.clone() else {
                fail(&format!(
                    "request {} completed without a solve record despite include_trace",
                    o.id
                ));
            };
            manifest.cases.push(CaseTrace {
                label: format!("req-{:05}", o.id),
                methods: vec![MethodTrace {
                    method: o.reply.method_label.clone(),
                    solve,
                }],
                sim: None,
            });
        }
    }
    manifest.server = Some(record);
    manifest.finalize();
    if let Err(e) = manifest.validate() {
        fail(&format!("assembled manifest failed validation: {e}"));
    }

    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, manifest.to_json_pretty()) {
            fail(&format!("write {path}: {e}"));
        }
    }
    if let Some(path) = &opts.plans {
        let mut plans = String::new();
        for o in &outcomes {
            if o.reply.outcome != OUTCOME_COMPLETED {
                continue;
            }
            let case = o.request.case.as_deref().unwrap_or("-");
            plans.push_str(&format!(
                "# request {} tenant={} workload={} case={} method={} seed={} migrated={}\n",
                o.id,
                o.reply.tenant,
                o.request.workload,
                case,
                o.request.method,
                o.request.seed.unwrap_or(0),
                o.reply.migrated,
            ));
            plans.push_str(&o.reply.plan_csv);
            if !o.reply.plan_csv.ends_with('\n') {
                plans.push('\n');
            }
        }
        if let Err(e) = std::fs::write(path, plans) {
            fail(&format!("write {path}: {e}"));
        }
    }

    let server = manifest.server.as_ref();
    println!(
        "qlrb-loadgen: {} request(s) → {completed} completed / {rejected} rejected; cache {cache_hits} hit(s) / {cache_misses} miss(es); peak queue {max_queue_depth}",
        outcomes.len()
    );
    if let Some(s) = server {
        println!(
            "qlrb-loadgen: latency p50 {:.1} ms, p99 {:.1} ms, {:.1} req/s over {:.1} ms",
            s.p50_latency_ms, s.p99_latency_ms, s.throughput_rps, s.wall_ms
        );
    }
}
