//! The wire vocabulary of `qlrb serve`: JSON solve requests, the unified
//! reply envelope, and the daemon's counter snapshot.
//!
//! One request describes one solve: which workload instance (a named
//! preset or inline weights), which formulation, and the per-tenant solver
//! budget (reads, sweeps, per-read deadline). One reply describes one of
//! three outcomes — `completed` (with the migration plan), `rejected`
//! (admission control shed the request; the 429-style structured reply),
//! or `invalid` (the request failed builder/model validation). A single
//! envelope with outcome-gated fields keeps clients to one parse path.

use serde::{Deserialize, Serialize};

use qlrb_telemetry::SolveRecord;

/// Reply outcome: the request produced a plan.
pub const OUTCOME_COMPLETED: &str = "completed";
/// Reply outcome: admission control shed the request (queue full).
pub const OUTCOME_REJECTED: &str = "rejected";
/// Reply outcome: the request failed validation before any solve ran.
pub const OUTCOME_INVALID: &str = "invalid";

/// `error` code on a [`OUTCOME_REJECTED`] reply.
pub const ERROR_OVERLOADED: &str = "overloaded";
/// `error` code on a [`OUTCOME_INVALID`] reply.
pub const ERROR_BAD_REQUEST: &str = "bad-request";

/// One solve request, as POSTed to `/solve`.
///
/// Only `workload` is required; everything else has a server-side default
/// so a minimal `{"workload": "samoa"}` request solves. The server clamps
/// `num_reads`/`sweeps` to its configured per-tenant ceiling and validates
/// the whole configuration through the solver builder — a zero
/// `read_deadline_proposals`, for example, comes back as a structured
/// `invalid` reply, never a panic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SolveRequest {
    /// Client-assigned request id, echoed back in the reply.
    #[serde(default)]
    pub id: u64,
    /// Tenant label for accounting; empty means `"anonymous"`.
    #[serde(default)]
    pub tenant: String,
    /// Workload preset: `mxm-imbalance`, `mxm-nodes`, `mxm-tasks`,
    /// `samoa`, `samoa-table5`, or `inline` (with `weights`).
    pub workload: String,
    /// Case selector within the preset (e.g. `"Imb.3"` or `"16"`).
    #[serde(default)]
    pub case: Option<String>,
    /// Inline per-process task weights (workload `inline`).
    #[serde(default)]
    pub weights: Option<Vec<f64>>,
    /// Tasks per process for an inline instance (default 16).
    #[serde(default)]
    pub tasks_per_proc: Option<u64>,
    /// Formulation: `qcqm1` (reduced) or `qcqm2` (full); empty means
    /// `qcqm1`.
    #[serde(default)]
    pub method: String,
    /// Migration budget `k`; defaults to a quarter of the total tasks.
    #[serde(default)]
    pub k: Option<u64>,
    /// Solver seed (default 2024, matching the CLI).
    #[serde(default)]
    pub seed: Option<u64>,
    /// Reads per solve; clamped to the server's per-tenant ceiling.
    #[serde(default)]
    pub num_reads: Option<usize>,
    /// Sweeps per read; clamped to the server's per-tenant ceiling.
    #[serde(default)]
    pub sweeps: Option<usize>,
    /// Per-read deadline on the proposal clock (the builder rejects 0).
    /// Falls back to the server's configured tenant default.
    #[serde(default)]
    pub read_deadline_proposals: Option<u64>,
    /// Return the full per-read solve record in the reply (the load
    /// generator uses this to assemble replay-diffable manifests).
    #[serde(default)]
    pub include_trace: bool,
}

/// The unified reply envelope for `/solve`.
///
/// `outcome` selects which fields are meaningful: a `completed` reply
/// carries the plan and solve evidence, a `rejected` reply carries the
/// queue pressure and a retry hint, an `invalid` reply carries the
/// validation error. Unused fields keep their defaults.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SolveReply {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the (normalized) tenant.
    pub tenant: String,
    /// [`OUTCOME_COMPLETED`] / [`OUTCOME_REJECTED`] / [`OUTCOME_INVALID`].
    pub outcome: String,
    /// `"hit"` / `"miss"` on completed solves: whether the compiled model
    /// came from the (formulation, shape) cache. Empty otherwise.
    pub cache: String,
    /// Queue depth observed at admission (rejections report the depth
    /// that triggered the shed).
    pub queue_depth: usize,
    /// Error code ([`ERROR_OVERLOADED`] / [`ERROR_BAD_REQUEST`]); empty
    /// on success.
    pub error: String,
    /// Human-readable error detail; empty on success.
    pub detail: String,
    /// Suggested client backoff before retrying a rejected request.
    pub retry_after_ms: u64,
    /// The migration plan in the CLI's output-CSV layout.
    pub plan_csv: String,
    /// Imbalance ratio before rebalancing.
    pub imbalance_before: f64,
    /// Imbalance ratio after applying the plan.
    pub imbalance_after: f64,
    /// Tasks migrated by the plan.
    pub migrated: u64,
    /// Method label as the harness prints it (`"Q_CQM1"` / `"Q_CQM2"`).
    pub method_label: String,
    /// Sealed trace digest of the underlying solve.
    pub trace_digest: String,
    /// Full solve record, when the request set `include_trace`.
    #[serde(default)]
    pub solve: Option<SolveRecord>,
}

/// Counter snapshot served at `GET /stats`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Solve requests seen (admitted or not).
    pub requests: u64,
    /// Requests that completed with a plan.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Requests that failed validation.
    pub invalid: u64,
    /// Completed solves served from the compiled-model cache.
    pub cache_hits: u64,
    /// Completed solves that compiled their model.
    pub cache_misses: u64,
    /// Compiled models currently cached.
    pub cache_entries: usize,
    /// Cache capacity, in compiled models.
    pub cache_capacity: usize,
    /// Queue depth right now.
    pub queue_depth: usize,
    /// Highest queue depth observed since boot.
    pub max_queue_depth: usize,
    /// Bounded-queue capacity.
    pub queue_capacity: usize,
    /// Worker threads solving.
    pub workers: usize,
}

impl SolveReply {
    /// A `rejected` (429-style) reply: the queue was full at `depth`.
    pub fn overloaded(
        id: u64,
        tenant: &str,
        depth: usize,
        capacity: usize,
        retry_after_ms: u64,
    ) -> Self {
        Self {
            id,
            tenant: tenant.to_string(),
            outcome: OUTCOME_REJECTED.into(),
            error: ERROR_OVERLOADED.into(),
            detail: format!(
                "solve queue is full ({depth}/{capacity}); retry after {retry_after_ms} ms"
            ),
            queue_depth: depth,
            retry_after_ms,
            ..Self::default()
        }
    }

    /// An `invalid` (400-style) reply: the request failed validation.
    pub fn invalid(id: u64, tenant: &str, detail: impl Into<String>) -> Self {
        Self {
            id,
            tenant: tenant.to_string(),
            outcome: OUTCOME_INVALID.into(),
            error: ERROR_BAD_REQUEST.into(),
            detail: detail.into(),
            ..Self::default()
        }
    }

    /// The HTTP status code this reply travels under.
    pub fn http_status(&self) -> u16 {
        match self.outcome.as_str() {
            OUTCOME_COMPLETED => 200,
            OUTCOME_REJECTED => 429,
            _ => 400,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_parses_with_defaults() {
        let req: SolveRequest =
            serde_json::from_str("{\"workload\": \"samoa\"}").expect("minimal request parses");
        assert_eq!(req.workload, "samoa");
        assert_eq!(req.id, 0);
        assert_eq!(req.method, "");
        assert_eq!(req.num_reads, None);
        assert_eq!(req.read_deadline_proposals, None);
        assert!(!req.include_trace);
    }

    #[test]
    fn reply_round_trips_and_maps_status() {
        let rej = SolveReply::overloaded(7, "tenant-a", 8, 8, 50);
        assert_eq!(rej.http_status(), 429);
        assert!(rej.detail.contains("8/8"), "{}", rej.detail);
        let text = serde_json::to_string(&rej).expect("reply serializes");
        let back: SolveReply = serde_json::from_str(&text).expect("reply parses");
        assert_eq!(back, rej);

        let bad = SolveReply::invalid(1, "t", "no such workload");
        assert_eq!(bad.http_status(), 400);
        assert_eq!(bad.error, ERROR_BAD_REQUEST);

        let ok = SolveReply {
            outcome: OUTCOME_COMPLETED.into(),
            ..SolveReply::default()
        };
        assert_eq!(ok.http_status(), 200);
    }
}
