//! Load-imbalance metrics.
//!
//! The paper's metrics (§II): with per-process total loads `L_i`,
//!
//! * `L_max = max_i L_i`, `L_avg = (1/M)·Σ_i L_i`;
//! * imbalance ratio `R_imb = (L_max − L_avg) / L_avg` (Menon & Kalé);
//! * speedup of a rebalancing solution = `L_max(before) / L_max(after)` —
//!   in a bulk-synchronous step the slowest process sets the pace, so the
//!   makespan ratio is exactly the `L_max` ratio.

use serde::{Deserialize, Serialize};

/// Summary statistics of a per-process load vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceStats {
    /// Largest per-process load.
    pub l_max: f64,
    /// Smallest per-process load.
    pub l_min: f64,
    /// Mean per-process load.
    pub l_avg: f64,
    /// `(L_max − L_avg) / L_avg`; `0` for a perfectly balanced (or all-zero)
    /// load vector.
    pub imbalance_ratio: f64,
}

impl ImbalanceStats {
    /// Computes the statistics of a load vector.
    ///
    /// # Panics
    /// Panics if `loads` is empty — an instance always has ≥ 1 process.
    pub fn from_loads(loads: &[f64]) -> Self {
        assert!(!loads.is_empty(), "load vector must be non-empty");
        let l_max = loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let l_min = loads.iter().copied().fold(f64::INFINITY, f64::min);
        let l_avg = loads.iter().sum::<f64>() / loads.len() as f64;
        let imbalance_ratio = if l_avg > 0.0 {
            (l_max - l_avg) / l_avg
        } else {
            0.0
        };
        Self {
            l_max,
            l_min,
            l_avg,
            imbalance_ratio,
        }
    }
}

/// Speedup of a rebalanced load vector relative to a baseline: the ratio of
/// the two makespans (`L_max` values). Returns `1.0` when the rebalanced
/// `L_max` is zero (nothing to speed up).
pub fn speedup(baseline_l_max: f64, rebalanced_l_max: f64) -> f64 {
    if rebalanced_l_max > 0.0 {
        baseline_l_max / rebalanced_l_max
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig7_example() {
        // 4 processes × 5 tasks, weights 1.87/1.97/3.12/2.81 ms.
        let loads = [9.35, 9.85, 15.6, 14.05];
        let s = ImbalanceStats::from_loads(&loads);
        assert!((s.l_max - 15.6).abs() < 1e-12);
        assert!((s.l_avg - 12.2125).abs() < 1e-12);
        assert!((s.imbalance_ratio - (15.6 - 12.2125) / 12.2125).abs() < 1e-12);
    }

    #[test]
    fn balanced_vector_has_zero_ratio() {
        let s = ImbalanceStats::from_loads(&[3.0, 3.0, 3.0]);
        assert_eq!(s.imbalance_ratio, 0.0);
        assert_eq!(s.l_min, 3.0);
    }

    #[test]
    fn all_zero_loads_are_defined() {
        let s = ImbalanceStats::from_loads(&[0.0, 0.0]);
        assert_eq!(s.imbalance_ratio, 0.0);
        assert_eq!(s.l_max, 0.0);
    }

    #[test]
    fn single_process_is_trivially_balanced() {
        let s = ImbalanceStats::from_loads(&[42.0]);
        assert_eq!(s.imbalance_ratio, 0.0);
    }

    #[test]
    fn speedup_ratio() {
        assert_eq!(speedup(10.0, 5.0), 2.0);
        assert_eq!(speedup(10.0, 10.0), 1.0);
        assert_eq!(speedup(10.0, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_loads_panic() {
        ImbalanceStats::from_loads(&[]);
    }
}
