//! The paper's CQM formulations of the LRP (§IV).
//!
//! Both formulations share the variable semantics: the binary
//! `x_{i,j,l} = 1` iff `c_l` tasks move to process `i` from process `j`
//! (`i = j` meaning "stay"), with `c_l` drawn from the bounded-coefficient
//! set `C(n)` so all counts `0..=n` are representable in `⌊log₂n⌋ + 1` bits.
//!
//! * **`Q_CQM2` ([`Variant::Full`])** keeps all `M²` (to, from) pairs:
//!   `M²·(⌊log₂n⌋+1)` binaries, `M` equality constraints (conservation)
//!   plus `M + 1` inequalities (capacity per process, global migration
//!   budget `k`).
//! * **`Q_CQM1` ([`Variant::Reduced`])** eliminates the diagonal
//!   "stay" variables by substituting
//!   `x_{j,j} = n − Σ_{i≠j} x_{i,j}`: fewer qubits, and the conservation
//!   equalities become `≤ n` send-bound inequalities — the paper's
//!   observation that the reduced model has *the same number* of
//!   constraints, all inequalities (`2M + 1`).
//!
//! Note on qubit counts: the paper states `(M−1)²·(⌊log₂n⌋+1)` for Q_CQM1,
//! but eliminating the `M` diagonal groups from `M²` leaves `M(M−1)` groups;
//! we implement the reduction as described and report both counts (see
//! [`qubits`]).

mod builder;
pub mod lint;
pub mod qubits;

pub use builder::{LrpCqm, Variant};
pub use lint::{lint_lrp, lint_lrp_with_penalty};
pub use qubits::{logical_qubits, paper_qubit_formula, qubit_budget, QubitBudget};
