//! LRP-specific static analysis: the generic CQM passes from
//! `qlrb-analyze` plus the qubit-budget accounting only this crate can
//! check, because only it knows the `(M, n, variant)` a model was built
//! from.

use qlrb_analyze::{lint_cqm, lint_penalty, Diagnostic, LintReport, RuleId, Severity, Span};
use qlrb_model::penalty::PenaltyConfig;

use super::builder::LrpCqm;
use super::qubits::{logical_qubits, paper_qubit_formula};

/// Lints a built LRP formulation: every generic CQM rule, plus
/// [`RuleId::QubitBudgetMismatch`] — the variable count must equal the
/// logical-qubit accounting for the formulation's `(variant, M, n)`.
///
/// A mismatch means the model was mutated after [`LrpCqm::build`] (e.g.
/// variables appended to `cqm` directly) and the encode/decode index maps
/// no longer cover the variable space.
pub fn lint_lrp(lrp: &LrpCqm) -> LintReport {
    let mut report = lint_cqm(&lrp.cqm);
    let m = lrp.num_procs() as u64;
    let n = lrp.tasks_per_proc();
    let expected = logical_qubits(lrp.variant, m, n);
    let actual = lrp.cqm.num_vars() as u64;
    if actual != expected {
        let paper = paper_qubit_formula(lrp.variant, m, n);
        report.push(Diagnostic {
            rule: RuleId::QubitBudgetMismatch,
            severity: Severity::Error,
            span: Span::Model,
            message: format!(
                "{} model for (M = {m}, n = {n}) has {actual} binary variables, \
                 but the logical-qubit budget is {expected} \
                 (paper formula: {paper})",
                lrp.variant.label()
            ),
            suggestion: Some(
                "rebuild via LrpCqm::build instead of mutating the inner Cqm".to_string(),
            ),
        });
    }
    report
}

/// [`lint_lrp`] plus the penalty-weight bound check for `penalty`.
pub fn lint_lrp_with_penalty(lrp: &LrpCqm, penalty: &PenaltyConfig) -> LintReport {
    let mut report = lint_lrp(lrp);
    report.merge(lint_penalty(&lrp.cqm, penalty));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqm::Variant;
    use crate::instance::Instance;
    use qlrb_model::penalty::PenaltyStyle;

    fn inst() -> Instance {
        Instance::uniform(13, vec![1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn built_models_are_lint_clean() {
        for variant in [Variant::Full, Variant::Reduced] {
            let lrp = LrpCqm::build(&inst(), variant, 10).unwrap();
            let report = lint_lrp(&lrp);
            assert!(report.is_clean(), "{variant:?}:\n{}", report.render());
            let auto = PenaltyConfig::auto(&lrp.cqm, 2.0, PenaltyStyle::default());
            assert!(lint_lrp_with_penalty(&lrp, &auto).is_clean());
        }
    }

    #[test]
    fn qubit_budget_mismatch_fires_on_mutated_model() {
        let mut lrp = LrpCqm::build(&inst(), Variant::Full, 10).unwrap();
        lrp.cqm.add_vars(3); // now 3 vars past the (M, n) budget
        let report = lint_lrp(&lrp);
        assert!(report.has_rule(RuleId::QubitBudgetMismatch));
        assert!(report.has_errors());
        let text = report.render();
        assert!(text.contains("qubit"), "{text}");
    }

    #[test]
    fn weak_penalty_flagged_for_lrp() {
        let lrp = LrpCqm::build(&inst(), Variant::Reduced, 10).unwrap();
        let weak = PenaltyConfig::uniform(1e-6, PenaltyStyle::default());
        let report = lint_lrp_with_penalty(&lrp, &weak);
        assert!(report.has_rule(RuleId::PenaltyBelowBound));
    }
}
