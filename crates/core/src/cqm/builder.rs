//! Construction, encoding, and decoding of the LRP CQMs.

use qlrb_model::cqm::{Cqm, Sense};
use qlrb_model::encoding::CoefficientSet;
use qlrb_model::expr::{LinearExpr, Var};

use crate::error::RebalanceError;
use crate::instance::Instance;
use crate::migration::MigrationMatrix;

/// Which of the paper's two formulations to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `Q_CQM1`: diagonal variables eliminated; all-inequality constraints.
    Reduced,
    /// `Q_CQM2`: all `M²` pairs kept; `M` equalities + `M+1` inequalities.
    Full,
}

impl Variant {
    /// The paper's method name prefix.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Reduced => "Q_CQM1",
            Variant::Full => "Q_CQM2",
        }
    }
}

/// An LRP instance compiled into a constrained quadratic model, together
/// with everything needed to move between migration matrices and binary
/// assignments.
#[derive(Debug, Clone)]
pub struct LrpCqm {
    /// The formulation variant.
    pub variant: Variant,
    /// The constrained quadratic model (objective + constraints).
    pub cqm: Cqm,
    /// The bounded-coefficient encoding `C(n)` shared by all pair counts.
    pub coeffs: CoefficientSet,
    m: usize,
    n: u64,
    k: u64,
    weights: Vec<f64>,
}

impl LrpCqm {
    /// Builds the CQM for `inst` with migration budget `k` (at most `k`
    /// tasks may move in total), using the paper's bounded-coefficient
    /// encoding.
    pub fn build(inst: &Instance, variant: Variant, k: u64) -> Result<Self, RebalanceError> {
        Self::build_with_encoding(inst, variant, k, CoefficientSet::new(inst.tasks_per_proc()))
    }

    /// Builds with an explicit count encoding — e.g.
    /// [`CoefficientSet::new_plain_binary`] for the encoding ablation, where
    /// "all bits set" overshoots `n` and correctness leans entirely on the
    /// constraints.
    #[allow(clippy::needless_range_loop)] // indexed loops here touch several parallel arrays
    pub fn build_with_encoding(
        inst: &Instance,
        variant: Variant,
        k: u64,
        coeffs: CoefficientSet,
    ) -> Result<Self, RebalanceError> {
        if coeffs.n() != inst.tasks_per_proc() {
            return Err(RebalanceError::InvalidInstance(format!(
                "encoding covers counts up to {}, instance has n = {}",
                coeffs.n(),
                inst.tasks_per_proc()
            )));
        }
        let m = inst.num_procs();
        let n = inst.tasks_per_proc();
        let weights = inst.weights().to_vec();
        let bits = coeffs.len();
        let stats = inst.stats();
        let (l_avg, l_max) = (stats.l_avg, stats.l_max);

        let num_vars = match variant {
            Variant::Full => m * m * bits,
            Variant::Reduced => m * (m - 1) * bits,
        };
        let mut cqm = Cqm::new(num_vars);
        let this = Self {
            variant,
            cqm: Cqm::new(0), // placeholder; replaced below
            coeffs,
            m,
            n,
            k,
            weights: weights.clone(),
        };

        // Objective: Σ_i (L'_i − L_avg)².
        for i in 0..m {
            let mut expr = LinearExpr::with_capacity(m * bits);
            match variant {
                Variant::Full => {
                    for j in 0..m {
                        for l in 0..bits {
                            let c = this.coeffs.coeffs()[l] as f64;
                            expr.add_term(this.var_req(i, j, l), weights[j] * c);
                        }
                    }
                }
                Variant::Reduced => {
                    // L'_i = n·w_i + Σ_{j≠i} w_j·in_{i,j} − w_i·out_i
                    expr.add_constant(n as f64 * weights[i]);
                    for j in 0..m {
                        if j == i {
                            continue;
                        }
                        for l in 0..bits {
                            let c = this.coeffs.coeffs()[l] as f64;
                            // Tasks arriving at i from j.
                            expr.add_term(this.var_req(i, j, l), weights[j] * c);
                            // Tasks leaving i toward j.
                            expr.add_term(this.var_req(j, i, l), -weights[i] * c);
                        }
                    }
                }
            }
            cqm.add_squared_term(expr, l_avg, 1.0);
        }

        // Conservation (Full: equality; Reduced: send-bound inequality).
        for j in 0..m {
            let mut expr = LinearExpr::with_capacity(m * bits);
            for i in 0..m {
                if variant == Variant::Reduced && i == j {
                    continue;
                }
                for l in 0..bits {
                    let c = this.coeffs.coeffs()[l] as f64;
                    expr.add_term(this.var_req(i, j, l), c);
                }
            }
            match variant {
                Variant::Full => {
                    cqm.add_constraint(expr, Sense::Eq, n as f64, format!("conserve[{j}]"));
                }
                Variant::Reduced => {
                    cqm.add_constraint(expr, Sense::Le, n as f64, format!("sendable[{j}]"));
                }
            }
        }

        // Capacity: L'_i ≤ L_max (the original maximum — never worsen).
        for i in 0..m {
            let mut expr = LinearExpr::with_capacity(m * bits);
            match variant {
                Variant::Full => {
                    for j in 0..m {
                        for l in 0..bits {
                            let c = this.coeffs.coeffs()[l] as f64;
                            expr.add_term(this.var_req(i, j, l), weights[j] * c);
                        }
                    }
                }
                Variant::Reduced => {
                    expr.add_constant(n as f64 * weights[i]);
                    for j in 0..m {
                        if j == i {
                            continue;
                        }
                        for l in 0..bits {
                            let c = this.coeffs.coeffs()[l] as f64;
                            expr.add_term(this.var_req(i, j, l), weights[j] * c);
                            expr.add_term(this.var_req(j, i, l), -weights[i] * c);
                        }
                    }
                }
            }
            cqm.add_constraint(expr, Sense::Le, l_max, format!("capacity[{i}]"));
        }

        // Migration budget: Σ_{i≠j} x_{i,j} ≤ k.
        let mut budget = LinearExpr::with_capacity(m * m * bits);
        for i in 0..m {
            for j in 0..m {
                if i == j {
                    continue;
                }
                for l in 0..bits {
                    let c = this.coeffs.coeffs()[l] as f64;
                    budget.add_term(this.var_req(i, j, l), c);
                }
            }
        }
        cqm.add_constraint(budget, Sense::Le, k as f64, "budget");

        Ok(Self { cqm, ..this })
    }

    /// Number of processes.
    pub fn num_procs(&self) -> usize {
        self.m
    }

    /// Tasks per process.
    pub fn tasks_per_proc(&self) -> u64 {
        self.n
    }

    /// The migration budget `k`.
    pub fn budget(&self) -> u64 {
        self.k
    }

    /// A copy of this formulation with a different migration budget `k`.
    ///
    /// The budget only enters the CQM as the right-hand side of the final
    /// constraint (labelled `"budget"`, always added last by
    /// [`Self::build_with_encoding`]), so variants sharing an instance and
    /// encoding can reuse one compiled base model instead of rebuilding the
    /// full objective and constraint set per budget.
    pub fn with_budget(&self, k: u64) -> Self {
        let mut out = self.clone();
        let budget = out
            .cqm
            .constraints
            .last_mut()
            .expect("LRP CQM always has a budget constraint"); // qlrb-lint: allow(no-unwrap)
        debug_assert_eq!(budget.label, "budget");
        budget.rhs = k as f64;
        out.k = k;
        out
    }

    /// The per-process task weights the formulation was built from.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Adds a *soft* migration penalty `μ · Σ_{i≠j} x_{i,j}` to the
    /// objective — the multi-objective alternative to the hard budget `k`
    /// (cf. the paper's §VI pointer to multi-objective formulations). With
    /// `μ > 0` the solver is inherently migration-averse: instead of
    /// saturating a cap it trades each move against the imbalance it cures.
    /// Typically combined with a slack budget (`k = N`) so the hard
    /// constraint never binds.
    pub fn add_migration_penalty(&mut self, mu: f64) {
        assert!(mu >= 0.0, "penalty must be non-negative");
        if mu == 0.0 {
            return;
        }
        let bits = self.coeffs.len();
        let mut lin = std::mem::take(&mut self.cqm.linear_objective);
        for i in 0..self.m {
            for j in 0..self.m {
                if i == j {
                    continue;
                }
                for l in 0..bits {
                    let c = self.coeffs.coeffs()[l] as f64;
                    if let Some(v) = self.var(i, j, l) {
                        lin.add_term(v, mu * c);
                    }
                }
            }
        }
        lin.compress();
        self.cqm.linear_objective = lin;
    }

    /// The binary variable for "move `c_l` tasks to `i` from `j`", or `None`
    /// for a diagonal pair in the reduced formulation.
    pub fn var(&self, i: usize, j: usize, l: usize) -> Option<Var> {
        debug_assert!(i < self.m && j < self.m && l < self.coeffs.len());
        let bits = self.coeffs.len();
        match self.variant {
            Variant::Full => Some(Var(((i * self.m + j) * bits + l) as u32)),
            Variant::Reduced => {
                if i == j {
                    return None;
                }
                let col = if j < i { j } else { j - 1 };
                let pair = i * (self.m - 1) + col;
                Some(Var((pair * bits + l) as u32))
            }
        }
    }

    /// [`Self::var`] for pairs the caller's loop structure already excludes
    /// from the `None` case (off-diagonal under `Reduced`, anything under
    /// `Full`) — a miss here is a builder bug, never bad user input.
    fn var_req(&self, i: usize, j: usize, l: usize) -> Var {
        self.var(i, j, l)
            .expect("variant indexes this (to, from, bit) triple") // qlrb-lint: allow(no-unwrap)
    }

    /// Decodes a binary assignment into a migration matrix.
    ///
    /// For the reduced variant the diagonal is inferred as
    /// `n − Σ_{i≠j} x_{i,j}`; an assignment whose sends exceed `n` cannot be
    /// decoded (such states also violate the `sendable` constraint).
    pub fn decode(&self, state: &[u8]) -> Result<MigrationMatrix, RebalanceError> {
        if state.len() < self.cqm.num_vars() {
            return Err(RebalanceError::InvalidPlan(format!(
                "state has {} bits, formulation needs {}",
                state.len(),
                self.cqm.num_vars()
            )));
        }
        let bits = self.coeffs.len();
        let mut mat = MigrationMatrix::zeros(self.m);
        for i in 0..self.m {
            for j in 0..self.m {
                if self.var(i, j, 0).is_none() {
                    continue; // reduced diagonal: inferred below
                }
                let mut slice = Vec::with_capacity(bits);
                for l in 0..bits {
                    let v = self.var_req(i, j, l);
                    slice.push(state[v.index()]);
                }
                mat.set(i, j, self.coeffs.decode(&slice));
            }
        }
        if self.variant == Variant::Reduced {
            for j in 0..self.m {
                let sent: u64 = (0..self.m).filter(|&i| i != j).map(|i| mat.get(i, j)).sum();
                if sent > self.n {
                    return Err(RebalanceError::InvalidPlan(format!(
                        "process {j} sends {sent} tasks but owns only {}",
                        self.n
                    )));
                }
                mat.set(j, j, self.n - sent);
            }
        }
        Ok(mat)
    }

    /// Encodes a migration plan as a binary assignment (used to seed the
    /// hybrid solver with classical candidates).
    pub fn encode_plan(&self, plan: &MigrationMatrix) -> Result<Vec<u8>, RebalanceError> {
        if plan.num_procs() != self.m {
            return Err(RebalanceError::InvalidPlan(format!(
                "plan covers {} processes, formulation has {}",
                plan.num_procs(),
                self.m
            )));
        }
        let mut state = vec![0u8; self.cqm.num_vars()];
        for i in 0..self.m {
            for j in 0..self.m {
                if self.variant == Variant::Reduced && i == j {
                    continue;
                }
                let count = plan.get(i, j);
                let enc = self.coeffs.encode(count).ok_or_else(|| {
                    RebalanceError::InvalidPlan(format!(
                        "count {count} for (to {i}, from {j}) exceeds n = {}",
                        self.n
                    ))
                })?;
                for (l, &b) in enc.iter().enumerate() {
                    let v = self.var_req(i, j, l);
                    state[v.index()] = b;
                }
            }
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::uniform(13, vec![1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn variable_counts_match_construction() {
        let i = inst();
        let bits = CoefficientSet::new(13).len(); // 4
        let full = LrpCqm::build(&i, Variant::Full, 10).unwrap();
        assert_eq!(full.cqm.num_vars(), 9 * bits);
        let red = LrpCqm::build(&i, Variant::Reduced, 10).unwrap();
        assert_eq!(red.cqm.num_vars(), 6 * bits);
    }

    #[test]
    fn constraint_structure_matches_paper() {
        let i = inst();
        let m = 3;
        let full = LrpCqm::build(&i, Variant::Full, 10).unwrap();
        assert_eq!(full.cqm.num_eq_constraints(), m);
        assert_eq!(full.cqm.num_le_constraints(), m + 1);
        let red = LrpCqm::build(&i, Variant::Reduced, 10).unwrap();
        assert_eq!(red.cqm.num_eq_constraints(), 0);
        assert_eq!(red.cqm.num_le_constraints(), 2 * m + 1);
    }

    #[test]
    fn with_budget_matches_fresh_build() {
        let i = inst();
        for variant in [Variant::Full, Variant::Reduced] {
            let base = LrpCqm::build(&i, variant, 0).unwrap();
            for k in [0u64, 3, 10, 100] {
                let rebudgeted = base.with_budget(k);
                let fresh = LrpCqm::build(&i, variant, k).unwrap();
                assert_eq!(rebudgeted.budget(), k);
                // `Cqm` has no `PartialEq`; its exhaustive `Debug` output is
                // a faithful structural fingerprint.
                assert_eq!(
                    format!("{:?}", rebudgeted.cqm),
                    format!("{:?}", fresh.cqm),
                    "{variant:?}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn identity_plan_is_feasible_in_both_variants() {
        let i = inst();
        for variant in [Variant::Full, Variant::Reduced] {
            let lrp = LrpCqm::build(&i, variant, 0).unwrap();
            let state = lrp.encode_plan(&MigrationMatrix::identity(&i)).unwrap();
            assert!(
                lrp.cqm.is_feasible(&state),
                "{variant:?}: identity must satisfy all constraints even at k = 0"
            );
            let back = lrp.decode(&state).unwrap();
            assert_eq!(back, MigrationMatrix::identity(&i));
        }
    }

    #[test]
    fn encode_decode_roundtrip_arbitrary_plan() {
        let i = inst();
        let mut plan = MigrationMatrix::identity(&i);
        plan.migrate(2, 0, 7).unwrap();
        plan.migrate(2, 1, 3).unwrap();
        plan.migrate(1, 0, 2).unwrap();
        for variant in [Variant::Full, Variant::Reduced] {
            let lrp = LrpCqm::build(&i, variant, 100).unwrap();
            let state = lrp.encode_plan(&plan).unwrap();
            assert_eq!(lrp.decode(&state).unwrap(), plan, "{variant:?}");
        }
    }

    #[test]
    fn objective_matches_hand_computed_imbalance() {
        let i = inst();
        let stats = i.stats();
        for variant in [Variant::Full, Variant::Reduced] {
            let lrp = LrpCqm::build(&i, variant, 50).unwrap();
            let state = lrp.encode_plan(&MigrationMatrix::identity(&i)).unwrap();
            let expect: f64 = i.loads().iter().map(|l| (l - stats.l_avg).powi(2)).sum();
            assert!(
                (lrp.cqm.objective(&state) - expect).abs() < 1e-6,
                "{variant:?}: {} vs {expect}",
                lrp.cqm.objective(&state)
            );
        }
    }

    #[test]
    fn budget_constraint_counts_migrations() {
        let i = inst();
        let mut plan = MigrationMatrix::identity(&i);
        plan.migrate(2, 0, 5).unwrap();
        for variant in [Variant::Full, Variant::Reduced] {
            let lrp_tight = LrpCqm::build(&i, variant, 4).unwrap();
            let state = lrp_tight.encode_plan(&plan).unwrap();
            assert!(
                !lrp_tight.cqm.is_feasible(&state),
                "{variant:?}: 5 moves must violate k = 4"
            );
            let lrp_ok = LrpCqm::build(&i, variant, 5).unwrap();
            let state = lrp_ok.encode_plan(&plan).unwrap();
            // Plan moves load 5·w0 = 5 from the heaviest... capacity also ok:
            // new loads (18, 26, 47) vs L_max = 52.
            assert!(lrp_ok.cqm.is_feasible(&state), "{variant:?}");
        }
    }

    #[test]
    fn capacity_constraint_rejects_worsening() {
        let i = inst();
        // Move 13 heavy tasks (w = 4) onto process 0: L'_0 = 13 + 52 = 65 > 52.
        let mut plan = MigrationMatrix::identity(&i);
        plan.migrate(2, 0, 13).unwrap();
        for variant in [Variant::Full, Variant::Reduced] {
            let lrp = LrpCqm::build(&i, variant, 1000).unwrap();
            let state = lrp.encode_plan(&plan).unwrap();
            assert!(!lrp.cqm.is_feasible(&state), "{variant:?}");
        }
    }

    #[test]
    fn encode_rejects_foreign_plan() {
        let i = inst();
        let lrp = LrpCqm::build(&i, Variant::Full, 5).unwrap();
        let other = MigrationMatrix::zeros(5);
        assert!(lrp.encode_plan(&other).is_err());
    }

    #[test]
    fn decode_rejects_short_state() {
        let i = inst();
        let lrp = LrpCqm::build(&i, Variant::Full, 5).unwrap();
        assert!(lrp.decode(&[0u8; 3]).is_err());
    }

    #[test]
    fn reduced_decode_rejects_oversend() {
        let i = Instance::uniform(2, vec![1.0, 1.0]).unwrap();
        let lrp = LrpCqm::build(&i, Variant::Reduced, 100).unwrap();
        // All bits set: every off-diagonal pair sends n = 2 tasks; with
        // M = 2 each process sends 2 ≤ n, fine — craft an oversend with M=3.
        let i3 = Instance::uniform(2, vec![1.0, 1.0, 1.0]).unwrap();
        let lrp3 = LrpCqm::build(&i3, Variant::Reduced, 100).unwrap();
        let all_ones = vec![1u8; lrp3.cqm.num_vars()];
        // Every process sends 2 tasks to each of 2 others = 4 > n = 2.
        assert!(lrp3.decode(&all_ones).is_err());
        let _ = lrp;
    }

    #[test]
    fn migration_penalty_charges_moves_linearly() {
        let i = inst();
        let mut plan = MigrationMatrix::identity(&i);
        plan.migrate(2, 0, 5).unwrap();
        for variant in [Variant::Full, Variant::Reduced] {
            let mut lrp = LrpCqm::build(&i, variant, 100).unwrap();
            let base_id = lrp
                .cqm
                .objective(&lrp.encode_plan(&MigrationMatrix::identity(&i)).unwrap());
            let base_mv = lrp.cqm.objective(&lrp.encode_plan(&plan).unwrap());
            lrp.add_migration_penalty(2.0);
            let pen_id = lrp
                .cqm
                .objective(&lrp.encode_plan(&MigrationMatrix::identity(&i)).unwrap());
            let pen_mv = lrp.cqm.objective(&lrp.encode_plan(&plan).unwrap());
            assert!(
                (pen_id - base_id).abs() < 1e-9,
                "{variant:?}: identity moves nothing"
            );
            assert!(
                ((pen_mv - base_mv) - 2.0 * 5.0).abs() < 1e-6,
                "{variant:?}: 5 moves at mu = 2 cost exactly 10, got {}",
                pen_mv - base_mv
            );
        }
    }

    #[test]
    fn zero_penalty_is_identity_transform() {
        let i = inst();
        let mut lrp = LrpCqm::build(&i, Variant::Full, 10).unwrap();
        let before = lrp.cqm.linear_objective.clone();
        lrp.add_migration_penalty(0.0);
        assert_eq!(lrp.cqm.linear_objective, before);
    }

    #[test]
    fn var_indexing_is_bijective() {
        let i = inst();
        for variant in [Variant::Full, Variant::Reduced] {
            let lrp = LrpCqm::build(&i, variant, 5).unwrap();
            let mut seen = vec![false; lrp.cqm.num_vars()];
            for a in 0..3 {
                for b in 0..3 {
                    for l in 0..lrp.coeffs.len() {
                        if let Some(v) = lrp.var(a, b, l) {
                            assert!(!seen[v.index()], "{variant:?}: duplicate var");
                            seen[v.index()] = true;
                        } else {
                            assert_eq!(variant, Variant::Reduced);
                            assert_eq!(a, b);
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "{variant:?}: gap in indexing");
        }
    }
}
