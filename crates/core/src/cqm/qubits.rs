//! Logical-qubit accounting (paper Table I).
//!
//! The paper counts one logical qubit per binary variable, assuming
//! inequality constraints need no ancillas (true for unbalanced
//! penalization, and for D-Wave's CQM solver which handles constraints
//! natively). It reports
//!
//! * `Q_CQM1`: `(M−1)²·(⌊log₂ n⌋+1)`
//! * `Q_CQM2`: `M²·(⌊log₂ n⌋+1)`
//!
//! The reduction the paper *describes* — inferring the diagonal
//! `x_{j,j}` from the off-diagonal sends — removes exactly `M` of the `M²`
//! pair groups, leaving `M(M−1)` groups. We therefore track both numbers:
//! [`logical_qubits`] is what this implementation actually allocates,
//! [`paper_qubit_formula`] is the figure printed in the paper.

use super::builder::Variant;

/// Both qubit counts for one formulation of an `(M, n)` instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QubitBudget {
    /// Binary variables this implementation allocates.
    pub actual: u64,
    /// The count printed in the paper's Table I.
    pub paper: u64,
}

/// Bits per pair count: `⌊log₂ n⌋ + 1`.
fn bits(n: u64) -> u64 {
    assert!(n >= 1);
    u64::from(n.ilog2()) + 1
}

/// Logical qubits actually allocated by [`super::LrpCqm::build`].
pub fn logical_qubits(variant: Variant, m: u64, n: u64) -> u64 {
    match variant {
        Variant::Full => m * m * bits(n),
        Variant::Reduced => m * (m - 1) * bits(n),
    }
}

/// The formula as printed in the paper.
pub fn paper_qubit_formula(variant: Variant, m: u64, n: u64) -> u64 {
    match variant {
        Variant::Full => m * m * bits(n),
        Variant::Reduced => (m - 1) * (m - 1) * bits(n),
    }
}

/// Both counts together.
pub fn qubit_budget(variant: Variant, m: u64, n: u64) -> QubitBudget {
    QubitBudget {
        actual: logical_qubits(variant, m, n),
        paper: paper_qubit_formula(variant, m, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqm::LrpCqm;
    use crate::instance::Instance;

    #[test]
    fn full_counts_match_paper() {
        // M = 8, n = 50: bits = ⌊log₂50⌋+1 = 6.
        assert_eq!(logical_qubits(Variant::Full, 8, 50), 64 * 6);
        assert_eq!(paper_qubit_formula(Variant::Full, 8, 50), 64 * 6);
    }

    #[test]
    fn reduced_actual_vs_paper() {
        assert_eq!(logical_qubits(Variant::Reduced, 8, 50), 8 * 7 * 6);
        assert_eq!(paper_qubit_formula(Variant::Reduced, 8, 50), 49 * 6);
        let b = qubit_budget(Variant::Reduced, 8, 50);
        assert!(b.actual > b.paper);
    }

    #[test]
    fn counts_agree_with_built_models() {
        let inst = Instance::uniform(50, vec![1.0; 8]).unwrap();
        for variant in [Variant::Full, Variant::Reduced] {
            let lrp = LrpCqm::build(&inst, variant, 10).unwrap();
            assert_eq!(
                lrp.cqm.num_vars() as u64,
                logical_qubits(variant, 8, 50),
                "{variant:?}"
            );
        }
    }

    #[test]
    fn largest_paper_config() {
        // M = 64, n = 100 (Fig. 4 rightmost point): 28 672 binaries.
        assert_eq!(logical_qubits(Variant::Full, 64, 100), 28_672);
    }
}
