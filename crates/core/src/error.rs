//! Error types shared across the LRP layer.

/// Errors from constructing instances, validating plans, or solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalanceError {
    /// The instance parameters are invalid (empty, zero tasks, negative or
    /// non-finite weights, …).
    InvalidInstance(String),
    /// A migration matrix fails validation against its instance.
    InvalidPlan(String),
    /// The solver produced no feasible, decodable sample.
    NoFeasibleSolution(String),
    /// The model linter refused the CQM before solving (the hybrid solver's
    /// `LintMode::Deny` found error-severity diagnostics).
    ModelRejected(String),
    /// CSV input/output failure.
    Io(String),
}

impl std::fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceError::InvalidInstance(m) => write!(f, "invalid instance: {m}"),
            RebalanceError::InvalidPlan(m) => write!(f, "invalid migration plan: {m}"),
            RebalanceError::NoFeasibleSolution(m) => write!(f, "no feasible solution: {m}"),
            RebalanceError::ModelRejected(m) => write!(f, "model rejected by lint: {m}"),
            RebalanceError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for RebalanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RebalanceError::InvalidPlan("column 3 sums to 7, expected 5".into());
        assert!(e.to_string().contains("column 3"));
        assert!(e.to_string().starts_with("invalid migration plan"));
    }
}
