//! Error types shared across the LRP layer.

/// Errors from constructing instances, validating plans, or solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalanceError {
    /// The instance parameters are invalid (empty, zero tasks, negative or
    /// non-finite weights, …).
    InvalidInstance(String),
    /// A migration matrix fails validation against its instance.
    InvalidPlan(String),
    /// The solver produced no feasible, decodable sample.
    NoFeasibleSolution(String),
    /// The model linter refused the CQM before solving (the hybrid solver's
    /// `LintMode::Deny` found error-severity diagnostics).
    ModelRejected(String),
    /// The formulation needs more binary variables than the monolithic
    /// solver's tabu cap allows. Surfaced *before* the CQM is built, so a
    /// 4096-node instance fails in microseconds instead of after minutes of
    /// model construction.
    ModelTooLarge {
        /// Logical qubits the formulation would allocate.
        vars: u64,
        /// The configured solver cap it exceeds.
        cap: u64,
    },
    /// CSV input/output failure.
    Io(String),
}

impl std::fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceError::InvalidInstance(m) => write!(f, "invalid instance: {m}"),
            RebalanceError::InvalidPlan(m) => write!(f, "invalid migration plan: {m}"),
            RebalanceError::NoFeasibleSolution(m) => write!(f, "no feasible solution: {m}"),
            RebalanceError::ModelRejected(m) => write!(f, "model rejected by lint: {m}"),
            RebalanceError::ModelTooLarge { vars, cap } => write!(
                f,
                "model too large: {vars} variables exceed the {cap}-variable solver cap; \
                 rerun with `--decompose` (multilevel decomposition frontend) or a smaller \
                 instance"
            ),
            RebalanceError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for RebalanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RebalanceError::InvalidPlan("column 3 sums to 7, expected 5".into());
        assert!(e.to_string().contains("column 3"));
        assert!(e.to_string().starts_with("invalid migration plan"));
    }

    #[test]
    fn model_too_large_points_at_decompose() {
        let e = RebalanceError::ModelTooLarge {
            vars: 117_379_584,
            cap: 32_768,
        };
        let msg = e.to_string();
        assert!(msg.contains("117379584"));
        assert!(msg.contains("32768"));
        assert!(msg.contains("--decompose"));
    }
}
