//! The general (task-level) Load Rebalancing Problem.
//!
//! The paper's CQM formulation assumes tasks on one process share a weight —
//! a deliberate restriction (`§IV`: "all n tasks of a process have uniform
//! execution times") that makes migration counts encodable in
//! `⌊log₂ n⌋+1` binaries per pair. The *general* LRP of Aggarwal et al.
//! (the paper's ref. \[4\]) has arbitrary per-task weights; this module
//! provides that model so the classical methods remain usable beyond the
//! paper's scope:
//!
//! * [`TaskInstance`] — every task carries its own weight and current
//!   process.
//! * [`TaskPlan`] — a per-task destination map with migration counting and
//!   validation.
//! * [`greedy_lpt`] / [`proact_tasks`] — the task-level analogues of the
//!   Greedy and ProactLB baselines.
//!
//! A [`TaskInstance`] whose per-process weights happen to be uniform
//! round-trips losslessly with the paper's [`Instance`]/[`MigrationMatrix`]
//! model (see [`TaskInstance::from_uniform`] and [`TaskPlan::to_matrix`]).

use serde::{Deserialize, Serialize};

use crate::error::RebalanceError;
use crate::instance::Instance;
use crate::metrics::ImbalanceStats;
use crate::migration::MigrationMatrix;

/// A task-level LRP instance: arbitrary weights, arbitrary initial
/// assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskInstance {
    weights: Vec<f64>,
    origin: Vec<usize>,
    num_procs: usize,
}

impl TaskInstance {
    /// Builds from per-process task lists.
    ///
    /// # Errors
    /// Rejects zero processes and negative/non-finite weights. Empty
    /// processes are allowed (unlike the uniform model).
    pub fn new(per_proc: Vec<Vec<f64>>) -> Result<Self, RebalanceError> {
        if per_proc.is_empty() {
            return Err(RebalanceError::InvalidInstance(
                "at least one process is required".into(),
            ));
        }
        let num_procs = per_proc.len();
        let mut weights = Vec::new();
        let mut origin = Vec::new();
        for (p, tasks) in per_proc.into_iter().enumerate() {
            for w in tasks {
                if !w.is_finite() || w < 0.0 {
                    return Err(RebalanceError::InvalidInstance(format!(
                        "task weight {w} on process {p} must be finite and >= 0"
                    )));
                }
                weights.push(w);
                origin.push(p);
            }
        }
        Ok(Self {
            weights,
            origin,
            num_procs,
        })
    }

    /// Expands a uniform instance into the task-level model.
    pub fn from_uniform(inst: &Instance) -> Self {
        let n = inst.tasks_per_proc() as usize;
        let per_proc = inst.weights().iter().map(|&w| vec![w; n]).collect();
        Self::new(per_proc).expect("uniform instances are valid") // qlrb-lint: allow(no-unwrap)
    }

    /// Number of processes.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.weights.len()
    }

    /// Task weights, indexed by task id.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Initial process of each task.
    pub fn origin(&self) -> &[usize] {
        &self.origin
    }

    /// Initial per-process loads.
    pub fn loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.num_procs];
        for (&w, &p) in self.weights.iter().zip(&self.origin) {
            loads[p] += w;
        }
        loads
    }

    /// Imbalance statistics of the initial assignment.
    pub fn stats(&self) -> ImbalanceStats {
        ImbalanceStats::from_loads(&self.loads())
    }

    /// Statistics after applying a plan.
    pub fn stats_after(&self, plan: &TaskPlan) -> ImbalanceStats {
        ImbalanceStats::from_loads(&plan.new_loads(self))
    }

    /// Speedup of a plan (`L_max` ratio).
    pub fn speedup(&self, plan: &TaskPlan) -> f64 {
        crate::metrics::speedup(self.stats().l_max, self.stats_after(plan).l_max)
    }
}

/// A task-level rebalancing solution: destination process per task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskPlan {
    dest: Vec<usize>,
}

impl TaskPlan {
    /// The identity plan for an instance.
    pub fn identity(inst: &TaskInstance) -> Self {
        Self {
            dest: inst.origin.clone(),
        }
    }

    /// Builds from an explicit destination vector.
    ///
    /// # Errors
    /// Rejects length mismatches and out-of-range destinations.
    pub fn new(inst: &TaskInstance, dest: Vec<usize>) -> Result<Self, RebalanceError> {
        if dest.len() != inst.num_tasks() {
            return Err(RebalanceError::InvalidPlan(format!(
                "plan covers {} tasks, instance has {}",
                dest.len(),
                inst.num_tasks()
            )));
        }
        if let Some((t, &d)) = dest
            .iter()
            .enumerate()
            .find(|(_, &d)| d >= inst.num_procs())
        {
            return Err(RebalanceError::InvalidPlan(format!(
                "task {t} sent to process {d}, but only {} exist",
                inst.num_procs()
            )));
        }
        Ok(Self { dest })
    }

    /// Destination of each task.
    pub fn destinations(&self) -> &[usize] {
        &self.dest
    }

    /// Moves `task` to `process`.
    pub fn assign(&mut self, task: usize, process: usize) {
        self.dest[task] = process;
    }

    /// Number of tasks whose destination differs from their origin.
    pub fn num_migrated(&self, inst: &TaskInstance) -> u64 {
        self.dest
            .iter()
            .zip(&inst.origin)
            .filter(|(d, o)| d != o)
            .count() as u64
    }

    /// Per-process loads after the plan.
    pub fn new_loads(&self, inst: &TaskInstance) -> Vec<f64> {
        let mut loads = vec![0.0; inst.num_procs];
        for (&w, &d) in inst.weights.iter().zip(&self.dest) {
            loads[d] += w;
        }
        loads
    }

    /// Collapses a task-level plan on a class-uniform instance into the
    /// paper's migration-count matrix.
    pub fn to_matrix(&self, inst: &TaskInstance) -> MigrationMatrix {
        let mut mat = MigrationMatrix::zeros(inst.num_procs());
        for (&o, &d) in inst.origin.iter().zip(&self.dest) {
            mat.add(d, o, 1);
        }
        mat
    }
}

/// Task-level Greedy (LPT): repartitions *all* tasks from scratch, heaviest
/// first onto the least-loaded process — migration-oblivious, like the
/// paper's Greedy.
pub fn greedy_lpt(inst: &TaskInstance) -> TaskPlan {
    let mut order: Vec<usize> = (0..inst.num_tasks()).collect();
    // Heaviest first; ties by task id for determinism.
    order.sort_by(|&a, &b| inst.weights[b].total_cmp(&inst.weights[a]).then(a.cmp(&b)));
    let mut loads = vec![0.0f64; inst.num_procs()];
    let mut dest = vec![0usize; inst.num_tasks()];
    for t in order {
        let (p, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .expect("at least one process"); // qlrb-lint: allow(no-unwrap)
        dest[t] = p;
        loads[p] += inst.weights[t];
    }
    TaskPlan { dest }
}

/// Task-level ProactLB: donors above the average shed their *smallest
/// sufficient* tasks toward the largest deficits, never overshooting a
/// receiver by more than half the moved task's weight.
pub fn proact_tasks(inst: &TaskInstance) -> TaskPlan {
    let mut plan = TaskPlan::identity(inst);
    let loads = inst.loads();
    let l_avg = loads.iter().sum::<f64>() / inst.num_procs() as f64;

    let mut donors: Vec<usize> = (0..inst.num_procs())
        .filter(|&p| loads[p] > l_avg)
        .collect();
    donors.sort_by(|&a, &b| loads[b].total_cmp(&loads[a]));
    let mut deficits: Vec<(usize, f64)> = (0..inst.num_procs())
        .filter(|&p| loads[p] < l_avg)
        .map(|p| (p, l_avg - loads[p]))
        .collect();
    deficits.sort_by(|a, b| b.1.total_cmp(&a.1));

    for &donor in &donors {
        let mut excess = loads[donor] - l_avg;
        // Donor's own tasks, lightest first, so precision moves are
        // available for small deficits.
        let mut mine: Vec<usize> = (0..inst.num_tasks())
            .filter(|&t| inst.origin[t] == donor)
            .collect();
        mine.sort_by(|&a, &b| inst.weights[a].total_cmp(&inst.weights[b]).then(a.cmp(&b)));
        for entry in deficits.iter_mut() {
            if excess <= 0.0 {
                break;
            }
            // Move tasks while they fit the deficit (with w/2 rounding
            // slack) and the donor stays above the average.
            while entry.1 > 0.0 && excess > 0.0 {
                let Some(&t) = mine.iter().find(|&&t| {
                    let w = inst.weights[t];
                    w > 0.0 && w <= excess + 1e-12 && w <= entry.1 + w / 2.0
                }) else {
                    break;
                };
                let w = inst.weights[t];
                plan.assign(t, entry.0);
                mine.retain(|&x| x != t);
                entry.1 -= w;
                excess -= w;
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn heterogeneous() -> TaskInstance {
        TaskInstance::new(vec![vec![5.0, 1.0, 1.0], vec![9.0, 4.0], vec![2.0], vec![]]).unwrap()
    }

    #[test]
    fn construction_and_loads() {
        let inst = heterogeneous();
        assert_eq!(inst.num_procs(), 4);
        assert_eq!(inst.num_tasks(), 6);
        assert_eq!(inst.loads(), vec![7.0, 13.0, 2.0, 0.0]);
        assert!(inst.stats().imbalance_ratio > 1.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(TaskInstance::new(vec![]).is_err());
        assert!(TaskInstance::new(vec![vec![-1.0]]).is_err());
        assert!(TaskInstance::new(vec![vec![f64::NAN]]).is_err());
        let inst = heterogeneous();
        assert!(TaskPlan::new(&inst, vec![0; 5]).is_err());
        assert!(TaskPlan::new(&inst, vec![9; 6]).is_err());
    }

    #[test]
    fn uniform_bridge_roundtrips() {
        let uni = Instance::uniform(3, vec![1.0, 2.0]).unwrap();
        let inst = TaskInstance::from_uniform(&uni);
        assert_eq!(inst.num_tasks(), 6);
        assert_eq!(inst.loads(), uni.loads());
        // A task-level plan collapses to a valid matrix.
        let mut plan = TaskPlan::identity(&inst);
        plan.assign(3, 0); // move one w=2 task from P1 to P0
        let mat = plan.to_matrix(&inst);
        mat.validate(&uni).unwrap();
        assert_eq!(mat.num_migrated(), plan.num_migrated(&inst));
        assert_eq!(mat.get(0, 1), 1);
    }

    #[test]
    fn greedy_lpt_balances_heterogeneous_tasks() {
        let inst = heterogeneous();
        let plan = greedy_lpt(&inst);
        let after = inst.stats_after(&plan);
        assert!(after.l_max <= inst.stats().l_max);
        // Total 22 over 4 procs: LPT gets within one task of the 5.5 mean.
        assert!(after.l_max <= 9.0, "L_max = {}", after.l_max);
        // Loads are conserved.
        let total: f64 = plan.new_loads(&inst).iter().sum();
        assert!((total - 22.0).abs() < 1e-12);
    }

    #[test]
    fn proact_tasks_moves_few_and_never_worsens() {
        let inst = heterogeneous();
        let plan = proact_tasks(&inst);
        let after = inst.stats_after(&plan);
        assert!(after.l_max <= inst.stats().l_max + 1e-9);
        assert!(after.imbalance_ratio < inst.stats().imbalance_ratio);
        let greedy_migrations = greedy_lpt(&inst).num_migrated(&inst);
        assert!(plan.num_migrated(&inst) <= greedy_migrations);
        // Only overloaded processes donate.
        for (t, (&o, &d)) in inst.origin().iter().zip(plan.destinations()).enumerate() {
            if o != d {
                assert!(
                    inst.loads()[o] > inst.stats().l_avg,
                    "task {t} donated by an underloaded process"
                );
            }
        }
    }

    #[test]
    fn empty_process_can_receive() {
        let inst = heterogeneous();
        let plan = proact_tasks(&inst);
        // Process 3 (empty, deficit = avg) should have received something.
        assert!(
            plan.new_loads(&inst)[3] > 0.0,
            "the empty process stayed empty: {:?}",
            plan.new_loads(&inst)
        );
    }

    proptest! {
        #[test]
        fn plans_conserve_and_never_worsen(
            tasks in proptest::collection::vec(
                proptest::collection::vec(0.0f64..20.0, 0..8), 1..6),
        ) {
            let inst = TaskInstance::new(tasks).unwrap();
            let total: f64 = inst.weights().iter().sum();
            let w_max = inst.weights().iter().copied().fold(0.0f64, f64::max);
            let avg = total / inst.num_procs() as f64;
            for plan in [greedy_lpt(&inst), proact_tasks(&inst), TaskPlan::identity(&inst)] {
                let loads = plan.new_loads(&inst);
                prop_assert!((loads.iter().sum::<f64>() - total).abs() < 1e-9);
                // List-scheduling bound; from-scratch LPT may exceed the
                // *original* L_max (Graham's anomaly) but never this.
                let bound = (avg + w_max).max(inst.stats().l_max);
                prop_assert!(inst.stats_after(&plan).l_max <= bound + 1e-9);
            }
            // The migration-aware methods additionally never worsen.
            for plan in [proact_tasks(&inst), TaskPlan::identity(&inst)] {
                prop_assert!(inst.stats_after(&plan).l_max <= inst.stats().l_max + 1e-9);
            }
        }

        #[test]
        fn uniform_agreement_with_matrix_model(
            n in 1u64..12,
            weights in proptest::collection::vec(0.1f64..10.0, 2..5),
        ) {
            // On a uniform instance the task-level Greedy matches the
            // matrix-level Greedy's load quality (same algorithm, different
            // representation).
            let uni = Instance::uniform(n, weights).unwrap();
            let tl = TaskInstance::from_uniform(&uni);
            let plan = greedy_lpt(&tl);
            let mat = plan.to_matrix(&tl);
            prop_assert!(mat.validate(&uni).is_ok());
            let via_tasks = inst_lmax(&tl, &plan);
            let via_matrix = uni.stats_after(&mat).l_max;
            prop_assert!((via_tasks - via_matrix).abs() < 1e-9);
        }
    }

    fn inst_lmax(inst: &TaskInstance, plan: &TaskPlan) -> f64 {
        inst.stats_after(plan).l_max
    }
}
