//! The common interface every rebalancing method implements.

use std::time::Duration;

use crate::error::RebalanceError;
use crate::instance::Instance;
use crate::migration::MigrationMatrix;

/// Result of running a rebalancing method on an instance.
#[derive(Debug, Clone)]
pub struct RebalanceOutcome {
    /// The migration plan (validated against the instance).
    pub matrix: MigrationMatrix,
    /// Wall-clock (CPU) time of the method itself — the paper's "Runtime"
    /// column.
    pub runtime: Duration,
    /// Simulated quantum-processor access time, for hybrid methods only —
    /// the paper's Table V "QPU" column.
    pub qpu_time: Option<Duration>,
}

/// A load-rebalancing method: classical baseline or hybrid quantum.
///
/// Implementations must return plans that pass
/// [`MigrationMatrix::validate`]; the harness re-validates defensively.
pub trait Rebalancer {
    /// Display name as used in the paper's tables (e.g. `"Greedy"`,
    /// `"Q_CQM1_k1"`).
    fn name(&self) -> String;

    /// Computes a migration plan for `inst`.
    fn rebalance(&self, inst: &Instance) -> Result<RebalanceOutcome, RebalanceError>;
}

/// The do-nothing baseline ("Baseline" row of Table V): every task stays.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOp;

impl Rebalancer for NoOp {
    fn name(&self) -> String {
        "Baseline".into()
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceOutcome, RebalanceError> {
        Ok(RebalanceOutcome {
            matrix: MigrationMatrix::identity(inst),
            runtime: Duration::ZERO,
            qpu_time: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_keeps_everything() {
        let inst = Instance::uniform(5, vec![1.0, 2.0]).unwrap();
        let out = NoOp.rebalance(&inst).unwrap();
        out.matrix.validate(&inst).unwrap();
        assert_eq!(out.matrix.num_migrated(), 0);
        assert_eq!(inst.speedup(&out.matrix), 1.0);
        assert_eq!(NoOp.name(), "Baseline");
    }
}
