//! LRP problem instances.

use serde::{Deserialize, Serialize};

use crate::error::RebalanceError;
use crate::metrics::ImbalanceStats;
use crate::migration::MigrationMatrix;

/// A Load Rebalancing Problem instance in the paper's input model (§IV):
/// `M` processes, each initially holding `n` tasks, where every task on
/// process `i` has the same weight `w_i` (execution time). Imbalance comes
/// from the weights differing *across* processes.
///
/// ```
/// use qlrb_core::Instance;
/// // The paper's Fig. 7 example: 4 processes x 5 tasks.
/// let inst = Instance::uniform(5, vec![1.87, 1.97, 3.12, 2.81]).unwrap();
/// assert_eq!(inst.num_tasks(), 20);
/// assert!((inst.stats().l_max - 15.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    tasks_per_proc: u64,
    weights: Vec<f64>,
}

impl Instance {
    /// Builds an instance with `n` tasks per process and per-process task
    /// weights `weights` (one entry per process).
    ///
    /// # Errors
    /// Rejects `n == 0`, an empty weight vector, and negative or non-finite
    /// weights.
    pub fn uniform(n: u64, weights: Vec<f64>) -> Result<Self, RebalanceError> {
        if n == 0 {
            return Err(RebalanceError::InvalidInstance(
                "tasks per process must be >= 1".into(),
            ));
        }
        if weights.is_empty() {
            return Err(RebalanceError::InvalidInstance(
                "at least one process is required".into(),
            ));
        }
        if let Some((i, &w)) = weights
            .iter()
            .enumerate()
            .find(|(_, w)| !w.is_finite() || **w < 0.0)
        {
            return Err(RebalanceError::InvalidInstance(format!(
                "weight of process {i} is {w}; weights must be finite and >= 0"
            )));
        }
        Ok(Self {
            tasks_per_proc: n,
            weights,
        })
    }

    /// Number of processes `M`.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.weights.len()
    }

    /// Tasks per process `n`.
    #[inline]
    pub fn tasks_per_proc(&self) -> u64 {
        self.tasks_per_proc
    }

    /// Total number of tasks `N = n·M`.
    #[inline]
    pub fn num_tasks(&self) -> u64 {
        self.tasks_per_proc * self.weights.len() as u64
    }

    /// Per-process task weights `w_i`.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Initial per-process loads `L_i = n·w_i`.
    pub fn loads(&self) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| w * self.tasks_per_proc as f64)
            .collect()
    }

    /// Imbalance statistics of the initial assignment.
    pub fn stats(&self) -> ImbalanceStats {
        ImbalanceStats::from_loads(&self.loads())
    }

    /// Imbalance statistics after applying a migration plan.
    pub fn stats_after(&self, plan: &MigrationMatrix) -> ImbalanceStats {
        ImbalanceStats::from_loads(&plan.new_loads(self))
    }

    /// Speedup delivered by a plan: `L_max(before) / L_max(after)`.
    pub fn speedup(&self, plan: &MigrationMatrix) -> f64 {
        crate::metrics::speedup(self.stats().l_max, self.stats_after(plan).l_max)
    }

    /// The task multiset as `(weight, source process)` pairs, heaviest first
    /// — the view classical partitioning algorithms (Greedy, KK) operate on.
    pub fn tasks_by_weight_desc(&self) -> Vec<(f64, usize)> {
        let mut classes: Vec<usize> = (0..self.num_procs()).collect();
        classes.sort_by(|&a, &b| self.weights[b].total_cmp(&self.weights[a]));
        let mut tasks = Vec::with_capacity(self.num_tasks() as usize);
        for &p in &classes {
            for _ in 0..self.tasks_per_proc {
                tasks.push((self.weights[p], p));
            }
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let inst = Instance::uniform(5, vec![1.87, 1.97, 3.12, 2.81]).unwrap();
        assert_eq!(inst.num_procs(), 4);
        assert_eq!(inst.tasks_per_proc(), 5);
        assert_eq!(inst.num_tasks(), 20);
        let loads = inst.loads();
        assert!((loads[2] - 15.6).abs() < 1e-9);
        assert!((inst.stats().l_max - 15.6).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_instances() {
        assert!(Instance::uniform(0, vec![1.0]).is_err());
        assert!(Instance::uniform(3, vec![]).is_err());
        assert!(Instance::uniform(3, vec![1.0, -2.0]).is_err());
        assert!(Instance::uniform(3, vec![f64::NAN]).is_err());
        assert!(Instance::uniform(3, vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn zero_weight_is_allowed() {
        // A process whose tasks are free is a legal (if degenerate) input.
        let inst = Instance::uniform(2, vec![0.0, 1.0]).unwrap();
        assert_eq!(inst.loads(), vec![0.0, 2.0]);
    }

    #[test]
    fn tasks_sorted_heaviest_first() {
        let inst = Instance::uniform(2, vec![1.0, 3.0, 2.0]).unwrap();
        let tasks = inst.tasks_by_weight_desc();
        assert_eq!(tasks.len(), 6);
        let weights: Vec<f64> = tasks.iter().map(|t| t.0).collect();
        assert_eq!(weights, vec![3.0, 3.0, 2.0, 2.0, 1.0, 1.0]);
        assert_eq!(tasks[0].1, 1); // heaviest tasks come from process 1
    }
}
