//! Migration plans as the paper's task-count matrix.

use serde::{Deserialize, Serialize};

use crate::error::RebalanceError;
use crate::instance::Instance;

/// A rebalancing solution: `x[i][j]` counts the tasks moved **to** process
/// `i` **from** process `j`; the diagonal `x[j][j]` counts the tasks that
/// stay on `j`. Conservation requires each *column* `j` to sum to `n`
/// (every task of `j` either stays or goes somewhere).
///
/// This is exactly the matrix of the paper's artifact output format
/// (Table VII), and the object the CQM variables `x_{i,j,l}` encode.
///
/// ```
/// use qlrb_core::{Instance, MigrationMatrix};
/// let inst = Instance::uniform(10, vec![1.0, 3.0]).unwrap();
/// let mut plan = MigrationMatrix::identity(&inst);
/// plan.migrate(1, 0, 3).unwrap(); // 3 heavy tasks to the light process
/// plan.validate(&inst).unwrap();
/// assert_eq!(plan.num_migrated(), 3);
/// assert!(inst.speedup(&plan) > 1.3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationMatrix {
    m: usize,
    /// Row-major `m × m` counts.
    x: Vec<u64>,
}

impl MigrationMatrix {
    /// An all-zero matrix for `m` processes.
    pub fn zeros(m: usize) -> Self {
        assert!(m >= 1, "need at least one process");
        Self {
            m,
            x: vec![0; m * m],
        }
    }

    /// The identity plan for an instance: every task stays put.
    pub fn identity(inst: &Instance) -> Self {
        let m = inst.num_procs();
        let mut mat = Self::zeros(m);
        for i in 0..m {
            mat.set(i, i, inst.tasks_per_proc());
        }
        mat
    }

    /// Builds from row-major counts.
    ///
    /// # Errors
    /// Rejects a length that is not a perfect square of `m ≥ 1`.
    pub fn from_rows(m: usize, x: Vec<u64>) -> Result<Self, RebalanceError> {
        if m == 0 || x.len() != m * m {
            return Err(RebalanceError::InvalidPlan(format!(
                "expected {m}×{m} = {} counts, got {}",
                m * m,
                x.len()
            )));
        }
        Ok(Self { m, x })
    }

    /// Number of processes.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.m
    }

    /// Tasks moved to `i` from `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u64 {
        self.x[i * self.m + j]
    }

    /// Sets the count for (to `i`, from `j`).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, count: u64) {
        self.x[i * self.m + j] = count;
    }

    /// Adds to the count for (to `i`, from `j`).
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, count: u64) {
        self.x[i * self.m + j] += count;
    }

    /// Moves `count` tasks from `from` to `to`, debiting the stay-diagonal.
    ///
    /// # Errors
    /// Fails if fewer than `count` tasks remain on `from`'s diagonal.
    pub fn migrate(&mut self, from: usize, to: usize, count: u64) -> Result<(), RebalanceError> {
        if from == to || count == 0 {
            return Ok(());
        }
        let stay = self.get(from, from);
        if stay < count {
            return Err(RebalanceError::InvalidPlan(format!(
                "process {from} has only {stay} resident tasks, cannot move {count}"
            )));
        }
        self.set(from, from, stay - count);
        self.add(to, from, count);
        Ok(())
    }

    /// Total number of migrated tasks (off-diagonal sum) — the paper's
    /// "# mig. tasks" column.
    pub fn num_migrated(&self) -> u64 {
        let mut total = 0;
        for i in 0..self.m {
            for j in 0..self.m {
                if i != j {
                    total += self.get(i, j);
                }
            }
        }
        total
    }

    /// Average migrated tasks per process.
    pub fn migrated_per_proc(&self) -> f64 {
        self.num_migrated() as f64 / self.m as f64
    }

    /// New per-process loads: `L'_i = Σ_j w_j · x[i][j]`.
    pub fn new_loads(&self, inst: &Instance) -> Vec<f64> {
        let w = inst.weights();
        (0..self.m)
            .map(|i| (0..self.m).map(|j| w[j] * self.get(i, j) as f64).sum())
            .collect()
    }

    /// Tasks residing on process `i` after rebalancing (row sum).
    pub fn tasks_on(&self, i: usize) -> u64 {
        (0..self.m).map(|j| self.get(i, j)).sum()
    }

    /// Tasks contributed by process `j` (column sum); conservation requires
    /// this to equal `n` for every `j`.
    pub fn tasks_from(&self, j: usize) -> u64 {
        (0..self.m).map(|i| self.get(i, j)).sum()
    }

    /// Validates the plan against an instance: matching process count and
    /// column sums equal to `n`.
    pub fn validate(&self, inst: &Instance) -> Result<(), RebalanceError> {
        if self.m != inst.num_procs() {
            return Err(RebalanceError::InvalidPlan(format!(
                "plan covers {} processes, instance has {}",
                self.m,
                inst.num_procs()
            )));
        }
        let n = inst.tasks_per_proc();
        for j in 0..self.m {
            let total = self.tasks_from(j);
            if total != n {
                return Err(RebalanceError::InvalidPlan(format!(
                    "column {j} sums to {total}, expected {n}: tasks were lost or invented"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn inst() -> Instance {
        Instance::uniform(100, vec![1.87, 1.97, 14.86, 103.23]).unwrap()
    }

    #[test]
    fn identity_is_valid_and_migration_free() {
        let inst = inst();
        let id = MigrationMatrix::identity(&inst);
        id.validate(&inst).unwrap();
        assert_eq!(id.num_migrated(), 0);
        let loads = id.new_loads(&inst);
        for (a, b) in loads.iter().zip(inst.loads()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_table7_greedy_output() {
        // Table VII: every process keeps 25 tasks and sends 25 to each other.
        let inst = inst();
        let mut mat = MigrationMatrix::identity(&inst);
        for from in 0..4 {
            for to in 0..4 {
                if from != to {
                    mat.migrate(from, to, 25).unwrap();
                }
            }
        }
        mat.validate(&inst).unwrap();
        for i in 0..4 {
            assert_eq!(mat.tasks_on(i), 100);
            assert_eq!(mat.get(i, i), 25);
        }
        assert_eq!(mat.num_migrated(), 300);
        assert_eq!(mat.migrated_per_proc(), 75.0);
        let loads = mat.new_loads(&inst);
        let expect = 25.0 * (1.87 + 1.97 + 14.86 + 103.23);
        for l in loads {
            assert!((l - expect).abs() < 1e-9, "{l} vs {expect}");
        }
    }

    #[test]
    fn migrate_rejects_overdraw() {
        let inst = Instance::uniform(5, vec![1.0, 2.0]).unwrap();
        let mut mat = MigrationMatrix::identity(&inst);
        assert!(mat.migrate(0, 1, 6).is_err());
        mat.migrate(0, 1, 5).unwrap();
        assert!(mat.migrate(0, 1, 1).is_err());
        mat.validate(&inst).unwrap();
    }

    #[test]
    fn validate_catches_lost_tasks() {
        let inst = Instance::uniform(5, vec![1.0, 2.0]).unwrap();
        let mut mat = MigrationMatrix::identity(&inst);
        mat.set(0, 0, 4); // one task vanished
        let err = mat.validate(&inst).unwrap_err();
        assert!(err.to_string().contains("column 0"));
    }

    #[test]
    fn validate_catches_dimension_mismatch() {
        let inst = Instance::uniform(5, vec![1.0, 2.0]).unwrap();
        let mat = MigrationMatrix::zeros(3);
        assert!(mat.validate(&inst).is_err());
    }

    #[test]
    fn from_rows_rejects_bad_shape() {
        assert!(MigrationMatrix::from_rows(2, vec![1, 2, 3]).is_err());
        assert!(MigrationMatrix::from_rows(0, vec![]).is_err());
        assert!(MigrationMatrix::from_rows(2, vec![1, 2, 3, 4]).is_ok());
    }

    proptest! {
        /// Random sequences of legal migrations preserve conservation.
        #[test]
        fn random_migrations_conserve_tasks(
            moves in proptest::collection::vec((0usize..4, 0usize..4, 1u64..10), 0..50)
        ) {
            let inst = Instance::uniform(30, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
            let mut mat = MigrationMatrix::identity(&inst);
            for (from, to, count) in moves {
                let _ = mat.migrate(from, to, count); // overdraws rejected
            }
            prop_assert!(mat.validate(&inst).is_ok());
            // Row sums redistribute but the grand total is constant.
            let total: u64 = (0..4).map(|i| mat.tasks_on(i)).sum();
            prop_assert_eq!(total, inst.num_tasks());
        }
    }
}
