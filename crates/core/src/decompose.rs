//! Multilevel coarsen / solve / uncoarsen frontend for the LRP
//! (DESIGN.md §Decomposition).
//!
//! The paper's monolithic formulations stop being buildable long before
//! they stop being solvable: at `M = 4096` processes the reduced CQM would
//! allocate `M·(M−1)·⌈log₂ n +1⌉ ≈ 10⁸` binaries — far past the solver's
//! tabu cap and past what is worth materializing at all. This module
//! breaks that ceiling with the classic multilevel scheme:
//!
//! 1. **Coarsen** — repeatedly merge process *pairs* into super-processes
//!    until at most `coarse_target` remain. Pairing is weight-aware and
//!    deterministic: processes are sorted by task weight (descending,
//!    index-ascending ties) and adjacent entries merge, so similarly-loaded
//!    processes fuse and the imbalance *profile* survives coarsening. A
//!    merged super-process carries `2n` tasks of the *mean* weight of its
//!    children (an odd leftover keeps its tasks at half weight), which
//!    makes every coarse load exactly the sum of its fine loads.
//! 2. **Solve** — run the ordinary [`QuantumRebalancer`] portfolio on the
//!    coarse instance, where the model fits the monolithic cap.
//! 3. **Uncoarsen** — project the plan down one level at a time: each
//!    coarse flow `B → A` is routed greedily in whole fine tasks from
//!    `B`'s children to `A`'s children, never exceeding the donor's
//!    resident tasks, the receiver's original-`L_max` capacity, or the
//!    global migration budget — so the projection is feasible by
//!    construction (worst case: nothing routes and the plan degrades
//!    toward identity). Levels small enough for the monolithic cap get a
//!    short *refinement solve* seeded with the projection; larger levels
//!    get the classical migration-pruning repair pass instead.
//!
//! Determinism: pairing, flow enumeration, and routing are all
//! index-ordered; sub-solver seeds derive from the master seed and the
//! level index alone. One merged, sealed `SolveRecord` (termination
//! `"decomposed"`, `decomposition.strategy = "multilevel"`) describes the
//! whole run; sub-solves never emit their own records.

use std::sync::Arc;
use std::time::Instant;

use qlrb_anneal::hybrid::HybridCqmSolver;
use qlrb_anneal::telemetry::{
    DecompositionLevelRecord, DecompositionRecord, NoopSink, SolveRecord, TraceSink,
};

use crate::algorithm::{RebalanceOutcome, Rebalancer};
use crate::cqm::{logical_qubits, Variant};
use crate::error::RebalanceError;
use crate::instance::Instance;
use crate::migration::MigrationMatrix;
use crate::solve::{prune_migrations, QuantumRebalancer};

/// Above this process count the `O(M²)` pruning repair pass is skipped
/// during uncoarsening (it would dominate the runtime it is meant to
/// polish).
const PRUNE_MAX_PROCS: usize = 512;

/// One coarsening step: the coarse instance plus the coarse→fine
/// parentage. Coarse process `c` merges fine processes `children[c]`.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The merged instance (`⌈M/2⌉` processes, `2n` tasks each).
    pub inst: Instance,
    /// Fine children of each coarse process; the second slot is `None`
    /// for an odd leftover singleton.
    pub children: Vec<(usize, Option<usize>)>,
}

/// Merges process pairs of `fine` into a half-size instance, preserving
/// every merged load exactly (see the module docs for the pairing rule).
///
/// # Panics
/// Panics if `fine` has fewer than two processes — there is nothing to
/// merge, and the caller's coarsening loop should have stopped.
pub fn coarsen(fine: &Instance) -> CoarseLevel {
    let m = fine.num_procs();
    assert!(m >= 2, "coarsening needs at least two processes");
    let w = fine.weights();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| w[b].total_cmp(&w[a]).then_with(|| a.cmp(&b)));

    let mut children = Vec::with_capacity(m.div_ceil(2));
    let mut weights = Vec::with_capacity(m.div_ceil(2));
    let mut it = order.chunks_exact(2);
    for pair in &mut it {
        children.push((pair[0], Some(pair[1])));
        weights.push((w[pair[0]] + w[pair[1]]) / 2.0);
    }
    if let [leftover] = *it.remainder() {
        children.push((leftover, None));
        weights.push(w[leftover] / 2.0);
    }

    let inst = Instance::uniform(2 * fine.tasks_per_proc(), weights)
        .expect("merged weights stay finite and non-negative"); // qlrb-lint: allow(no-unwrap)
    CoarseLevel { inst, children }
}

/// Projects a coarse migration plan onto the fine level it was coarsened
/// from, routing each coarse flow greedily in whole fine tasks.
///
/// The returned plan always validates against `fine`: every routed move is
/// bounded by the donor's resident tasks, the receiver's original-`L_max`
/// capacity, and `budget` total migrations.
pub fn project_plan(
    fine: &Instance,
    level: &CoarseLevel,
    coarse_plan: &MigrationMatrix,
    budget: u64,
) -> MigrationMatrix {
    let mut plan = MigrationMatrix::identity(fine);
    let mut loads = fine.loads();
    let cap = fine.stats().l_max * (1.0 + 1e-12) + 1e-12;
    let wf = fine.weights();
    let wc = level.inst.weights();
    let m_c = level.inst.num_procs();
    let mut budget = budget;

    let kids = |c: usize| -> [Option<usize>; 2] {
        let (a, b) = level.children[c];
        [Some(a), b]
    };

    // Load of `c`'s sibling child seen from child `x`: +inf for singleton
    // parents, so the gap never constrains them.
    let sibling_load = |loads: &[f64], c: usize, x: usize| -> f64 {
        let (p, q) = level.children[c];
        match q {
            Some(q) if p == x => loads[q],
            Some(_) => loads[p],
            None => f64::INFINITY,
        }
    };

    for a in 0..m_c {
        for b in 0..m_c {
            if a == b || budget == 0 {
                continue;
            }
            let t = coarse_plan.get(a, b);
            if t == 0 {
                continue;
            }
            // Load the coarse solver decided to move from B's territory
            // into A's. Water-fill: drain B's heavier child, fill A's
            // lighter child, and chunk transfers by the sibling gap — a
            // single greedy dump into the first child would concentrate
            // the whole inflow there and undo the coarse plan's balance
            // one level down.
            let mut load_to_move = t as f64 * wc[b];
            loop {
                if budget == 0 {
                    break;
                }
                let Some(d) = kids(b)
                    .into_iter()
                    .flatten()
                    .filter(|&d| wf[d] > 0.0 && plan.get(d, d) > 0)
                    .max_by(|&x, &y| loads[x].total_cmp(&loads[y]))
                else {
                    break;
                };
                if load_to_move < wf[d] * 0.5 {
                    break;
                }
                let Some(r) = kids(a)
                    .into_iter()
                    .flatten()
                    .min_by(|&x, &y| loads[x].total_cmp(&loads[y]))
                else {
                    break;
                };
                // Chunk: close the donor's and receiver's sibling gaps
                // first; once a pair is level, move half the remainder so
                // both children share it. Always at least one task.
                let d_gap = (loads[d] - sibling_load(&loads, b, d)).max(0.0);
                let r_gap = (sibling_load(&loads, a, r) - loads[r]).max(0.0);
                let chunk = load_to_move
                    .min(d_gap.max(load_to_move / 2.0))
                    .min(r_gap.max(load_to_move / 2.0))
                    .max(wf[d]);
                // Round to the nearest whole task (overshoot ≤ w/2,
                // mirroring the greedy seed's receiver rounding).
                let want = ((chunk / wf[d]) + 0.5).floor() as u64;
                let headroom = (cap - loads[r]) / wf[d];
                let headroom = if headroom >= 1.0 {
                    headroom.floor() as u64
                } else {
                    0
                };
                let count = want.min(plan.get(d, d)).min(budget).min(headroom);
                if count == 0 || plan.migrate(d, r, count).is_err() {
                    break;
                }
                let moved = count as f64 * wf[d];
                loads[d] -= moved;
                loads[r] += moved;
                load_to_move -= moved;
                budget -= count;
            }
        }
    }
    plan
}

/// The quadratic imbalance objective `Σ_i (L_i − L_avg)²` the CQM
/// formulations minimize; recorded per level so the telemetry shows what
/// each fold-back and refinement bought.
fn imbalance_objective(loads: &[f64]) -> f64 {
    let avg = loads.iter().sum::<f64>() / loads.len() as f64;
    loads.iter().map(|l| (l - avg) * (l - avg)).sum()
}

/// Deterministic per-level sub-solver seed (splitmix64 over the master
/// seed and level index).
fn level_seed(master: u64, level: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(level.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A multilevel decomposing rebalancer: coarsen to `coarse_target`
/// processes, solve there with the ordinary hybrid portfolio, and project
/// the plan back down with per-level repair/refinement. The instance-size
/// ceiling of [`QuantumRebalancer`] does not apply — this is what
/// `qlrb rebalance --decompose` runs.
#[derive(Debug, Clone)]
pub struct DecomposingRebalancer {
    /// Formulation used for the coarse and refinement solves.
    pub variant: Variant,
    /// Migration budget `k`, enforced at every level (a coarse task
    /// carries the mean weight of its children, so one coarse move costs
    /// about one fine move of load).
    pub k: u64,
    /// Template solver configuration for every sub-solve (its sink is
    /// replaced by a private no-op; seeds are salted per level).
    pub solver: HybridCqmSolver,
    /// Stop coarsening at or below this many processes (min 2).
    pub coarse_target: usize,
    /// Optional display label; defaults to `"<variant>+ML(k=<k>)"`.
    pub label: Option<String>,
    /// Sink for the single merged solve record.
    pub sink: Arc<dyn TraceSink>,
    /// Pruning slack for the per-level repair pass (see
    /// [`prune_migrations`]).
    pub prune_tolerance: f64,
}

impl DecomposingRebalancer {
    /// A decomposing rebalancer with default solver settings, a 32-process
    /// coarse target, and no telemetry.
    pub fn new(variant: Variant, k: u64) -> Self {
        Self {
            variant,
            k,
            solver: HybridCqmSolver::default(),
            coarse_target: 32,
            label: None,
            sink: Arc::new(NoopSink),
            prune_tolerance: 0.02,
        }
    }

    /// A level sub-rebalancer: the template solver with a private sink, a
    /// level-salted seed, and the anneal-side window frontend enabled (so
    /// a coarse model that still overflows the cap degrades gracefully
    /// instead of erroring).
    fn sub_rebalancer(
        &self,
        level: u64,
        extra_seed_plans: Vec<MigrationMatrix>,
    ) -> Result<QuantumRebalancer, RebalanceError> {
        let solver = self
            .solver
            .to_builder()
            .sink(Arc::new(NoopSink))
            .seed(level_seed(self.solver.seed(), level))
            .decompose(true)
            .build()
            .map_err(|e| RebalanceError::InvalidInstance(format!("sub-solver config: {e}")))?;
        let mut qr = QuantumRebalancer::new(self.variant, self.k);
        qr.solver = solver;
        qr.extra_seed_plans = extra_seed_plans;
        qr.prune_tolerance = self.prune_tolerance;
        Ok(qr)
    }

    /// Whether a level of `m` processes with `n` tasks each fits the
    /// monolithic portfolio (and therefore earns a refinement solve).
    fn fits_monolithic(&self, m: usize, n: u64) -> bool {
        logical_qubits(self.variant, m as u64, n) <= self.solver.tabu_max_vars() as u64
    }
}

impl Rebalancer for DecomposingRebalancer {
    fn name(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| format!("{}+ML(k={})", self.variant.label(), self.k))
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceOutcome, RebalanceError> {
        let started = Instant::now();
        let coarse_target = self.coarse_target.max(2);

        // Phase 1: build the hierarchy. insts[0] is the original;
        // levels[i] coarsens insts[i] into insts[i + 1].
        let mut insts: Vec<Instance> = vec![inst.clone()];
        let mut levels: Vec<CoarseLevel> = Vec::new();
        while insts[levels.len()].num_procs() > coarse_target {
            let lvl = coarsen(&insts[levels.len()]);
            insts.push(lvl.inst.clone());
            levels.push(lvl);
        }
        let depth = levels.len();

        // Phase 2: solve the coarsest level monolithically.
        let mut level_records: Vec<DecompositionLevelRecord> = Vec::new();
        let mut sub_solves = 0usize;
        let mut qpu_total = std::time::Duration::ZERO;

        let coarsest = &insts[depth];
        let t0 = Instant::now();
        let before = imbalance_objective(&coarsest.loads());
        let coarse_out = self
            .sub_rebalancer(depth as u64, Vec::new())?
            .rebalance(coarsest)?;
        sub_solves += 1;
        if let Some(q) = coarse_out.qpu_time {
            qpu_total += q;
        }
        level_records.push(DecompositionLevelRecord {
            level: depth,
            size: logical_qubits(
                self.variant,
                coarsest.num_procs() as u64,
                coarsest.tasks_per_proc(),
            ) as usize,
            solved_vars: logical_qubits(
                self.variant,
                coarsest.num_procs() as u64,
                coarsest.tasks_per_proc(),
            ) as usize,
            objective_before: before,
            objective_after: imbalance_objective(&coarse_out.matrix.new_loads(coarsest)),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        });
        let mut plan = coarse_out.matrix;

        // Phase 3: uncoarsen level by level, repairing or refining.
        for lvl in (0..depth).rev() {
            let t0 = Instant::now();
            let fine = &insts[lvl];
            let mut projected = project_plan(fine, &levels[lvl], &plan, self.k);
            let before = imbalance_objective(&projected.new_loads(fine));

            let (solved_vars, refined) = if self
                .fits_monolithic(fine.num_procs(), fine.tasks_per_proc())
            {
                let out = self
                    .sub_rebalancer(lvl as u64, vec![projected.clone()])?
                    .rebalance(fine)?;
                sub_solves += 1;
                if let Some(q) = out.qpu_time {
                    qpu_total += q;
                }
                let vars =
                    logical_qubits(self.variant, fine.num_procs() as u64, fine.tasks_per_proc());
                // Keep whichever of projection and refinement balances
                // better — the refinement portfolio is free to do worse on
                // a bad day, the projection never is.
                if imbalance_objective(&out.matrix.new_loads(fine)) <= before {
                    (vars as usize, out.matrix)
                } else {
                    (vars as usize, projected)
                }
            } else {
                if fine.num_procs() <= PRUNE_MAX_PROCS {
                    prune_migrations(fine, &mut projected, self.prune_tolerance);
                }
                (0, projected)
            };

            level_records.push(DecompositionLevelRecord {
                level: lvl,
                size: logical_qubits(self.variant, fine.num_procs() as u64, fine.tasks_per_proc())
                    as usize,
                solved_vars,
                objective_before: before,
                objective_after: imbalance_objective(&refined.new_loads(fine)),
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            });
            plan = refined;
        }

        plan.validate(inst)?;
        let runtime = started.elapsed();

        if self.sink.enabled() {
            let final_obj = imbalance_objective(&plan.new_loads(inst));
            let mut record = SolveRecord {
                num_vars: logical_qubits(
                    self.variant,
                    inst.num_procs() as u64,
                    inst.tasks_per_proc(),
                ) as usize,
                compiled_vars: 0,
                requested_reads: self.solver.num_reads(),
                reads: Vec::new(),
                failed_reads: Vec::new(),
                backend_usage: Vec::new(),
                waves: Vec::new(),
                termination: "decomposed".to_string(),
                timing: qlrb_anneal::telemetry::TimingRecord {
                    cpu_ms: runtime.as_secs_f64() * 1e3,
                    qpu_ms: qpu_total.as_secs_f64() * 1e3,
                },
                summary: qlrb_anneal::telemetry::SampleSetSummary {
                    num_samples: 1,
                    num_feasible: 1,
                    best_objective: Some(final_obj),
                    worst_objective: Some(final_obj),
                    objective_spread: Some(0.0),
                    best_feasible_objective: Some(final_obj),
                },
                trace_digest: String::new(),
                decomposition: Some(DecompositionRecord {
                    strategy: "multilevel".to_string(),
                    window_cap: self.solver.tabu_max_vars(),
                    levels: level_records,
                    windows: Vec::new(),
                    sub_solves,
                }),
            };
            qlrb_anneal::telemetry::fingerprint::seal(&mut record);
            self.sink.record_solve(record);
        }

        Ok(RebalanceOutcome {
            matrix: plan,
            runtime,
            qpu_time: Some(qpu_total),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_anneal::telemetry::MemorySink;

    fn skewed_instance(m: usize, n: u64) -> Instance {
        // Deterministic skew: weight grows with the index so roughly a
        // quarter of the processes are heavy.
        let weights: Vec<f64> = (0..m).map(|i| 1.0 + (i % 4) as f64).collect();
        Instance::uniform(n, weights).expect("valid instance")
    }

    fn fast_solver() -> HybridCqmSolver {
        HybridCqmSolver::fast()
            .to_builder()
            .num_reads(2)
            .sweeps(80)
            .seed(7)
            .build()
            .expect("valid config")
    }

    #[test]
    fn coarsening_preserves_total_and_per_merge_load() {
        let fine = skewed_instance(9, 10); // odd: one singleton
        let lvl = coarsen(&fine);
        assert_eq!(lvl.inst.num_procs(), 5);
        assert_eq!(lvl.inst.tasks_per_proc(), 20);
        let fine_loads = fine.loads();
        for (c, &(a, b)) in lvl.children.iter().enumerate() {
            let merged = fine_loads[a] + b.map(|b| fine_loads[b]).unwrap_or(0.0);
            let coarse = lvl.inst.loads()[c];
            assert!(
                (merged - coarse).abs() < 1e-9,
                "coarse {c}: {coarse} != {merged}"
            );
        }
        // Every fine process appears exactly once.
        let mut seen = vec![false; 9];
        for &(a, b) in &lvl.children {
            assert!(!seen[a]);
            seen[a] = true;
            if let Some(b) = b {
                assert!(!seen[b]);
                seen[b] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn projection_is_always_feasible() {
        let fine = skewed_instance(8, 12);
        let lvl = coarsen(&fine);
        // An aggressive coarse plan: shove tasks at the least-loaded
        // super-process from everyone else.
        let mut coarse_plan = MigrationMatrix::identity(&lvl.inst);
        for j in 1..lvl.inst.num_procs() {
            coarse_plan.migrate(j, 0, 5).expect("resident");
        }
        for budget in [0u64, 3, 10, 100] {
            let plan = project_plan(&fine, &lvl, &coarse_plan, budget);
            plan.validate(&fine).expect("projection must validate");
            assert!(plan.num_migrated() <= budget, "budget {budget}");
            // Projection never worsens the makespan past the original.
            let after = fine.stats_after(&plan);
            assert!(after.l_max <= fine.stats().l_max * (1.0 + 1e-9));
        }
    }

    #[test]
    fn coarsen_project_roundtrip_preserves_validity_and_load() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        runner
            .run(
                &(
                    proptest::collection::vec(0.1f64..8.0, 2..24),
                    proptest::collection::vec((0usize..12, 0usize..12, 1u64..6), 0..24),
                    1u64..40,
                ),
                |(weights, moves, budget)| {
                    let fine = Instance::uniform(10, weights).unwrap();
                    let lvl = coarsen(&fine);

                    // Coarsening preserves every merged node's total load
                    // (and with it the global total).
                    let fine_loads = fine.loads();
                    let coarse_loads = lvl.inst.loads();
                    for (c, &(a, b)) in lvl.children.iter().enumerate() {
                        let merged = fine_loads[a] + b.map(|b| fine_loads[b]).unwrap_or(0.0);
                        prop_assert!((coarse_loads[c] - merged).abs() < 1e-6 * (1.0 + merged));
                    }

                    // An arbitrary (possibly aggressive) coarse plan
                    // projects back to a valid, budget-respecting fine plan.
                    let m_c = lvl.inst.num_procs();
                    let mut coarse_plan = MigrationMatrix::identity(&lvl.inst);
                    for (from, to, count) in moves {
                        if from < m_c && to < m_c && from != to {
                            let _ = coarse_plan.migrate(from, to, count);
                        }
                    }
                    let plan = project_plan(&fine, &lvl, &coarse_plan, budget);
                    prop_assert!(plan.validate(&fine).is_ok());
                    prop_assert!(plan.num_migrated() <= budget);
                    // Conservation: the projected loads sum to the input's.
                    let total: f64 = plan.new_loads(&fine).iter().sum();
                    let expect: f64 = fine_loads.iter().sum();
                    prop_assert!((total - expect).abs() < 1e-6 * (1.0 + expect));
                    // Capacity: no receiver past the original makespan.
                    prop_assert!(
                        fine.stats_after(&plan).l_max <= fine.stats().l_max * (1.0 + 1e-9)
                    );
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn multilevel_rebalance_improves_and_respects_budget() {
        let inst = skewed_instance(24, 8);
        let mut dr = DecomposingRebalancer::new(Variant::Reduced, 20);
        dr.solver = fast_solver();
        dr.coarse_target = 6;
        let out = dr.rebalance(&inst).expect("decomposed solve");
        out.matrix.validate(&inst).expect("valid plan");
        assert!(out.matrix.num_migrated() <= 20);
        let after = inst.stats_after(&out.matrix);
        assert!(
            after.imbalance_ratio <= inst.stats().imbalance_ratio,
            "{} !<= {}",
            after.imbalance_ratio,
            inst.stats().imbalance_ratio
        );
    }

    #[test]
    fn multilevel_is_deterministic_and_emits_one_merged_record() {
        let inst = skewed_instance(24, 8);
        let run = || {
            let sink = Arc::new(MemorySink::default());
            let mut dr = DecomposingRebalancer::new(Variant::Reduced, 16);
            dr.solver = fast_solver();
            dr.coarse_target = 6;
            dr.sink = sink.clone();
            let out = dr.rebalance(&inst).expect("decomposed solve");
            (out.matrix, sink.take())
        };
        let (plan_a, recs_a) = run();
        let (plan_b, recs_b) = run();
        assert_eq!(plan_a, plan_b, "same seed, same plan");
        assert_eq!(recs_a.len(), 1, "exactly one merged record");
        assert_eq!(recs_b.len(), 1);
        let (a, b) = (&recs_a[0], &recs_b[0]);
        assert_eq!(a.termination, "decomposed");
        assert_eq!(a.trace_digest, b.trace_digest, "sealed digests agree");
        let d = a.decomposition.as_ref().expect("decomposition attached");
        assert_eq!(d.strategy, "multilevel");
        assert!(d.sub_solves >= 1);
        // Levels cover coarsest..=0, coarsest first.
        assert!(d.levels.len() >= 2);
        assert_eq!(d.levels.last().expect("levels non-empty").level, 0);
    }

    #[test]
    fn small_instances_skip_coarsening_entirely() {
        let inst = skewed_instance(4, 6);
        let mut dr = DecomposingRebalancer::new(Variant::Reduced, 6);
        dr.solver = fast_solver();
        let out = dr.rebalance(&inst).expect("plain solve");
        out.matrix.validate(&inst).expect("valid plan");
    }

    #[test]
    fn name_mentions_the_multilevel_frontend() {
        let dr = DecomposingRebalancer::new(Variant::Reduced, 3);
        assert_eq!(dr.name(), "Q_CQM1+ML(k=3)");
        let mut dr = dr;
        dr.label = Some("Q_CQM1_ML".into());
        assert_eq!(dr.name(), "Q_CQM1_ML");
    }
}
