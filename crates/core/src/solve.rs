//! The end-to-end hybrid classical-quantum rebalancing workflow.
//!
//! Mirrors the paper's pipeline: build the CQM for a chosen migration budget
//! `k`, hand it to the hybrid solver (with classical candidate states as
//! seeds, playing the role of Leap's classical frontend), and decode the best
//! feasible sample into a validated [`MigrationMatrix`].

use qlrb_anneal::hybrid::{HybridCqmSolver, SolveError};

use crate::algorithm::{RebalanceOutcome, Rebalancer};
use crate::cqm::{logical_qubits, LrpCqm, Variant};
use crate::error::RebalanceError;
use crate::instance::Instance;
use crate::migration::MigrationMatrix;

/// A hybrid classical-quantum rebalancer: one of the paper's `Q_CQM*_k*`
/// methods, parameterized by formulation variant and migration budget.
#[derive(Debug, Clone)]
pub struct QuantumRebalancer {
    /// Formulation: `Q_CQM1` (reduced) or `Q_CQM2` (full).
    pub variant: Variant,
    /// Migration budget `k` (at most this many tasks move).
    pub k: u64,
    /// The underlying hybrid solver configuration.
    pub solver: HybridCqmSolver,
    /// Optional display label (e.g. `"Q_CQM1_k1"`); defaults to
    /// `"<variant>(k=<k>)"`.
    pub label: Option<String>,
    /// Additional warm-start plans (e.g. the classical methods' solutions —
    /// the paper runs them first anyway to derive `k1`/`k2`, and Leap-style
    /// hybrid solvers accept classical candidates). Plans whose migration
    /// count exceeds `k` are skipped as infeasible seeds.
    pub extra_seed_plans: Vec<MigrationMatrix>,
    /// Relative objective slack granted to the migration-pruning
    /// post-process (see [`prune_migrations`]): redundant migrations are
    /// undone as long as the imbalance objective worsens by at most this
    /// fraction. `0.0` disables pruning.
    pub prune_tolerance: f64,
    /// Soft per-migration objective charge `μ` (see
    /// [`crate::cqm::LrpCqm::add_migration_penalty`]); `0.0` keeps the
    /// paper's pure hard-budget formulation.
    pub migration_penalty: f64,
}

impl QuantumRebalancer {
    /// A rebalancer with default solver settings.
    pub fn new(variant: Variant, k: u64) -> Self {
        Self {
            variant,
            k,
            solver: HybridCqmSolver::default(),
            label: None,
            extra_seed_plans: Vec::new(),
            prune_tolerance: 0.02,
            migration_penalty: 0.0,
        }
    }

    /// Sets the display label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Builds the classical candidate plans used to seed the solver: the
    /// identity (always feasible, even at `k = 0`) and a greedy
    /// peak-shaving construction that respects the budget.
    fn seed_plans(&self, inst: &Instance) -> Vec<MigrationMatrix> {
        let mut seeds = vec![
            MigrationMatrix::identity(inst),
            greedy_seed_plan(inst, self.k),
        ];
        seeds.extend(
            self.extra_seed_plans
                .iter()
                .filter(|p| p.num_migrated() <= self.k && p.validate(inst).is_ok())
                .cloned(),
        );
        seeds
    }

    /// Rebalances against a pre-built base formulation, rewriting only the
    /// budget right-hand side (see [`LrpCqm::with_budget`]). This lets the
    /// `k1`/`k2` budget variants of one `Q_CQM*` formulation share a single
    /// compiled CQM instead of rebuilding the objective per budget.
    ///
    /// `base` must have been built from `inst` with this rebalancer's
    /// variant; mismatches return [`RebalanceError::InvalidInstance`].
    pub fn rebalance_with_base(
        &self,
        inst: &Instance,
        base: &LrpCqm,
    ) -> Result<RebalanceOutcome, RebalanceError> {
        if base.variant != self.variant {
            return Err(RebalanceError::InvalidInstance(format!(
                "base CQM is {:?}, rebalancer wants {:?}",
                base.variant, self.variant
            )));
        }
        if base.num_procs() != inst.num_procs() || base.tasks_per_proc() != inst.tasks_per_proc() {
            return Err(RebalanceError::InvalidInstance(
                "base CQM was built from a different instance".into(),
            ));
        }
        self.rebalance_prebuilt(inst, base.with_budget(self.k))
    }

    /// Shared solve/decode tail for [`Rebalancer::rebalance`] and
    /// [`Self::rebalance_with_base`]: applies the optional migration
    /// penalty, seeds, solves, and decodes the best feasible sample.
    fn rebalance_prebuilt(
        &self,
        inst: &Instance,
        mut lrp: LrpCqm,
    ) -> Result<RebalanceOutcome, RebalanceError> {
        if self.migration_penalty > 0.0 {
            lrp.add_migration_penalty(self.migration_penalty);
        }
        let seeds: Vec<Vec<u8>> = self
            .seed_plans(inst)
            .iter()
            .filter_map(|p| lrp.encode_plan(p).ok())
            .collect();
        let set = self
            .solver
            .solve_checked(&lrp.cqm, &seeds)
            .map_err(|e| match e {
                SolveError::Rejected(r) => RebalanceError::ModelRejected(r.report.render()),
                SolveError::TooLarge(t) => RebalanceError::ModelTooLarge {
                    vars: t.vars as u64,
                    cap: t.cap as u64,
                },
            })?;

        for sample in &set.samples {
            if !sample.feasible {
                continue;
            }
            let Ok(matrix) = lrp.decode(&sample.state) else {
                continue;
            };
            if matrix.validate(inst).is_ok() {
                let mut matrix = matrix;
                if self.prune_tolerance > 0.0 {
                    prune_migrations(inst, &mut matrix, self.prune_tolerance);
                }
                return Ok(RebalanceOutcome {
                    matrix,
                    runtime: set.timing.cpu,
                    qpu_time: Some(set.timing.qpu),
                });
            }
        }
        // The identity seed is feasible by construction, so reaching this
        // point means the solver degraded every read; fall back explicitly
        // rather than failing the experiment.
        Ok(RebalanceOutcome {
            matrix: MigrationMatrix::identity(inst),
            runtime: set.timing.cpu,
            qpu_time: Some(set.timing.qpu),
        })
    }
}

impl Rebalancer for QuantumRebalancer {
    fn name(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| format!("{}(k={})", self.variant.label(), self.k))
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceOutcome, RebalanceError> {
        // Size precheck *before* model construction: the paper-exact qubit
        // count is known in closed form, so an instance the monolithic
        // portfolio would refuse fails here in O(1) instead of after the
        // (possibly gigabyte-scale) CQM build. Mirrors the solver's own
        // width guard: only tabu-carrying portfolios are capped, and the
        // decomposition frontend lifts the ceiling.
        let vars = logical_qubits(self.variant, inst.num_procs() as u64, inst.tasks_per_proc());
        let cap = self.solver.tabu_max_vars() as u64;
        let has_tabu = self
            .solver
            .samplers()
            .contains(&qlrb_anneal::hybrid::SamplerKind::Tabu);
        if vars > cap && has_tabu && !self.solver.decomposes() {
            return Err(RebalanceError::ModelTooLarge { vars, cap });
        }
        let lrp = LrpCqm::build(inst, self.variant, self.k)?;
        self.rebalance_prebuilt(inst, lrp)
    }
}

/// Greedy deficit-capped peak shaving under a migration budget — the
/// "classical frontend" candidate the hybrid solver starts from; annealing
/// then explores around it.
///
/// Every donor above the average sheds whole tasks toward the processes
/// with the largest deficits, never pushing a receiver past the average and
/// never spending more than `k` moves in total. (Receiver capping matters:
/// without it a single 64×-heavy task class can bury a light node far above
/// the average and the seed is worse than useless.)
pub fn greedy_seed_plan(inst: &Instance, k: u64) -> MigrationMatrix {
    let m = inst.num_procs();
    let loads = inst.loads();
    let l_avg = loads.iter().sum::<f64>() / m as f64;
    let mut plan = MigrationMatrix::identity(inst);
    let mut budget = k;

    let mut donors: Vec<usize> = (0..m).filter(|&i| loads[i] > l_avg).collect();
    donors.sort_by(|&a, &b| loads[b].total_cmp(&loads[a]));
    let mut deficits: Vec<(usize, f64)> = (0..m)
        .filter(|&j| loads[j] < l_avg)
        .map(|j| (j, l_avg - loads[j]))
        .collect();
    deficits.sort_by(|a, b| b.1.total_cmp(&a.1));

    for &i in &donors {
        if budget == 0 {
            break;
        }
        let w = inst.weights()[i];
        if w <= 0.0 {
            continue;
        }
        let mut to_shed = (((loads[i] - l_avg) / w).floor() as u64)
            .min(inst.tasks_per_proc())
            .min(budget);
        for entry in deficits.iter_mut() {
            if to_shed == 0 {
                break;
            }
            // Round (overshoot ≤ w/2): still strictly below the donor's
            // original load, since donors only shed when ≥ w above average.
            let take = ((entry.1 / w + 0.5).floor() as u64).min(to_shed);
            if take == 0 {
                continue;
            }
            plan.migrate(i, entry.0, take)
                .expect("bounded by resident tasks"); // qlrb-lint: allow(no-unwrap)
            entry.1 -= take as f64 * w;
            to_shed -= take;
            budget -= take;
        }
    }
    plan
}

/// Migration-pruning post-process: undoes migrations that barely help.
///
/// Classical cleanup of the kind Leap-style hybrid solvers apply to raw
/// samples. For each off-diagonal entry the pass tries to return tasks to
/// their origin (largest batch first, halving on rejection), accepting a
/// reduction when
///
/// * the origin process stays at or below the instance's original `L_max`
///   (the CQM capacity constraint), and
/// * the imbalance objective `Σ (L_i − L_avg)²` stays within
///   `(1 + rel_tol)` of its value *before pruning started*.
///
/// Returns the number of migrations removed. The budget constraint can only
/// get slacker (migrations are strictly removed), so a valid plan stays
/// valid.
pub fn prune_migrations(inst: &Instance, plan: &mut MigrationMatrix, rel_tol: f64) -> u64 {
    let m = inst.num_procs();
    let w = inst.weights();
    let stats = inst.stats();
    let (l_max0, l_avg) = (stats.l_max, stats.l_avg);
    let mut loads = plan.new_loads(inst);
    let objective =
        |loads: &[f64]| -> f64 { loads.iter().map(|l| (l - l_avg) * (l - l_avg)).sum() };
    let mut current = objective(&loads);
    // Fixed budget: tolerance is relative to the *incoming* solution, with a
    // small absolute floor so perfectly balanced plans can still shed
    // strictly-redundant moves.
    let allowance = current * (1.0 + rel_tol.max(0.0)) + 1e-12;
    let cap = l_max0 * (1.0 + 1e-12) + 1e-12;

    let mut removed = 0u64;
    loop {
        let mut improved = false;
        for i in 0..m {
            for j in 0..m {
                if i == j || plan.get(i, j) == 0 || w[j] <= 0.0 {
                    continue;
                }
                let mut r = plan.get(i, j);
                while r >= 1 {
                    let new_li = loads[i] - r as f64 * w[j];
                    let new_lj = loads[j] + r as f64 * w[j];
                    let new_obj = current - (loads[i] - l_avg).powi(2) - (loads[j] - l_avg).powi(2)
                        + (new_li - l_avg).powi(2)
                        + (new_lj - l_avg).powi(2);
                    if new_lj <= cap && new_obj <= allowance {
                        plan.set(i, j, plan.get(i, j) - r);
                        plan.set(j, j, plan.get(j, j) + r);
                        loads[i] = new_li;
                        loads[j] = new_lj;
                        current = new_obj;
                        removed += r;
                        improved = true;
                        break;
                    }
                    r /= 2;
                }
            }
        }
        if !improved {
            break;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_anneal::hybrid::HybridCqmSolver;

    fn small_inst() -> Instance {
        // Loads 10, 20, 40 → L_avg = 23.3, L_max = 40.
        Instance::uniform(10, vec![1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn greedy_seed_respects_budget_and_improves() {
        let inst = small_inst();
        for k in [0u64, 1, 3, 10, 100] {
            let plan = greedy_seed_plan(&inst, k);
            plan.validate(&inst).unwrap();
            assert!(plan.num_migrated() <= k, "k = {k}");
            let after = inst.stats_after(&plan);
            assert!(after.l_max <= inst.stats().l_max + 1e-9, "k = {k}");
        }
        // With a generous budget the seed meaningfully reduces imbalance.
        let plan = greedy_seed_plan(&inst, 100);
        assert!(inst.stats_after(&plan).imbalance_ratio < inst.stats().imbalance_ratio / 2.0);
    }

    #[test]
    fn quantum_rebalancer_produces_valid_improving_plan() {
        let inst = small_inst();
        for variant in [Variant::Reduced, Variant::Full] {
            let qr = QuantumRebalancer {
                variant,
                k: 10,
                solver: HybridCqmSolver::builder()
                    .num_reads(4)
                    .sweeps(300)
                    .seed(3)
                    .build()
                    .unwrap(),
                label: None,
                extra_seed_plans: Vec::new(),
                prune_tolerance: 0.02,
                migration_penalty: 0.0,
            };
            let out = qr.rebalance(&inst).unwrap();
            out.matrix.validate(&inst).unwrap();
            assert!(out.matrix.num_migrated() <= 10, "{variant:?}");
            let after = inst.stats_after(&out.matrix);
            assert!(
                after.imbalance_ratio < inst.stats().imbalance_ratio,
                "{variant:?}: {} !< {}",
                after.imbalance_ratio,
                inst.stats().imbalance_ratio
            );
            assert!(out.qpu_time.is_some());
        }
    }

    #[test]
    fn zero_budget_returns_identity() {
        let inst = small_inst();
        let qr = QuantumRebalancer {
            variant: Variant::Full,
            k: 0,
            solver: HybridCqmSolver::builder()
                .num_reads(2)
                .sweeps(100)
                .build()
                .unwrap(),
            label: None,
            extra_seed_plans: Vec::new(),
            prune_tolerance: 0.02,
            migration_penalty: 0.0,
        };
        let out = qr.rebalance(&inst).unwrap();
        assert_eq!(out.matrix.num_migrated(), 0);
        out.matrix.validate(&inst).unwrap();
    }

    #[test]
    fn pruning_removes_pointless_migrations() {
        // A plan that shuffles two tasks between the equal-weight processes
        // 0 ↔ 1 for no benefit, on top of a useful move from process 2.
        let inst = small_inst();
        let mut plan = MigrationMatrix::identity(&inst);
        plan.migrate(0, 1, 2).unwrap();
        plan.migrate(1, 0, 2).unwrap();
        plan.migrate(2, 0, 4).unwrap();
        let before_obj: f64 = {
            let avg = inst.stats().l_avg;
            plan.new_loads(&inst)
                .iter()
                .map(|l| (l - avg).powi(2))
                .sum()
        };
        let before = plan.num_migrated();
        let removed = prune_migrations(&inst, &mut plan, 0.02);
        plan.validate(&inst).unwrap();
        assert!(
            removed >= 4,
            "the 0↔1 shuffle is free to undo: removed {removed}"
        );
        assert_eq!(plan.num_migrated(), before - removed);
        let after_obj: f64 = {
            let avg = inst.stats().l_avg;
            plan.new_loads(&inst)
                .iter()
                .map(|l| (l - avg).powi(2))
                .sum()
        };
        assert!(after_obj <= before_obj * 1.02 + 1e-9);
        // The useful move from the overloaded process survives.
        assert!(plan.get(0, 2) > 0);
    }

    #[test]
    fn pruning_respects_capacity() {
        // Returning tasks to the heavy donor would push it back above
        // L_max — pruning must refuse.
        let inst = small_inst(); // loads 10, 20, 40; L_max = 40
        let mut plan = MigrationMatrix::identity(&inst);
        plan.migrate(2, 0, 4).unwrap(); // loads: 26, 20, 24 — balanced-ish
        let removed = prune_migrations(&inst, &mut plan, 0.0);
        assert_eq!(removed, 0, "undoing would blow the objective budget");
        // Even with generous tolerance the capacity bound keeps the donor
        // at or below the original L_max.
        let mut plan2 = plan.clone();
        prune_migrations(&inst, &mut plan2, 1e9);
        let l_max = inst.stats_after(&plan2).l_max;
        assert!(l_max <= inst.stats().l_max + 1e-6, "L_max = {l_max}");
    }

    #[test]
    fn pruning_identity_is_noop() {
        let inst = small_inst();
        let mut plan = MigrationMatrix::identity(&inst);
        assert_eq!(prune_migrations(&inst, &mut plan, 0.5), 0);
        assert_eq!(plan, MigrationMatrix::identity(&inst));
    }

    #[test]
    fn rebalance_with_base_matches_fresh_build() {
        // Sharing one compiled base across budgets must be observationally
        // identical to rebuilding the CQM per budget.
        let inst = small_inst();
        let base = LrpCqm::build(&inst, Variant::Reduced, 0).unwrap();
        for k in [2u64, 10] {
            let qr = QuantumRebalancer {
                variant: Variant::Reduced,
                k,
                solver: HybridCqmSolver::builder()
                    .num_reads(3)
                    .sweeps(200)
                    .seed(17)
                    .build()
                    .unwrap(),
                label: None,
                extra_seed_plans: Vec::new(),
                prune_tolerance: 0.02,
                migration_penalty: 0.0,
            };
            let fresh = qr.rebalance(&inst).unwrap();
            let shared = qr.rebalance_with_base(&inst, &base).unwrap();
            assert_eq!(fresh.matrix, shared.matrix, "k = {k}");
        }
    }

    #[test]
    fn rebalance_with_base_rejects_variant_mismatch() {
        let inst = small_inst();
        let base = LrpCqm::build(&inst, Variant::Full, 5).unwrap();
        let qr = QuantumRebalancer::new(Variant::Reduced, 5);
        assert!(qr.rebalance_with_base(&inst, &base).is_err());
    }

    #[test]
    fn name_defaults_and_labels() {
        let qr = QuantumRebalancer::new(Variant::Reduced, 7);
        assert_eq!(qr.name(), "Q_CQM1(k=7)");
        let qr = qr.labeled("Q_CQM1_k1");
        assert_eq!(qr.name(), "Q_CQM1_k1");
    }

    #[test]
    fn pruning_preserves_validity_on_random_plans() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        runner
            .run(
                &(
                    proptest::collection::vec(0.1f64..10.0, 2..6),
                    proptest::collection::vec((0usize..6, 0usize..6, 1u64..8), 0..20),
                    0.0f64..0.5,
                ),
                |(weights, moves, tol)| {
                    let m = weights.len();
                    let inst = Instance::uniform(20, weights).unwrap();
                    let mut plan = MigrationMatrix::identity(&inst);
                    for (from, to, count) in moves {
                        if from < m && to < m {
                            let _ = plan.migrate(from, to, count);
                        }
                    }
                    let before = plan.num_migrated();
                    prune_migrations(&inst, &mut plan, tol);
                    prop_assert!(plan.validate(&inst).is_ok());
                    prop_assert!(plan.num_migrated() <= before, "pruning only removes");
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn oversized_instance_fails_fast_with_model_too_large() {
        // Reduced at m=16, n=10 allocates 16·15·4 = 960 logical qubits;
        // capping the solver at 200 must produce the structured size error
        // without ever building the CQM, and the decomposition frontend
        // must lift the ceiling on the identical configuration.
        let inst = Instance::uniform(10, vec![1.0; 16]).unwrap();
        let solver = HybridCqmSolver::builder()
            .num_reads(2)
            .sweeps(60)
            .seed(11)
            .tabu_max_vars(200)
            .build()
            .unwrap();
        let mut qr = QuantumRebalancer::new(Variant::Reduced, 4);
        qr.solver = solver.clone();
        match qr.rebalance(&inst) {
            Err(RebalanceError::ModelTooLarge { vars, cap }) => {
                assert_eq!(vars, 960);
                assert_eq!(cap, 200);
            }
            other => panic!("expected ModelTooLarge, got {other:?}"),
        }

        qr.solver = solver.to_builder().decompose(true).build().unwrap();
        let out = qr.rebalance(&inst).unwrap();
        out.matrix.validate(&inst).unwrap();
        assert!(out.matrix.num_migrated() <= 4);
    }

    #[test]
    fn deny_mode_solver_accepts_built_lrp_models() {
        // The harness runs with LintMode::Deny; every model produced by
        // LrpCqm::build must sail through the lint gate.
        use qlrb_anneal::hybrid::LintMode;
        let inst = small_inst();
        for variant in [Variant::Reduced, Variant::Full] {
            let qr = QuantumRebalancer {
                variant,
                k: 10,
                solver: HybridCqmSolver::builder()
                    .num_reads(2)
                    .sweeps(100)
                    .lint(LintMode::Deny)
                    .build()
                    .unwrap(),
                label: None,
                extra_seed_plans: Vec::new(),
                prune_tolerance: 0.02,
                migration_penalty: 0.0,
            };
            let out = qr.rebalance(&inst).unwrap();
            out.matrix.validate(&inst).unwrap();
        }
    }

    #[test]
    fn balanced_instance_needs_no_migrations() {
        let inst = Instance::uniform(8, vec![2.0, 2.0, 2.0, 2.0]).unwrap();
        let qr = QuantumRebalancer {
            variant: Variant::Reduced,
            k: 20,
            solver: HybridCqmSolver::builder()
                .num_reads(3)
                .sweeps(200)
                .build()
                .unwrap(),
            label: None,
            extra_seed_plans: Vec::new(),
            prune_tolerance: 0.02,
            migration_penalty: 0.0,
        };
        let out = qr.rebalance(&inst).unwrap();
        // Already balanced: the optimum objective is 0 with zero migrations;
        // any solution it returns must keep R_imb at 0.
        assert_eq!(inst.stats_after(&out.matrix).imbalance_ratio, 0.0);
    }
}
