#![forbid(unsafe_code)]
//! # qlrb-core — the Load Rebalancing Problem and its quantum formulations
//!
//! This crate is the paper's primary contribution, as a library:
//!
//! * [`instance::Instance`] — the LRP input: `N = n·M` tasks on `M`
//!   processes, one (uniform) task weight per process, exactly the model of
//!   the paper's §IV and artifact appendix (Table VI).
//! * [`migration::MigrationMatrix`] — a rebalancing solution: `x[i][j]` =
//!   tasks moved **to** process `i` **from** process `j` (diagonal = tasks
//!   that stay), with conservation validation and all derived metrics.
//! * [`metrics`] — `L_max`, `L_avg`, the imbalance ratio
//!   `R_imb = (L_max − L_avg)/L_avg`, and speedup.
//! * [`cqm`] — the two constrained-quadratic-model formulations:
//!   **Q_CQM1** (qubit-reduced, all-inequality constraints) and **Q_CQM2**
//!   (full, `M` equalities + `M+1` inequalities), with sample decoding and
//!   logical-qubit accounting (paper Table I).
//! * [`solve::QuantumRebalancer`] — the end-to-end hybrid workflow: build
//!   the CQM, seed the hybrid solver with classical candidates, decode the
//!   best feasible sample into a validated migration plan.
//! * [`decompose::DecomposingRebalancer`] — the multilevel
//!   coarsen/solve/uncoarsen frontend that lifts the monolithic size
//!   ceiling to thousands of processes (`qlrb rebalance --decompose`).
//! * [`io`] — the artifact's CSV input/output formats (Tables VI/VII).
//!
//! Classical baselines (Greedy, KK, ProactLB) live in `qlrb-classical`, and
//! implement the same [`algorithm::Rebalancer`] trait, so the experiment
//! harness treats all seven methods of the paper uniformly.

pub mod algorithm;
pub mod cqm;
pub mod decompose;
pub mod error;
pub mod general;
pub mod instance;
pub mod io;
pub mod metrics;
pub mod migration;
pub mod solve;

pub use algorithm::{RebalanceOutcome, Rebalancer};
pub use cqm::{lint_lrp, lint_lrp_with_penalty, LrpCqm, Variant};
pub use decompose::{coarsen, project_plan, CoarseLevel, DecomposingRebalancer};
pub use error::RebalanceError;
pub use instance::Instance;
pub use metrics::ImbalanceStats;
pub use migration::MigrationMatrix;
pub use solve::QuantumRebalancer;
