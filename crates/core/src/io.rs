//! The artifact's CSV input/output formats (paper appendix, Tables VI/VII).
//!
//! * **Input** (`Table VI`): one row per process; columns `P1..PM` hold the
//!   assignment-count matrix (initially diagonal `n`), then `w` (per-task
//!   weight) and `L` (total load).
//! * **Output** (`Table VII`): one row per (destination) process; columns
//!   `P1..PM` hold the migration matrix `x[i][j]`, then the cross-check
//!   columns `num_total`, `num_local`, `num_remote` and the new load `L`.
//!
//! The parsers are hand-rolled (the formats are tiny and fixed) and accept
//! exactly what the writers emit, so round-trips are lossless up to float
//! formatting.

use std::fmt::Write as _;

use crate::error::RebalanceError;
use crate::instance::Instance;
use crate::migration::MigrationMatrix;

/// Serializes an instance in the paper's input CSV format.
#[allow(clippy::needless_range_loop)] // indexed loops here touch several parallel arrays
pub fn write_input_csv(inst: &Instance) -> String {
    let m = inst.num_procs();
    let mut out = String::new();
    out.push_str("Process");
    for j in 0..m {
        let _ = write!(out, ",P{}", j + 1);
    }
    out.push_str(",w,L\n");
    let loads = inst.loads();
    for i in 0..m {
        let _ = write!(out, "P{}", i + 1);
        for j in 0..m {
            let count = if i == j { inst.tasks_per_proc() } else { 0 };
            let _ = write!(out, ",{count}");
        }
        let _ = writeln!(out, ",{},{}", inst.weights()[i], loads[i]);
    }
    out
}

/// Parses the paper's input CSV format back into an instance.
///
/// The assignment matrix must be diagonal (an *input* describes the state
/// before rebalancing) with a uniform diagonal value `n`.
pub fn read_input_csv(csv: &str) -> Result<Instance, RebalanceError> {
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| RebalanceError::Io("empty input".into()))?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() < 4 || cols[0] != "Process" {
        return Err(RebalanceError::Io(format!("unrecognized header: {header}")));
    }
    let m = cols.len() - 3; // Process, P1..PM, w, L
    let mut n: Option<u64> = None;
    let mut weights = Vec::with_capacity(m);
    for (i, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != m + 3 {
            return Err(RebalanceError::Io(format!(
                "row {i}: expected {} fields, got {}",
                m + 3,
                fields.len()
            )));
        }
        for (j, f) in fields[1..=m].iter().enumerate() {
            let count: u64 = f
                .trim()
                .parse()
                .map_err(|_| RebalanceError::Io(format!("row {i}: bad count '{f}'")))?;
            if i == j {
                match n {
                    None => n = Some(count),
                    Some(prev) if prev != count => {
                        return Err(RebalanceError::Io(format!(
                            "non-uniform diagonal: {prev} vs {count}"
                        )))
                    }
                    _ => {}
                }
            } else if count != 0 {
                return Err(RebalanceError::Io(format!(
                    "row {i}: off-diagonal count {count}; inputs must be diagonal"
                )));
            }
        }
        let w: f64 = fields[m + 1]
            .trim()
            .parse()
            .map_err(|_| RebalanceError::Io(format!("row {i}: bad weight")))?;
        weights.push(w);
    }
    if weights.len() != m {
        return Err(RebalanceError::Io(format!(
            "expected {m} process rows, got {}",
            weights.len()
        )));
    }
    let n = n.ok_or_else(|| RebalanceError::Io("no process rows".into()))?;
    Instance::uniform(n, weights)
}

/// Serializes a migration plan in the paper's output CSV format.
#[allow(clippy::needless_range_loop)] // indexed loops here touch several parallel arrays
pub fn write_output_csv(inst: &Instance, plan: &MigrationMatrix) -> String {
    let m = plan.num_procs();
    let mut out = String::new();
    out.push_str("Process");
    for j in 0..m {
        let _ = write!(out, ",P{}", j + 1);
    }
    out.push_str(",num_total,num_local,num_remote,L\n");
    let loads = plan.new_loads(inst);
    for i in 0..m {
        let _ = write!(out, "P{}", i + 1);
        for j in 0..m {
            let _ = write!(out, ",{}", plan.get(i, j));
        }
        let total = plan.tasks_on(i);
        let local = plan.get(i, i);
        let _ = writeln!(out, ",{total},{local},{},{}", total - local, loads[i]);
    }
    out
}

/// Parses the output CSV format back into a migration matrix (the
/// cross-check and load columns are verified, not just skipped).
pub fn read_output_csv(csv: &str) -> Result<MigrationMatrix, RebalanceError> {
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| RebalanceError::Io("empty output".into()))?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() < 6 || cols[0] != "Process" {
        return Err(RebalanceError::Io(format!("unrecognized header: {header}")));
    }
    let m = cols.len() - 5; // Process, P1..PM, num_total, num_local, num_remote, L
    let mut rows: Vec<u64> = Vec::with_capacity(m * m);
    for (i, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != m + 5 {
            return Err(RebalanceError::Io(format!(
                "row {i}: expected {} fields, got {}",
                m + 5,
                fields.len()
            )));
        }
        let mut row_total = 0u64;
        for f in &fields[1..=m] {
            let count: u64 = f
                .trim()
                .parse()
                .map_err(|_| RebalanceError::Io(format!("row {i}: bad count '{f}'")))?;
            row_total += count;
            rows.push(count);
        }
        let declared: u64 = fields[m + 1]
            .trim()
            .parse()
            .map_err(|_| RebalanceError::Io(format!("row {i}: bad num_total")))?;
        if declared != row_total {
            return Err(RebalanceError::Io(format!(
                "row {i}: num_total {declared} != row sum {row_total}"
            )));
        }
    }
    MigrationMatrix::from_rows(m, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_instance() -> Instance {
        // Table VI exactly.
        Instance::uniform(100, vec![1.87, 1.97, 14.86, 103.23]).unwrap()
    }

    #[test]
    fn input_roundtrip() {
        let inst = paper_instance();
        let csv = write_input_csv(&inst);
        assert!(csv.starts_with("Process,P1,P2,P3,P4,w,L"));
        let back = read_input_csv(&csv).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn output_roundtrip_table7() {
        let inst = paper_instance();
        let mut plan = MigrationMatrix::identity(&inst);
        for from in 0..4 {
            for to in 0..4 {
                if from != to {
                    plan.migrate(from, to, 25).unwrap();
                }
            }
        }
        let csv = write_output_csv(&inst, &plan);
        // Spot-check the paper's row shape: "P1,25,25,25,25,100,25,75,<L>".
        let line1 = csv.lines().nth(1).unwrap();
        assert!(line1.starts_with("P1,25,25,25,25,100,25,75,"));
        let back = read_output_csv(&csv).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn input_rejects_off_diagonal() {
        let csv = "Process,P1,P2,w,L\nP1,5,1,1.0,5.0\nP2,0,5,2.0,10.0\n";
        assert!(read_input_csv(csv).is_err());
    }

    #[test]
    fn input_rejects_ragged_rows() {
        let csv = "Process,P1,P2,w,L\nP1,5,0,1.0\n";
        assert!(read_input_csv(csv).is_err());
    }

    #[test]
    fn output_rejects_inconsistent_cross_check() {
        let csv = "Process,P1,P2,num_total,num_local,num_remote,L\n\
                   P1,3,2,99,3,2,7.0\nP2,2,3,5,3,2,8.0\n";
        let err = read_output_csv(csv).unwrap_err();
        assert!(err.to_string().contains("num_total"));
    }

    #[test]
    fn empty_inputs_error() {
        assert!(read_input_csv("").is_err());
        assert!(read_output_csv("\n\n").is_err());
    }
}
