//! Property tests tying the static analyzer to the compilation pipeline:
//! every `LrpCqm` the builder produces is lint-clean, compiles to a CSR
//! model with finite energies, and round-trips plans through
//! `encode_plan`/`decode`.

use proptest::prelude::*;
use qlrb_core::{lint_lrp, Instance, LrpCqm, MigrationMatrix, Variant};
use qlrb_model::eval::CompiledCqm;
use qlrb_model::{CqmEvaluator, PenaltyConfig, PenaltyStyle};

fn build_instance(m: usize, n: u64, weights: &[f64]) -> Instance {
    let w: Vec<f64> = (0..m).map(|i| weights[i % weights.len()]).collect();
    Instance::uniform(n, w).expect("generated parameters are valid")
}

fn variant_from(full: bool) -> Variant {
    if full {
        Variant::Full
    } else {
        Variant::Reduced
    }
}

proptest! {
    #[test]
    fn built_models_are_lint_clean_and_compile_finite(
        m in 2usize..5,
        n in 1u64..12,
        weights in proptest::collection::vec(0.25f64..16.0, 1..5),
        full in 0u8..2,
        k in 0u64..40,
    ) {
        let inst = build_instance(m, n, &weights);
        let lrp = LrpCqm::build(&inst, variant_from(full == 1), k).unwrap();

        // Lint-clean by construction: the builder references every variable,
        // keeps bounds satisfiable, and matches the paper's qubit budget.
        let report = lint_lrp(&lrp);
        prop_assert!(!report.has_errors(), "{}", report.render());

        // The auto-derived penalty clears the analyzer's provable bound, and
        // CSR compilation stays inside exact-f64 coefficient range: energies
        // are finite for the empty state and for an encoded identity plan.
        let penalty = PenaltyConfig::auto(&lrp.cqm, 2.0, PenaltyStyle::default());
        let compiled = CompiledCqm::compile(&lrp.cqm, penalty);
        let zeros = vec![0u8; lrp.cqm.num_vars()];
        let ev = CqmEvaluator::with_state(compiled.clone(), &zeros);
        prop_assert!(ev.objective().is_finite());
        prop_assert!(ev.total_violation().is_finite());

        let state = lrp.encode_plan(&MigrationMatrix::identity(&inst)).unwrap();
        let ev = CqmEvaluator::with_state(compiled, &state);
        prop_assert!(ev.objective().is_finite());
        prop_assert!(ev.total_violation().is_finite());
    }

    #[test]
    fn plans_round_trip_through_the_encoding(
        m in 2usize..5,
        n in 1u64..12,
        weights in proptest::collection::vec(0.25f64..16.0, 1..5),
        full in 0u8..2,
        moves in proptest::collection::vec((0usize..4, 0usize..4, 1u64..4), 0..6),
    ) {
        let inst = build_instance(m, n, &weights);
        let mut plan = MigrationMatrix::identity(&inst);
        for (from, to, count) in moves {
            let (from, to) = (from % m, to % m);
            if from != to {
                // Over-draining a process is rejected; skip those moves.
                let _ = plan.migrate(from, to, count);
            }
        }
        let lrp = LrpCqm::build(&inst, variant_from(full == 1), plan.num_migrated()).unwrap();
        let state = lrp.encode_plan(&plan).unwrap();
        let decoded = lrp.decode(&state).unwrap();
        prop_assert_eq!(decoded, plan);
    }
}
