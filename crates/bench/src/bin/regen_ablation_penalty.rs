//! Ablation: inequality-penalty encodings (violation-quadratic vs
//! unbalanced penalization vs slack variables) on Q_CQM1.
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::ablations::penalty_ablation(&cfg);
    qlrb_bench::emit(&exp, false);
}
