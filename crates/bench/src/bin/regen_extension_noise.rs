//! Extension: robustness of plans to task-time noise (incorrect cost model).
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::extensions::noise_robustness(&cfg);
    qlrb_bench::emit(&exp, false);
}
