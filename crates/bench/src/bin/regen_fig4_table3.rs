//! Regenerates Fig. 4 (imbalance + speedup vs node count) and Table III
//! (total migrated tasks per scale).
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::varied_procs(&cfg);
    qlrb_bench::emit(&exp, true);
}
