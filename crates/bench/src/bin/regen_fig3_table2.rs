//! Regenerates Fig. 3 (imbalance ratio + speedup across five imbalance
//! levels) and Table II (average migration counts and runtimes).
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::varied_imbalance(&cfg);
    qlrb_bench::emit(&exp, true);

    // Table II: averages over the five cases.
    println!("== table2 — Averages over the 5 imbalance cases ==");
    println!(
        "{:<14} {:>16} {:>18} {:>14} {:>10}",
        "Algorithm", "# total mig (avg)", "# mig/proc (avg)", "Runtime(ms)", "QPU(ms)"
    );
    for r in exp.averages() {
        let qpu = r
            .qpu_ms
            .map(|q| format!("{q:.1}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<14} {:>16.1} {:>18.2} {:>14.4} {:>10}",
            r.algorithm, r.migrated as f64, r.migrated_per_proc, r.runtime_ms, qpu
        );
    }
}
