//! Extension: heuristics and the hybrid solver against the certified
//! branch-and-bound optimum on small instances.
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::extensions::optimality_gap(&cfg);
    qlrb_bench::emit(&exp, false);
}
