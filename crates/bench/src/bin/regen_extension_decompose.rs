//! Extension: multilevel decomposition past the monolithic size ceiling —
//! feasible plans at 1024/2048/4096 nodes, optimality gap vs Greedy/KK,
//! plus the monolithic formulation's structured failure rows and peak-RSS
//! accounting. `QLRB_FAST=1` keeps only the 1024-node case.
fn main() {
    let cfg = qlrb_bench::regen_config();
    let mut cases = qlrb_workloads::node_scaling_large();
    if std::env::var("QLRB_FAST").is_ok_and(|v| v == "1") {
        cases.truncate(1);
    }
    let exp = qlrb_harness::extensions::decompose_scaling_cases(&cfg, cases);
    qlrb_bench::emit(&exp, false);
}
