//! Regenerates the paper's Table I (complexity & logical-qubit overview).
fn main() {
    println!("{}", qlrb_harness::table1());
}
