//! Compact perf-trajectory snapshot: times a fixed set of hot-path
//! scenarios with plain [`std::time::Instant`] and writes
//! `results/bench_summary.json` (per-scenario median wall time plus
//! machine info), so successive PRs can compare headline numbers without
//! re-running the full Criterion suite.
//!
//! All scenarios are deterministic under their fixed seeds and run at the
//! paper's Table-V scale (sam(oa)² oscillating lake, M = 32 nodes ×
//! n = 208 tasks — 7 936 / 8 192 logical variables):
//!
//! * `hybrid_solve_table5_reduced` / `hybrid_solve_table5_full` — one
//!   default-config [`HybridCqmSolver`] solve per iteration through
//!   [`QuantumRebalancer`], the quantity the paper's "Runtime" columns
//!   report.
//! * `sa_table5` / `sqa_table5` / `tabu_table5` — two single-sampler reads
//!   each, isolating the three portfolio members.
//!
//! `QLRB_BENCH_ITERS` overrides the per-scenario iteration count
//! (default 3; the median is reported).

use std::fmt::Write as _;
use std::time::Instant;

use qlrb_anneal::hybrid::{HybridCqmSolver, SamplerKind};
use qlrb_core::cqm::{LrpCqm, Variant};
use qlrb_core::{QuantumRebalancer, Rebalancer};

/// A named timing scenario: label plus the closure timed per iteration.
type Scenario<'a> = (&'a str, Box<dyn FnMut() + 'a>);

fn time_median_ms(iters: usize, f: &mut dyn FnMut()) -> (f64, f64, f64) {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    (median, samples[0], samples[samples.len() - 1])
}

fn rebalancer(variant: Variant, k: u64) -> QuantumRebalancer {
    QuantumRebalancer {
        variant,
        k,
        // The adaptive scheduler is what the harness runs with (see
        // `HarnessConfig::quantum_seeded`), so the headline hybrid
        // scenarios time it: plateau early-stop plus bandit re-allocation.
        solver: HybridCqmSolver::builder()
            .seed(11)
            .adaptive(true)
            .early_stop(true)
            .build()
            .expect("default config with a fixed seed is valid"),
        label: None,
        extra_seed_plans: Vec::new(),
        prune_tolerance: 0.02,
        migration_penalty: 0.0,
    }
}

fn main() {
    let iters: usize = std::env::var("QLRB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);

    let inst = samoa_mini::scenario::table5_instance();
    // A Table-V-magnitude migration budget; fixed so the scenario is stable
    // across PRs instead of tracking the classical methods' plans.
    let k = 128u64;
    let lrp = LrpCqm::build(&inst, Variant::Reduced, k).expect("table5 CQM");

    let single = |kind: SamplerKind| {
        HybridCqmSolver::builder()
            .num_reads(2)
            .seed(11)
            .samplers(vec![kind])
            .build()
            .expect("single-sampler portfolio is valid")
    };

    let scenarios: Vec<Scenario<'_>> = vec![
        (
            "hybrid_solve_table5_reduced",
            Box::new(|| {
                let m = rebalancer(Variant::Reduced, k);
                std::hint::black_box(m.rebalance(&inst).unwrap().matrix.num_migrated());
            }),
        ),
        (
            "hybrid_solve_table5_full",
            Box::new(|| {
                let m = rebalancer(Variant::Full, k);
                std::hint::black_box(m.rebalance(&inst).unwrap().matrix.num_migrated());
            }),
        ),
        (
            "sa_table5",
            Box::new(|| {
                let set = single(SamplerKind::Sa).solve(&lrp.cqm, &[]);
                std::hint::black_box(set.summary().num_samples);
            }),
        ),
        (
            "sqa_table5",
            Box::new(|| {
                let set = single(SamplerKind::Sqa).solve(&lrp.cqm, &[]);
                std::hint::black_box(set.summary().num_samples);
            }),
        ),
        (
            "tabu_table5",
            Box::new(|| {
                let set = single(SamplerKind::Tabu).solve(&lrp.cqm, &[]);
                std::hint::black_box(set.summary().num_samples);
            }),
        ),
    ];

    // Hand-rolled JSON: the schema is flat and fixed, and keeping the binary
    // free of serde derives keeps it honest as a pure timing harness.
    let mut bench_json = String::new();
    for (i, (name, mut f)) in scenarios.into_iter().enumerate() {
        let (median_ms, min_ms, max_ms) = time_median_ms(iters, &mut *f);
        eprintln!(
            "{name}: median {median_ms:.1} ms  (min {min_ms:.1}, max {max_ms:.1}, n = {iters})"
        );
        let _ = write!(
            bench_json,
            "{}    {{\"name\": \"{name}\", \"iters\": {iters}, \
             \"median_ms\": {median_ms:.3}, \"min_ms\": {min_ms:.3}, \"max_ms\": {max_ms:.3}}}",
            if i == 0 { "" } else { ",\n" },
        );
    }

    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rayon_threads = qlrb_harness::rayon_threads();
    let summary = format!(
        "{{\n  \"schema\": 1,\n  \"generated_unix_s\": {unix_s},\n  \
         \"scale\": {{\"nodes\": {}, \"tasks_per_node\": {}}},\n  \
         \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"logical_cpus\": {cpus}, \
         \"rayon_threads\": {rayon_threads}}},\n  \
         \"benches\": [\n{bench_json}\n  ]\n}}\n",
        inst.num_procs(),
        inst.tasks_per_proc(),
        std::env::consts::OS,
        std::env::consts::ARCH,
    );
    let path = qlrb_bench::results_dir().join("bench_summary.json");
    std::fs::write(&path, summary).expect("write bench summary");
    println!("[saved {}]", path.display());
}
