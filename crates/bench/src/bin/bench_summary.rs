//! Compact perf-trajectory snapshot: times a fixed set of hot-path
//! scenarios with plain [`std::time::Instant`] and writes
//! `results/bench_summary.json` (per-scenario median wall time plus
//! machine info), so successive PRs can compare headline numbers without
//! re-running the full Criterion suite. `scripts/check_bench.sh` ratchets
//! the headline hybrid medians against `results/bench_baseline.json`.
//!
//! All scenarios are deterministic under their fixed seeds. The Table-V
//! rows run at the paper's scale (sam(oa)² oscillating lake, M = 32 nodes
//! × n = 208 tasks — 7 936 / 8 192 logical variables):
//!
//! * `hybrid_solve_table5_reduced` / `hybrid_solve_table5_full` — one
//!   [`HybridCqmSolver`] solve per iteration through
//!   [`QuantumRebalancer`], the quantity the paper's "Runtime" columns
//!   report. These headline rows run the batched bitset kernels (the
//!   configuration the harness ships); the `_scalar` companions time the
//!   legacy one-state-at-a-time path for comparison.
//! * `sa_table5` / `sqa_table5` / `tabu_table5` — two single-sampler reads
//!   each, isolating the three portfolio members.
//! * `decompose_{1024,2048,4096}node` — the multilevel decomposition
//!   frontend end-to-end ([`DecomposingRebalancer`]) on instances far past
//!   the monolithic variable cap (4 tasks/node keeps the coarse core small
//!   enough that the rows time the decomposition machinery — coarsening,
//!   one coarse solve, per-level projection — rather than one huge anneal).
//!   No monolithic companions: at these scales the `Q_CQM1` model is not
//!   buildable — the monolithic path exits in microseconds with the
//!   structured `ModelTooLarge` error, which is not worth a timing row.
//! * `flip_delta_{scalar,batched}_{sparse,medium,dense}` — the flip-delta
//!   kernel alone on synthetic CQMs of three CSR density tiers; the
//!   batched rows traverse once for 64 lanes.
//!
//! `QLRB_BENCH_ITERS` overrides the per-scenario iteration count
//! (default 5; one extra warm-up iteration runs first and is discarded,
//! and the median of the rest is reported).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use qlrb_anneal::hybrid::{HybridCqmSolver, SamplerKind};
use qlrb_core::cqm::{LrpCqm, Variant};
use qlrb_core::{DecomposingRebalancer, Instance, QuantumRebalancer, Rebalancer};
use qlrb_model::batch::BatchedEvaluator;
use qlrb_model::cqm::Cqm;
use qlrb_model::eval::{CompiledCqm, CqmEvaluator, Evaluator};
use qlrb_model::expr::{LinearExpr, Var};
use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};

/// A named timing scenario: label plus the closure timed per iteration.
type Scenario<'a> = (&'a str, Box<dyn FnMut() + 'a>);

/// Times `f` over `iters` recorded iterations after one discarded warm-up
/// call (first-touch page faults and lazy pool spin-up would otherwise
/// skew the min and, at small `iters`, the median the regression gate
/// reads).
fn time_median_ms(iters: usize, f: &mut dyn FnMut()) -> (f64, f64, f64) {
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    (median, samples[0], samples[samples.len() - 1])
}

/// Logical CPU count for the machine record. `available_parallelism` can
/// report 1 under a restrictive cgroup quota or affinity mask even on big
/// hosts, so cross-check the kernel's processor inventory and report the
/// larger of the two.
fn logical_cpus() -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let listed = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .unwrap_or(0);
    avail.max(listed).max(1)
}

fn rebalancer(variant: Variant, k: u64, batched: bool) -> QuantumRebalancer {
    QuantumRebalancer {
        variant,
        k,
        // The adaptive scheduler is what the harness runs with (see
        // `HarnessConfig::quantum_seeded`), so the headline hybrid
        // scenarios time it: plateau early-stop plus bandit re-allocation.
        solver: HybridCqmSolver::builder()
            .seed(11)
            .adaptive(true)
            .early_stop(true)
            .batched(batched)
            .build()
            .expect("default config with a fixed seed is valid"),
        label: None,
        extra_seed_plans: Vec::new(),
        prune_tolerance: 0.02,
        migration_penalty: 0.0,
    }
}

/// A `{nodes}`-process instance for the decomposition rows: the harness's
/// cyclic MxM size mix at 4 tasks per node, so the dominant cost is the
/// multilevel machinery (dense plans, projections) rather than the coarse
/// anneal.
fn decompose_instance(nodes: usize) -> Instance {
    let sizes = qlrb_workloads::MXM_SIZES;
    let weights: Vec<f64> = (0..nodes)
        .map(|i| qlrb_workloads::load_model(sizes[i % sizes.len()]))
        .collect();
    Instance::uniform(4, weights).expect("generator parameters are valid")
}

/// The decomposing rebalancer the `decompose_*node` rows time: a small,
/// fixed sub-solver budget and a 4096-variable refinement cap, so the rows
/// track the frontend's own scaling across PRs instead of anneal noise.
fn decompose_rebalancer(k: u64) -> DecomposingRebalancer {
    let mut dr = DecomposingRebalancer::new(Variant::Reduced, k);
    dr.solver = HybridCqmSolver::builder()
        .num_reads(2)
        .sweeps(100)
        .seed(11)
        .tabu_max_vars(4096)
        .decompose(true)
        .build()
        .expect("fixed decompose bench config is valid");
    dr.coarse_target = 16;
    dr
}

/// A synthetic CQM whose CSR density is set by how many variables each
/// squared expression couples: `num_exprs` expressions of
/// `terms_per_expr` variables each, strided deterministically across `n`
/// variables.
fn density_cqm(n: usize, num_exprs: usize, terms_per_expr: usize) -> Arc<CompiledCqm> {
    let mut cqm = Cqm::new(n);
    let mut counter = 0x9e37_79b9u64;
    for e in 0..num_exprs {
        let mut expr = LinearExpr::new();
        for t in 0..terms_per_expr {
            // Deterministic pseudo-random variable pick (splitmix-style).
            counter = counter
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((counter >> 33) as usize) % n;
            let w = 1.0 + ((e + t) % 7) as f64 * 0.25;
            expr.add_term(Var(v as u32), w);
        }
        expr.add_term(Var((e % n) as u32), 1.0);
        cqm.add_squared_term(expr, (terms_per_expr / 2) as f64, 1.0);
    }
    let penalty = PenaltyConfig::auto(&cqm, 2.0, PenaltyStyle::ViolationQuadratic);
    CompiledCqm::compile(&cqm, penalty)
}

/// One flip-delta sweep over every active variable, 64 states deep:
/// 64 scalar evaluators for the scalar kernel vs one 64-lane batched
/// evaluator — the traversal-count asymmetry the tentpole exploits.
fn flip_delta_pair(compiled: &Arc<CompiledCqm>) -> (Box<dyn FnMut()>, Box<dyn FnMut()>) {
    let lanes = 64usize;
    let n = compiled.num_vars();
    let state_of = |lane: usize| -> Vec<u8> {
        (0..n)
            .map(|v| ((v * 31 + lane * 17 + 7) % 3 == 0) as u8)
            .collect()
    };
    let evs: Vec<CqmEvaluator> = (0..lanes)
        .map(|l| CqmEvaluator::with_state(Arc::clone(compiled), &state_of(l)))
        .collect();
    let mut bev = BatchedEvaluator::new(Arc::clone(compiled), lanes);
    for l in 0..lanes {
        bev.set_lane_state(l, &state_of(l));
    }
    let scalar_compiled = Arc::clone(compiled);
    let scalar = Box::new(move || {
        let mut acc = 0.0f64;
        for ev in &evs {
            for &v in scalar_compiled.active_vars() {
                acc += ev.flip_delta(v);
            }
        }
        std::hint::black_box(acc);
    });
    let active: Vec<usize> = compiled.active_vars().to_vec();
    let batched = Box::new(move || {
        let mut deltas = [0.0f64; 64];
        let mut acc = 0.0f64;
        for &v in &active {
            bev.flip_deltas(v, &mut deltas);
            acc += deltas.iter().sum::<f64>();
        }
        std::hint::black_box(acc);
    });
    (scalar, batched)
}

fn main() {
    let iters: usize = std::env::var("QLRB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);

    let inst = samoa_mini::scenario::table5_instance();
    // A Table-V-magnitude migration budget; fixed so the scenario is stable
    // across PRs instead of tracking the classical methods' plans.
    let k = 128u64;
    let lrp = LrpCqm::build(&inst, Variant::Reduced, k).expect("table5 CQM");

    let single = |kind: SamplerKind| {
        HybridCqmSolver::builder()
            .num_reads(2)
            .seed(11)
            .samplers(vec![kind])
            .build()
            .expect("single-sampler portfolio is valid")
    };

    // CSR density tiers for the flip-delta kernel rows: ~2, ~16 and ~64
    // couplings per variable at n = 1024.
    let sparse = density_cqm(1024, 512, 4);
    let medium = density_cqm(1024, 1024, 16);
    let dense = density_cqm(1024, 1024, 64);
    let (mut fd_scalar_sparse, mut fd_batched_sparse) = flip_delta_pair(&sparse);
    let (mut fd_scalar_medium, mut fd_batched_medium) = flip_delta_pair(&medium);
    let (mut fd_scalar_dense, mut fd_batched_dense) = flip_delta_pair(&dense);

    let scenarios: Vec<Scenario<'_>> = vec![
        (
            "hybrid_solve_table5_reduced",
            Box::new(|| {
                let m = rebalancer(Variant::Reduced, k, true);
                std::hint::black_box(m.rebalance(&inst).unwrap().matrix.num_migrated());
            }),
        ),
        (
            "hybrid_solve_table5_full",
            Box::new(|| {
                let m = rebalancer(Variant::Full, k, true);
                std::hint::black_box(m.rebalance(&inst).unwrap().matrix.num_migrated());
            }),
        ),
        (
            "hybrid_solve_table5_reduced_scalar",
            Box::new(|| {
                let m = rebalancer(Variant::Reduced, k, false);
                std::hint::black_box(m.rebalance(&inst).unwrap().matrix.num_migrated());
            }),
        ),
        (
            "hybrid_solve_table5_full_scalar",
            Box::new(|| {
                let m = rebalancer(Variant::Full, k, false);
                std::hint::black_box(m.rebalance(&inst).unwrap().matrix.num_migrated());
            }),
        ),
        (
            "sa_table5",
            Box::new(|| {
                let set = single(SamplerKind::Sa).solve(&lrp.cqm, &[]);
                std::hint::black_box(set.summary().num_samples);
            }),
        ),
        (
            "sqa_table5",
            Box::new(|| {
                let set = single(SamplerKind::Sqa).solve(&lrp.cqm, &[]);
                std::hint::black_box(set.summary().num_samples);
            }),
        ),
        (
            "tabu_table5",
            Box::new(|| {
                let set = single(SamplerKind::Tabu).solve(&lrp.cqm, &[]);
                std::hint::black_box(set.summary().num_samples);
            }),
        ),
        (
            "decompose_1024node",
            Box::new(|| {
                let inst = decompose_instance(1024);
                let m = decompose_rebalancer(inst.num_tasks() / 64);
                std::hint::black_box(m.rebalance(&inst).unwrap().matrix.num_migrated());
            }),
        ),
        (
            "decompose_2048node",
            Box::new(|| {
                let inst = decompose_instance(2048);
                let m = decompose_rebalancer(inst.num_tasks() / 64);
                std::hint::black_box(m.rebalance(&inst).unwrap().matrix.num_migrated());
            }),
        ),
        (
            "decompose_4096node",
            Box::new(|| {
                let inst = decompose_instance(4096);
                let m = decompose_rebalancer(inst.num_tasks() / 64);
                std::hint::black_box(m.rebalance(&inst).unwrap().matrix.num_migrated());
            }),
        ),
        (
            "flip_delta_scalar_sparse",
            Box::new(move || fd_scalar_sparse()),
        ),
        (
            "flip_delta_batched_sparse",
            Box::new(move || fd_batched_sparse()),
        ),
        (
            "flip_delta_scalar_medium",
            Box::new(move || fd_scalar_medium()),
        ),
        (
            "flip_delta_batched_medium",
            Box::new(move || fd_batched_medium()),
        ),
        (
            "flip_delta_scalar_dense",
            Box::new(move || fd_scalar_dense()),
        ),
        (
            "flip_delta_batched_dense",
            Box::new(move || fd_batched_dense()),
        ),
    ];

    // Hand-rolled JSON: the schema is flat and fixed, and keeping the binary
    // free of serde derives keeps it honest as a pure timing harness.
    let mut bench_json = String::new();
    for (i, (name, mut f)) in scenarios.into_iter().enumerate() {
        let (median_ms, min_ms, max_ms) = time_median_ms(iters, &mut *f);
        eprintln!(
            "{name}: median {median_ms:.1} ms  (min {min_ms:.1}, max {max_ms:.1}, n = {iters})"
        );
        let _ = write!(
            bench_json,
            "{}    {{\"name\": \"{name}\", \"iters\": {iters}, \
             \"median_ms\": {median_ms:.3}, \"min_ms\": {min_ms:.3}, \"max_ms\": {max_ms:.3}}}",
            if i == 0 { "" } else { ",\n" },
        );
    }

    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let cpus = logical_cpus();
    let rayon_threads = qlrb_harness::rayon_threads();
    let summary = format!(
        "{{\n  \"schema\": 2,\n  \"generated_unix_s\": {unix_s},\n  \
         \"scale\": {{\"nodes\": {}, \"tasks_per_node\": {}}},\n  \
         \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"logical_cpus\": {cpus}, \
         \"rayon_threads\": {rayon_threads}}},\n  \
         \"benches\": [\n{bench_json}\n  ]\n}}\n",
        inst.num_procs(),
        inst.tasks_per_proc(),
        std::env::consts::OS,
        std::env::consts::ARCH,
    );
    let path = qlrb_bench::results_dir().join("bench_summary.json");
    std::fs::write(&path, summary).expect("write bench summary");
    println!("[saved {}]", path.display());
}
