//! Extension: the tsunami realistic use case (FV-driven costs).
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::groups::tsunami_case(&cfg);
    qlrb_bench::emit(&exp, false);
}
