//! Extension: work stealing vs migrate-then-run on the simulated runtime.
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::extensions::dynamic_comparison(&cfg);
    qlrb_bench::emit(&exp, false);
}
