//! Regenerates Table V: the sam(oa)² oscillating-lake realistic use case
//! (32 nodes × 208 tasks, baseline R_imb = 4.1994).
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::samoa_case(&cfg);
    qlrb_bench::emit(&exp, false);
}
