//! Regenerates Table V: the sam(oa)² oscillating-lake realistic use case
//! (32 nodes × 208 tasks, baseline R_imb = 4.1994). Runs traced: alongside
//! the rows JSON it writes `results/table5_manifest.json`, the telemetry
//! run manifest with per-read solve records and timing medians.
fn main() {
    let cfg = qlrb_bench::regen_config();
    let (exp, trace) = qlrb_harness::samoa_case_traced(&cfg);
    qlrb_bench::emit(&exp, false);

    let manifest = qlrb_harness::assemble_manifest("regen_table5", &cfg, vec![trace]);
    manifest
        .validate()
        .expect("traced run produces a valid manifest");
    print!("{}", manifest.summarize());
    let path = qlrb_bench::results_dir().join("table5_manifest.json");
    std::fs::write(&path, manifest.to_json_pretty()).expect("write table5 manifest");
    println!("[saved {}]", path.display());
}
