//! Extension: how rebalancing plans age as the oscillating lake moves.
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::extensions::drift_study(&cfg);
    qlrb_bench::emit(&exp, true);
}
