//! Ablation: hybrid portfolio members in isolation (SA vs SQA vs tabu).
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::ablations::sampler_ablation(&cfg);
    qlrb_bench::emit(&exp, false);
}
