//! Ablation: bounded-coefficient vs plain-binary count encoding (paper §IV).
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::ablations::encoding_ablation(&cfg);
    qlrb_bench::emit(&exp, false);
}
