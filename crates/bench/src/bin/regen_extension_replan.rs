//! Extension: re-planning frequency under the oscillating lake.
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::extensions::replan_frequency(&cfg);
    qlrb_bench::emit(&exp, false);
}
