//! Regenerates every table and figure of the paper plus the ablations.
fn main() {
    let cfg = qlrb_bench::regen_config();
    println!("{}", qlrb_harness::table1());
    for exp in [
        qlrb_harness::varied_imbalance(&cfg),
        qlrb_harness::varied_procs(&cfg),
        qlrb_harness::varied_tasks(&cfg),
        qlrb_harness::samoa_case(&cfg),
        qlrb_harness::groups::tsunami_case(&cfg),
        qlrb_harness::ablations::k_sweep(&cfg),
        qlrb_harness::ablations::penalty_ablation(&cfg),
        qlrb_harness::ablations::sampler_ablation(&cfg),
        qlrb_harness::ablations::encoding_ablation(&cfg),
        qlrb_harness::extensions::optimality_gap(&cfg),
        qlrb_harness::extensions::dynamic_comparison(&cfg),
        qlrb_harness::extensions::drift_study(&cfg),
        qlrb_harness::extensions::replan_frequency(&cfg),
        qlrb_harness::extensions::soft_penalty_sweep(&cfg),
        qlrb_harness::extensions::noise_robustness(&cfg),
    ] {
        qlrb_bench::emit(&exp, exp.cases.len() > 1);
    }
}
