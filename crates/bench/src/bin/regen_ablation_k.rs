//! Ablation: sweep of the migration budget k (paper §VI future work).
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::ablations::k_sweep(&cfg);
    qlrb_bench::emit(&exp, true);
}
