//! Regenerates Fig. 5 (imbalance + speedup vs tasks per node) and Table IV
//! (total migrated tasks per scale).
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::varied_tasks(&cfg);
    qlrb_bench::emit(&exp, true);
}
