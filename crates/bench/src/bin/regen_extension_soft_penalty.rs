//! Extension: soft per-migration penalty (multi-objective) vs the hard k.
fn main() {
    let cfg = qlrb_bench::regen_config();
    let exp = qlrb_harness::extensions::soft_penalty_sweep(&cfg);
    qlrb_bench::emit(&exp, false);
}
