#![forbid(unsafe_code)]
//! # qlrb-bench — benchmark harness and table/figure regeneration
//!
//! Two kinds of targets:
//!
//! * **Regeneration binaries** (`src/bin/regen_*.rs`) — one per paper table
//!   and figure. Each prints the paper-style rows/series to stdout and
//!   writes machine-readable JSON under `results/`. Run them in release
//!   mode, e.g.
//!
//!   ```text
//!   cargo run --release -p qlrb-bench --bin regen_table5
//!   cargo run --release -p qlrb-bench --bin regen_all
//!   ```
//!
//! * **Criterion benches** (`benches/`) — micro/meso benchmarks of the
//!   classical algorithms (the paper's runtime columns), the hybrid solver,
//!   and the substrates (MxM kernel, mesh construction, evaluator flip
//!   throughput, runtime simulator).

use std::path::PathBuf;

use qlrb_harness::ExperimentResult;

/// Where regeneration binaries drop their JSON artifacts.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Prints an experiment (tables + figure panels) and persists its JSON.
pub fn emit(exp: &ExperimentResult, with_figures: bool) {
    println!("{}", exp.to_table());
    if with_figures {
        println!("{}", qlrb_harness::figures::figure_panels(exp));
        println!(
            "{}",
            qlrb_harness::figures::series_table(exp, qlrb_harness::figures::Metric::Migrated)
        );
    }
    let path = results_dir().join(format!("{}.json", exp.id));
    std::fs::write(&path, exp.to_json()).expect("write results json");
    println!("[saved {}]", path.display());
}

/// The harness configuration used by all regen binaries: the default,
/// unless `QLRB_FAST=1` asks for the cheap test profile.
pub fn regen_config() -> qlrb_harness::HarnessConfig {
    if std::env::var("QLRB_FAST").is_ok_and(|v| v == "1") {
        qlrb_harness::HarnessConfig::fast()
    } else {
        qlrb_harness::HarnessConfig::default()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_is_creatable() {
        let d = super::results_dir();
        assert!(d.exists());
    }
}
