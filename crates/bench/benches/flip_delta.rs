//! Flip-delta kernel throughput: the scalar one-state [`CqmEvaluator`]
//! against the 64-lane bitset [`BatchedEvaluator`], per CSR density tier.
//!
//! Each measured iteration computes the flip delta of every active
//! variable for 64 distinct states — 64 separate evaluator traversals on
//! the scalar side, one shared CSR traversal on the batched side. The
//! three tiers sweep coupling density (~2, ~16 and ~64 couplings per
//! variable at n = 1024), bracketing the Table-V models' CSR profiles.
//! `bench_summary` reports the same pairs as `flip_delta_*` rows in
//! `results/bench_summary.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use qlrb_model::batch::BatchedEvaluator;
use qlrb_model::cqm::Cqm;
use qlrb_model::eval::{CompiledCqm, CqmEvaluator, Evaluator};
use qlrb_model::expr::{LinearExpr, Var};
use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};

const LANES: usize = 64;

/// A synthetic CQM whose CSR density is set by how many variables each
/// squared expression couples (mirrors `bench_summary`'s tier builder).
fn density_cqm(n: usize, num_exprs: usize, terms_per_expr: usize) -> Arc<CompiledCqm> {
    let mut cqm = Cqm::new(n);
    let mut counter = 0x9e37_79b9u64;
    for e in 0..num_exprs {
        let mut expr = LinearExpr::new();
        for t in 0..terms_per_expr {
            counter = counter
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((counter >> 33) as usize) % n;
            let w = 1.0 + ((e + t) % 7) as f64 * 0.25;
            expr.add_term(Var(v as u32), w);
        }
        expr.add_term(Var((e % n) as u32), 1.0);
        cqm.add_squared_term(expr, (terms_per_expr / 2) as f64, 1.0);
    }
    let penalty = PenaltyConfig::auto(&cqm, 2.0, PenaltyStyle::ViolationQuadratic);
    CompiledCqm::compile(&cqm, penalty)
}

fn lane_state(n: usize, lane: usize) -> Vec<u8> {
    (0..n)
        .map(|v| ((v * 31 + lane * 17 + 7) % 3 == 0) as u8)
        .collect()
}

fn bench_flip_delta(c: &mut Criterion) {
    let tiers = [
        ("sparse", density_cqm(1024, 512, 4)),
        ("medium", density_cqm(1024, 1024, 16)),
        ("dense", density_cqm(1024, 1024, 64)),
    ];
    let mut group = c.benchmark_group("flip_delta");
    group.sample_size(20);
    for (tier, compiled) in &tiers {
        let n = compiled.num_vars();
        let evs: Vec<CqmEvaluator> = (0..LANES)
            .map(|l| CqmEvaluator::with_state(Arc::clone(compiled), &lane_state(n, l)))
            .collect();
        group.bench_with_input(BenchmarkId::new("scalar", tier), compiled, |b, compiled| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for ev in &evs {
                    for &v in compiled.active_vars() {
                        acc += ev.flip_delta(v);
                    }
                }
                black_box(acc)
            });
        });
        let mut bev = BatchedEvaluator::new(Arc::clone(compiled), LANES);
        for l in 0..LANES {
            bev.set_lane_state(l, &lane_state(n, l));
        }
        group.bench_with_input(
            BenchmarkId::new("batched", tier),
            compiled,
            |b, compiled| {
                b.iter(|| {
                    let mut deltas = [0.0f64; LANES];
                    let mut acc = 0.0f64;
                    for &v in compiled.active_vars() {
                        bev.flip_deltas(v, &mut deltas);
                        acc += deltas.iter().sum::<f64>();
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flip_delta);
criterion_main!(benches);
