//! Runtime of the classical rebalancing methods (the paper's Table II and
//! Table V "Runtime" columns): Greedy, KK, ProactLB on the Table II MxM
//! configuration (8 nodes × 50 tasks), the largest MxM scale (8 × 2048),
//! and the sam(oa)² Table V instance (32 × 208).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qlrb_classical::{Greedy, GreedyRelabeled, KarmarkarKarp, ProactLb};
use qlrb_core::{Instance, Rebalancer};

fn instances() -> Vec<(&'static str, Instance)> {
    let imb3 = qlrb_workloads::groups::imbalance_levels()
        .into_iter()
        .find(|(l, _)| l == "Imb.3")
        .unwrap()
        .1;
    let big = qlrb_workloads::groups::task_scaling()
        .into_iter()
        .find(|(n, _)| *n == 2048)
        .unwrap()
        .1;
    let samoa = samoa_mini::scenario::table5_instance();
    vec![
        ("mxm_8x50", imb3),
        ("mxm_8x2048", big),
        ("samoa_32x208", samoa),
    ]
}

fn bench_classical(c: &mut Criterion) {
    let mut group = c.benchmark_group("classical");
    for (label, inst) in instances() {
        group.bench_with_input(BenchmarkId::new("greedy", label), &inst, |b, inst| {
            b.iter(|| black_box(Greedy.rebalance(inst).unwrap().matrix.num_migrated()));
        });
        group.bench_with_input(BenchmarkId::new("kk", label), &inst, |b, inst| {
            b.iter(|| black_box(KarmarkarKarp.rebalance(inst).unwrap().matrix.num_migrated()));
        });
        group.bench_with_input(BenchmarkId::new("proactlb", label), &inst, |b, inst| {
            b.iter(|| black_box(ProactLb.rebalance(inst).unwrap().matrix.num_migrated()));
        });
        group.bench_with_input(
            BenchmarkId::new("greedy_relabeled", label),
            &inst,
            |b, inst| {
                b.iter(|| {
                    black_box(
                        GreedyRelabeled
                            .rebalance(inst)
                            .unwrap()
                            .matrix
                            .num_migrated(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classical
}
criterion_main!(benches);
