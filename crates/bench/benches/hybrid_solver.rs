//! Hybrid CQM solver throughput (the paper's Table II/V hybrid "Runtime"
//! columns): one full solve per variant on a small MxM instance, plus the
//! three samplers in isolation on a fixed model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qlrb_anneal::hybrid::{HybridCqmSolver, SamplerKind};
use qlrb_core::cqm::{LrpCqm, Variant};
use qlrb_core::{Instance, QuantumRebalancer, Rebalancer};

fn small_instance() -> Instance {
    // 8 nodes × 50 tasks, the Table II configuration at the Imb.3 spread.
    qlrb_workloads::groups::imbalance_levels()
        .into_iter()
        .find(|(l, _)| l == "Imb.3")
        .unwrap()
        .1
}

fn solver(reads: usize, samplers: Vec<SamplerKind>) -> HybridCqmSolver {
    HybridCqmSolver::builder()
        .num_reads(reads)
        .sweeps(300)
        .sqa_replicas(8)
        .seed(11)
        .samplers(samplers)
        .build()
        .expect("bench solver config is valid")
}

fn bench_variants(c: &mut Criterion) {
    let inst = small_instance();
    let k = inst.num_tasks() / 4;
    let mut group = c.benchmark_group("hybrid_solve");
    group.sample_size(10);
    for variant in [Variant::Reduced, Variant::Full] {
        group.bench_with_input(
            BenchmarkId::new("variant", format!("{variant:?}")),
            &variant,
            |b, &variant| {
                let method = QuantumRebalancer {
                    variant,
                    k,
                    solver: solver(
                        4,
                        vec![SamplerKind::Sa, SamplerKind::Sqa, SamplerKind::Tabu],
                    ),
                    label: None,
                    extra_seed_plans: Vec::new(),
                    prune_tolerance: 0.02,
                    migration_penalty: 0.0,
                };
                b.iter(|| black_box(method.rebalance(&inst).unwrap().matrix.num_migrated()));
            },
        );
    }
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let inst = small_instance();
    let k = inst.num_tasks() / 4;
    let lrp = LrpCqm::build(&inst, Variant::Reduced, k).unwrap();
    let mut group = c.benchmark_group("hybrid_samplers");
    group.sample_size(10);
    for kind in [SamplerKind::Sa, SamplerKind::Sqa, SamplerKind::Tabu] {
        group.bench_with_input(
            BenchmarkId::new("sampler", format!("{kind}")),
            &kind,
            |b, &kind| {
                let s = solver(2, vec![kind]);
                b.iter(|| {
                    let set = s.solve(&lrp.cqm, &[]);
                    black_box(set.summary().num_samples)
                });
            },
        );
    }
    group.finish();
}

/// Structured CQM evaluation vs materialized-QUBO evaluation: the same SA
/// budget through the incremental sum-of-squares evaluator and through the
/// dense explicit QUBO — the design choice that makes the paper's largest
/// configurations tractable.
fn bench_structured_vs_qubo(c: &mut Criterion) {
    use qlrb_anneal::sa::{simulated_annealing, SaParams};
    use qlrb_anneal::schedule::BetaSchedule;
    use qlrb_model::eval::{BqmEvaluator, CompiledCqm, CqmEvaluator};
    use qlrb_model::penalty::{to_bqm, PenaltyConfig, PenaltyStyle};
    use rand::SeedableRng;
    use std::sync::Arc;

    let inst = small_instance();
    let k = inst.num_tasks() / 4;
    let lrp = LrpCqm::build(&inst, Variant::Full, k).unwrap();
    let cfg = PenaltyConfig::auto(&lrp.cqm, 2.0, PenaltyStyle::Slack);
    let compiled = CompiledCqm::compile(&lrp.cqm, cfg);
    let bqm = Arc::new(to_bqm(&lrp.cqm, &cfg).expect("slack is representable"));
    let params = SaParams {
        sweeps: 100,
        schedule: BetaSchedule::Geometric {
            beta0: 1e-4,
            beta1: 1e-1,
        },
        resync_interval: 64,
    };
    let mut group = c.benchmark_group("structured_vs_qubo");
    group.sample_size(10);
    group.bench_function("structured_evaluator", |b| {
        b.iter(|| {
            let mut ev = CqmEvaluator::new(Arc::clone(&compiled));
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
            black_box(simulated_annealing(&mut ev, &params, &mut rng).energy)
        });
    });
    group.bench_function("materialized_qubo", |b| {
        b.iter(|| {
            let mut ev = BqmEvaluator::new(Arc::clone(&bqm));
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
            black_box(simulated_annealing(&mut ev, &params, &mut rng).energy)
        });
    });
    group.finish();
}

/// Table-V scale (sam(oa)² oscillating lake, M = 32 × n = 208; 7 936
/// logical variables in the reduced formulation): one default-config hybrid
/// solve — the headline number `bench_summary` tracks across PRs.
fn bench_table5_scale(c: &mut Criterion) {
    let inst = samoa_mini::scenario::table5_instance();
    let k = 128;
    let mut group = c.benchmark_group("hybrid_table5");
    group.sample_size(10);
    for variant in [Variant::Reduced, Variant::Full] {
        group.bench_with_input(
            BenchmarkId::new("default_solver", format!("{variant:?}")),
            &variant,
            |b, &variant| {
                let method = QuantumRebalancer {
                    variant,
                    k,
                    solver: HybridCqmSolver::builder()
                        .seed(11)
                        .build()
                        .expect("default config with a fixed seed is valid"),
                    label: None,
                    extra_seed_plans: Vec::new(),
                    prune_tolerance: 0.02,
                    migration_penalty: 0.0,
                };
                b.iter(|| black_box(method.rebalance(&inst).unwrap().matrix.num_migrated()));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_variants,
    bench_samplers,
    bench_structured_vs_qubo,
    bench_table5_scale
);
criterion_main!(benches);
