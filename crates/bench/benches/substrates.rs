//! Substrate microbenchmarks: the MxM kernel (load calibration), the
//! adaptive mesh build, CQM evaluator flip throughput (the annealing inner
//! loop), and the runtime simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use chameleon_sim::{simulate, SimConfig, SimInput};
use qlrb_core::cqm::{LrpCqm, Variant};
use qlrb_core::Instance;
use qlrb_model::eval::{CqmEvaluator, Evaluator};
use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};
use qlrb_workloads::Matrix;

fn bench_mxm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxm_kernel");
    for size in [64usize, 128] {
        let a = Matrix::patterned(size);
        let b = Matrix::patterned(size);
        group.throughput(Throughput::Elements((2 * size * size * size) as u64));
        group.bench_with_input(BenchmarkId::new("blocked", size), &size, |bch, _| {
            bch.iter(|| black_box(a.multiply_blocked(&b, 64).frobenius()));
        });
    }
    group.finish();
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("samoa_mesh_depth12", |b| {
        let lake = samoa_mini::OscillatingLake::default();
        b.iter(|| {
            let mesh =
                samoa_mini::Mesh::adaptive(12, 13, |p| lake.near_shoreline(p[0], p[1], 0.0, 0.05));
            black_box(mesh.num_cells())
        });
    });
}

fn bench_evaluator_flips(c: &mut Criterion) {
    // The annealing inner loop: flip-delta + flip on the Table V-scale CQM.
    let inst = Instance::uniform(208, (0..32).map(|i| 1.0 + i as f64 * 0.3).collect()).unwrap();
    let lrp = LrpCqm::build(&inst, Variant::Full, 500).unwrap();
    let compiled = qlrb_model::eval::CompiledCqm::compile(
        &lrp.cqm,
        PenaltyConfig::auto(&lrp.cqm, 2.0, PenaltyStyle::ViolationQuadratic),
    );
    let mut ev = CqmEvaluator::new(compiled);
    let n = ev.num_vars();
    let mut group = c.benchmark_group("evaluator");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("full_sweep_flip_delta", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for v in 0..n {
                acc += ev.flip_delta(v);
            }
            black_box(acc)
        });
    });
    group.bench_function("full_sweep_flip_apply", |b| {
        b.iter(|| {
            for v in 0..n {
                ev.flip(v);
            }
            black_box(ev.energy())
        });
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let inst = samoa_mini::scenario::table5_instance();
    let input = SimInput::from_instance(&inst);
    c.bench_function("chameleon_sim_32x208", |b| {
        b.iter(|| black_box(simulate(&input, &SimConfig::default()).total_makespan));
    });
    let _ = Arc::new(());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mxm, bench_mesh, bench_evaluator_flips, bench_simulator
}
criterion_main!(benches);
