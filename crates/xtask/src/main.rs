#![forbid(unsafe_code)]
//! `cargo run -p xtask -- lint` — workspace-invariant source linter.
//!
//! Enforces repo-specific invariants that `clippy` cannot express (see
//! DESIGN.md §Static analysis). Rules:
//!
//! * `no-unwrap` — no `.unwrap()`, `.expect(…)`, or `panic!(…)` in library
//!   crates outside `#[cfg(test)]` items. Library callers get `Result`s;
//!   panicking is reserved for drivers and tests.
//! * `no-wallclock` — no `Instant::now()` / `SystemTime::now()` inside
//!   `crates/anneal`: wall-clock reads in the sampler substrate would make
//!   sweep behaviour (and therefore solve results) machine-dependent.
//! * `no-entropy` — no `thread_rng()` / `from_entropy()` anywhere: every
//!   random stream must derive from an explicit seed so experiment runs are
//!   reproducible bit-for-bit.
//! * `forbid-unsafe` — every crate root carries `#![forbid(unsafe_code)]`.
//! * `no-hot-alloc` — no `vec![…]` / `.collect(…)` inside a block annotated
//!   with a `// qlrb-hot:` comment (the sampler kernels' per-proposal
//!   loops): per-iteration allocation is exactly what the batched kernels
//!   exist to avoid. The rule covers the block opened by the first `{`
//!   after the annotation.
//!
//! Suppressions, always with a justification in the surrounding comment:
//!
//! * `// qlrb-lint: allow(<rule>)` on the offending line or the line above;
//! * `// qlrb-lint: allow-file(<rule>)` anywhere in a file to exempt the
//!   whole file (used by the harness, whose job is to abort loudly).
//!
//! `--json` emits machine-readable findings. Exit status: 0 clean,
//! 1 findings, 2 usage error.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose `src/` trees are library code: `no-unwrap` + `no-entropy`.
const LIB_CRATES: &[&str] = &[
    "analyze",
    "anneal",
    "chameleon-sim",
    "classical",
    "core",
    "harness",
    "model",
    "samoa-mini",
    "telemetry",
    "workloads",
];

/// Crates additionally under `no-wallclock` (the sampler substrate).
const WALLCLOCK_CRATES: &[&str] = &["anneal"];

/// Crates exempt from source scanning (drivers and this linter itself).
const SKIP_CRATES: &[&str] = &["bench", "xtask"];

#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

/// Which rule set applies to a file, derived from its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scope {
    no_unwrap: bool,
    no_wallclock: bool,
}

fn scope_for(crate_name: &str) -> Scope {
    Scope {
        no_unwrap: LIB_CRATES.contains(&crate_name),
        no_wallclock: WALLCLOCK_CRATES.contains(&crate_name),
    }
}

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/// Replaces comment and literal contents with spaces, preserving line
/// structure, so rule patterns never match inside strings, chars, or
/// comments (including doc comments).
fn strip_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. /// and //!): blank to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting-aware.
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        out.push(b' ');
                        i += 1;
                        if i < bytes.len() {
                            out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                            i += 1;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
                if i < bytes.len() {
                    out.push(b'"');
                    i += 1;
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                // Raw string r"…" / r#"…"# / r##"…"## (also br…, matched via r).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    out.extend_from_slice(&vec![b' '; j + 1 - start]);
                    i = j + 1;
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let mut k = i + 1;
                            let mut h = 0usize;
                            while h < hashes && bytes.get(k) == Some(&b'#') {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                out.extend_from_slice(&vec![b' '; k - i]);
                                i = k;
                                break 'raw;
                            }
                        }
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else {
                    // `r` identifier prefix, not a raw string (e.g. `r#ident`).
                    out.push(b'r');
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // bytes (`'x'`, `'\n'`, `'\u{1F600}'` is longer — scan ahead
                // bounded); a lifetime never has a closing quote nearby.
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' && j - i < 12 {
                        j += 1;
                    }
                } else if j < bytes.len() {
                    // One (possibly multi-byte) char.
                    j += 1;
                    while j < bytes.len() && bytes[j] & 0b1100_0000 == 0b1000_0000 {
                        j += 1;
                    }
                }
                if bytes.get(j) == Some(&b'\'') {
                    out.extend_from_slice(&vec![b' '; j + 1 - i]);
                    i = j + 1;
                } else {
                    out.push(b'\''); // lifetime marker
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

// ---------------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------------

fn allows_on(line: &str, directive: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find(directive) {
        rest = &rest[pos + directive.len()..];
        if let Some(end) = rest.find(')') {
            rules.push(rest[..end].trim().to_string());
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    rules
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

/// Scans one file's source. `display` is the path used in findings.
fn scan_source(display: &str, scope: Scope, src: &str) -> Vec<Finding> {
    let stripped = strip_source(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let file_allows: Vec<String> = raw_lines
        .iter()
        .flat_map(|l| allows_on(l, "qlrb-lint: allow-file("))
        .collect();
    let line_allows: Vec<Vec<String>> = raw_lines
        .iter()
        .map(|l| allows_on(l, "qlrb-lint: allow("))
        .collect();
    let allowed = |idx: usize, rule: &str| -> bool {
        file_allows.iter().any(|r| r == rule)
            || line_allows[idx].iter().any(|r| r == rule)
            || (idx > 0 && line_allows[idx - 1].iter().any(|r| r == rule))
    };

    let mut findings = Vec::new();
    // `#[cfg(test)]` handling: after the attribute, skip from the first `{`
    // until its matching `}` (covers `mod tests { … }` and gated items).
    let mut pending_test_attr = false;
    let mut test_depth = 0usize;
    // `qlrb-hot` regions: the block opened by the first `{` after the
    // annotation comment is a sampler hot loop — no per-iteration
    // allocation. Detected on the raw lines (the annotation is a comment,
    // which `strip_source` blanks).
    let mut pending_hot = false;
    let mut hot_depth = 0usize;
    for (idx, line) in stripped.lines().enumerate() {
        if hot_depth == 0 && raw_lines.get(idx).is_some_and(|l| l.contains("qlrb-hot:")) {
            pending_hot = true;
        }
        let mut in_hot = hot_depth > 0;
        if pending_hot || hot_depth > 0 {
            for b in line.bytes() {
                match b {
                    b'{' => {
                        hot_depth += 1;
                        pending_hot = false;
                        in_hot = true;
                    }
                    b'}' => {
                        hot_depth = hot_depth.saturating_sub(1);
                    }
                    _ => {}
                }
            }
        }
        if test_depth == 0 && line.contains("#[cfg(test") {
            pending_test_attr = true;
        }
        let mut in_test = test_depth > 0;
        if pending_test_attr || test_depth > 0 {
            for b in line.bytes() {
                match b {
                    b'{' => {
                        test_depth += 1;
                        pending_test_attr = false;
                        in_test = true;
                    }
                    b'}' => {
                        test_depth = test_depth.saturating_sub(1);
                    }
                    _ => {}
                }
            }
        }
        if in_test || pending_test_attr {
            continue;
        }

        let mut hit = |rule: &'static str, message: String| {
            if !allowed(idx, rule) {
                findings.push(Finding {
                    file: display.to_string(),
                    line: idx + 1,
                    rule,
                    message,
                });
            }
        };

        if scope.no_unwrap {
            for pat in [".unwrap()", ".expect(", "panic!("] {
                if line.contains(pat) {
                    hit(
                        "no-unwrap",
                        format!("`{pat}` in library code — return a Result instead"),
                    );
                }
            }
        }
        if scope.no_wallclock {
            for pat in ["Instant::now(", "SystemTime::now("] {
                if line.contains(pat) {
                    hit(
                        "no-wallclock",
                        format!("`{pat})` in the sampler substrate makes sweeps nondeterministic"),
                    );
                }
            }
        }
        for pat in ["thread_rng(", "from_entropy("] {
            if line.contains(pat) {
                hit(
                    "no-entropy",
                    format!(
                        "`{pat})` breaks seed-reproducibility — derive RNGs from explicit seeds"
                    ),
                );
            }
        }
        if in_hot {
            for pat in ["vec![", ".collect("] {
                if line.contains(pat) {
                    hit(
                        "no-hot-alloc",
                        format!(
                            "`{pat}` inside a `qlrb-hot` loop — hoist the allocation out of \
                             the per-iteration path"
                        ),
                    );
                }
            }
        }
    }
    findings
}

/// Checks one crate root for the `#![forbid(unsafe_code)]` attribute.
fn check_forbid_unsafe(display: &str, src: &str) -> Vec<Finding> {
    if src.contains("#![forbid(unsafe_code)]") {
        Vec::new()
    } else {
        vec![Finding {
            file: display.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        }]
    }
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ → workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut crates: Vec<String> = std::fs::read_dir(root.join("crates"))
        .map(|it| {
            it.filter_map(|e| e.ok())
                .filter(|e| e.path().is_dir())
                .filter_map(|e| e.file_name().into_string().ok())
                .collect()
        })
        .unwrap_or_default();
    crates.sort();

    for name in &crates {
        if SKIP_CRATES.contains(&name.as_str()) {
            // Still hold drivers to the unsafe ban.
            for rootfile in ["src/lib.rs", "src/main.rs"] {
                let path = root.join("crates").join(name).join(rootfile);
                if let Ok(src) = std::fs::read_to_string(&path) {
                    findings.extend(check_forbid_unsafe(
                        &format!("crates/{name}/{rootfile}"),
                        &src,
                    ));
                }
            }
            continue;
        }
        let scope = scope_for(name);
        let mut files = Vec::new();
        rust_files(&root.join("crates").join(name).join("src"), &mut files);
        for path in files {
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            let display = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            if path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") {
                findings.extend(check_forbid_unsafe(&display, &src));
            }
            findings.extend(scan_source(&display, scope, &src));
        }
    }

    // The facade crate root re-exports the workspace; hold it to the same bar.
    if let Ok(src) = std::fs::read_to_string(root.join("src/lib.rs")) {
        findings.extend(check_forbid_unsafe("src/lib.rs", &src));
    }
    findings
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        );
    }
    out.push(']');
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let cmd = args.iter().find(|a| !a.starts_with("--"));
    if cmd.map(String::as_str) != Some("lint") {
        eprintln!("usage: cargo run -p xtask -- lint [--json]");
        return ExitCode::from(2);
    }

    let findings = lint_workspace(&workspace_root());
    if json {
        println!("{}", render_json(&findings));
    } else if findings.is_empty() {
        println!("xtask lint: clean");
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        println!("xtask lint: {} finding(s)", findings.len());
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: Scope = Scope {
        no_unwrap: true,
        no_wallclock: false,
    };
    const ANNEAL: Scope = Scope {
        no_unwrap: true,
        no_wallclock: true,
    };

    #[test]
    fn seeded_unwrap_violation_fails_the_lint() {
        // The acceptance demo: a library file with a bare unwrap is refused.
        let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        let findings = scan_source("crates/core/src/x.rs", LIB, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-unwrap");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn expect_and_panic_also_fire() {
        let src = "fn f() {\n    g().expect(\"x\");\n    panic!(\"y\");\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        let rules: Vec<_> = findings.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(rules, vec![("no-unwrap", 2), ("no-unwrap", 3)]);
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        super::f();\n        None::<u32>.unwrap();\n    }\n}\n";
        assert!(scan_source("f.rs", LIB, src).is_empty());
    }

    #[test]
    fn code_after_a_test_block_is_scanned_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\npub fn g(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 7);
    }

    #[test]
    fn allow_comment_suppresses_same_and_previous_line() {
        let same = "fn f() {\n    g().unwrap(); // qlrb-lint: allow(no-unwrap)\n}\n";
        assert!(scan_source("f.rs", LIB, same).is_empty());
        let prev = "fn f() {\n    // qlrb-lint: allow(no-unwrap)\n    g().unwrap();\n}\n";
        assert!(scan_source("f.rs", LIB, prev).is_empty());
        let wrong_rule = "fn f() {\n    g().unwrap(); // qlrb-lint: allow(no-entropy)\n}\n";
        assert_eq!(scan_source("f.rs", LIB, wrong_rule).len(), 1);
    }

    #[test]
    fn allow_file_exempts_the_whole_file() {
        let src =
            "// qlrb-lint: allow-file(no-unwrap)\nfn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n";
        assert!(scan_source("f.rs", LIB, src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "fn f() {\n    let s = \".unwrap()\";\n    // calls .unwrap() somewhere\n    /* panic!(...) */\n    let c = '\\n';\n    let r = r#\"thread_rng()\"#;\n}\n";
        assert!(scan_source("f.rs", LIB, src).is_empty());
    }

    #[test]
    fn entropy_rule_fires_everywhere() {
        let src = "fn f() {\n    let mut rng = rand::thread_rng();\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        assert_eq!(findings[0].rule, "no-entropy");
        // from_entropy too, and also in non-lib scopes.
        let src2 = "fn f() {\n    let r = SmallRng::from_entropy();\n}\n";
        let none_scope = Scope {
            no_unwrap: false,
            no_wallclock: false,
        };
        assert_eq!(scan_source("f.rs", none_scope, src2)[0].rule, "no-entropy");
    }

    #[test]
    fn wallclock_rule_is_scoped_to_the_sampler_substrate() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let findings = scan_source("crates/anneal/src/sa.rs", ANNEAL, src);
        assert_eq!(findings[0].rule, "no-wallclock");
        assert!(scan_source("crates/classical/src/kk.rs", LIB, src).is_empty());
    }

    #[test]
    fn hot_alloc_rule_fires_inside_annotated_loops() {
        let src = "fn f() {\n    // qlrb-hot: per-proposal loop\n    for v in 0..n {\n        let x = vec![0u8; 4];\n        let y: Vec<u32> = it.collect();\n    }\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        let rules: Vec<_> = findings.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(rules, vec![("no-hot-alloc", 4), ("no-hot-alloc", 5)]);
    }

    #[test]
    fn hot_alloc_rule_ends_with_the_annotated_block() {
        let src = "fn f() {\n    // qlrb-hot: inner loop\n    for v in 0..n {\n        g(v);\n    }\n    let after = vec![0u8; 4];\n}\n";
        assert!(scan_source("f.rs", LIB, src).is_empty());
        // Allocation before any annotation never fires either.
        let before = "fn f() {\n    let b = vec![1, 2, 3];\n}\n";
        assert!(scan_source("f.rs", LIB, before).is_empty());
    }

    #[test]
    fn hot_alloc_rule_respects_allow_comments() {
        let src = "fn f() {\n    // qlrb-hot: inner loop\n    for v in 0..n {\n        // qlrb-lint: allow(no-hot-alloc)\n        let x = vec![0u8; 4];\n    }\n}\n";
        assert!(scan_source("f.rs", LIB, src).is_empty());
    }

    #[test]
    fn hot_alloc_rule_covers_nested_blocks() {
        let src = "fn f() {\n    // qlrb-hot: scan\n    for v in 0..n {\n        if v > 0 {\n            let x = items.collect();\n        }\n    }\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-hot-alloc");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots() {
        assert!(check_forbid_unsafe("l.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty());
        let findings = check_forbid_unsafe("l.rs", "pub fn f() {}\n");
        assert_eq!(findings[0].rule, "forbid-unsafe");
    }

    #[test]
    fn scope_table_matches_layout() {
        assert!(scope_for("core").no_unwrap);
        assert!(scope_for("anneal").no_wallclock);
        assert!(!scope_for("classical").no_wallclock);
        assert!(!scope_for("bench").no_unwrap);
    }

    #[test]
    fn json_output_is_machine_readable() {
        let findings = vec![Finding {
            file: "a \"b\".rs".into(),
            line: 3,
            rule: "no-unwrap",
            message: "m".into(),
        }];
        let js = render_json(&findings);
        assert_eq!(
            js,
            "[{\"file\": \"a \\\"b\\\".rs\", \"line\": 3, \"rule\": \"no-unwrap\", \"message\": \"m\"}]"
        );
        assert_eq!(render_json(&[]), "[]");
    }

    #[test]
    fn workspace_is_lint_clean() {
        // The CI gate, enforced from `cargo test` as well: the real tree has
        // zero findings. If this fails, run `cargo run -p xtask -- lint` for
        // the list.
        let findings = lint_workspace(&workspace_root());
        assert!(
            findings.is_empty(),
            "workspace lint findings: {findings:#?}"
        );
    }
}
