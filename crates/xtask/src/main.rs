#![forbid(unsafe_code)]
//! `cargo run -p xtask -- lint` — workspace-invariant source linter.
//!
//! Enforces repo-specific invariants that `clippy` cannot express (see
//! DESIGN.md §Static analysis). Rules:
//!
//! * `no-unwrap` — no `.unwrap()`, `.expect(…)`, or `panic!(…)` in library
//!   crates outside `#[cfg(test)]` items. Library callers get `Result`s;
//!   panicking is reserved for drivers and tests.
//! * `no-wallclock` — no `Instant::now()` / `SystemTime::now()` inside
//!   `crates/anneal`: wall-clock reads in the sampler substrate would make
//!   sweep behaviour (and therefore solve results) machine-dependent.
//! * `no-entropy` — no `thread_rng()` / `from_entropy()` anywhere: every
//!   random stream must derive from an explicit seed so experiment runs are
//!   reproducible bit-for-bit.
//! * `forbid-unsafe` — every crate root carries `#![forbid(unsafe_code)]`.
//! * `no-hot-alloc` — no `vec![…]` / `.collect(…)` inside a block annotated
//!   with a `// qlrb-hot:` comment (the sampler kernels' per-proposal
//!   loops): per-iteration allocation is exactly what the batched kernels
//!   exist to avoid. The rule covers the block opened by the first `{`
//!   after the annotation.
//!
//! Determinism-hazard rules, scoped to the solver-path crates (`core`,
//! `model`, `anneal`, `classical`, `harness`) whose outputs must replay
//! bit-for-bit (DESIGN.md §Determinism audit):
//!
//! * `unordered-iteration` — no `HashMap` / `HashSet` in the solver path:
//!   their iteration order is randomized per process and leaks into plans,
//!   energies, telemetry, and RNG consumption the moment anyone iterates.
//!   Use `BTreeMap` / `BTreeSet`, or sort before iterating; an allow needs
//!   a justification that order never escapes.
//! * `float-reduce-order` — no float accumulation (`.sum()`, `.reduce(…)`,
//!   `.fold(…)`, `.product(…)`) inside a rayon parallel-iterator statement:
//!   float addition is non-associative, so the reduction tree shape — which
//!   rayon picks per run — changes the result. Document a fixed reduction
//!   tree with a `// qlrb-float-order:` comment, or reduce sequentially.
//! * `ambient-parallelism` — no `thread::spawn` / `rayon::scope` /
//!   `ThreadPoolBuilder` in the solver path: scheduling must flow through
//!   the harness's sanctioned entry points so replay order is fixed.
//! * `thread-id-leak` — no `thread::current()` / `ThreadId` /
//!   `current_thread_index()`: a scheduler-dependent identity that reaches
//!   a seed, an ordering, or a trace breaks replay. Derive identity from
//!   (wave, slot) indices instead.
//!
//! Suppressions, always with a justification in the surrounding comment:
//!
//! * `// qlrb-lint: allow(<rule>[, <rule>…])` on the offending line or the
//!   line above;
//! * `// qlrb-lint: allow-file(<rule>[, <rule>…])` anywhere in a file to
//!   exempt the whole file (used by the harness, whose job is to abort
//!   loudly).
//!
//! A directive naming an unknown rule is itself a finding
//! (`invalid-allow`), so typos cannot silently disable enforcement.
//!
//! `--json` emits machine-readable findings in the shared
//! `{errors, warnings, diagnostics}` schema of
//! [`qlrb_analyze::render_findings_json`] — the same document shape
//! `qlrb lint --json` produces. Exit status: 0 clean, 1 findings,
//! 2 usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qlrb_analyze::{render_findings_json, FlatDiagnostic};

/// Crates whose `src/` trees are library code: `no-unwrap` + `no-entropy`.
const LIB_CRATES: &[&str] = &[
    "analyze",
    "anneal",
    "chameleon-sim",
    "classical",
    "core",
    "harness",
    "model",
    "samoa-mini",
    "server",
    "telemetry",
    "workloads",
];

/// Crates additionally under `no-wallclock` (the sampler substrate).
const WALLCLOCK_CRATES: &[&str] = &["anneal"];

/// Crates whose outputs feed plans, energies, or telemetry and therefore
/// carry the determinism-hazard rules (`unordered-iteration`,
/// `float-reduce-order`, `ambient-parallelism`, `thread-id-leak`).
const SOLVER_PATH_CRATES: &[&str] = &["anneal", "classical", "core", "harness", "model"];

/// Crates exempt from source scanning (drivers and this linter itself).
const SKIP_CRATES: &[&str] = &["bench", "xtask"];

/// Every rule an allow directive may name. A directive naming anything
/// else is an `invalid-allow` finding.
const KNOWN_RULES: &[&str] = &[
    "ambient-parallelism",
    "float-reduce-order",
    "forbid-unsafe",
    "no-entropy",
    "no-hot-alloc",
    "no-unwrap",
    "no-wallclock",
    "thread-id-leak",
    "unordered-iteration",
];

#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

/// Which rule set applies to a file, derived from its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scope {
    no_unwrap: bool,
    no_wallclock: bool,
    solver_path: bool,
}

fn scope_for(crate_name: &str) -> Scope {
    Scope {
        no_unwrap: LIB_CRATES.contains(&crate_name),
        no_wallclock: WALLCLOCK_CRATES.contains(&crate_name),
        solver_path: SOLVER_PATH_CRATES.contains(&crate_name),
    }
}

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/// Replaces comment and literal contents with spaces, preserving line
/// structure, so rule patterns never match inside strings, chars, or
/// comments (including doc comments).
fn strip_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. /// and //!): blank to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting-aware.
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        out.push(b' ');
                        i += 1;
                        if i < bytes.len() {
                            out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                            i += 1;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
                if i < bytes.len() {
                    out.push(b'"');
                    i += 1;
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                // Raw string r"…" / r#"…"# / r##"…"## (also br…, matched via r).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    out.extend_from_slice(&vec![b' '; j + 1 - start]);
                    i = j + 1;
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let mut k = i + 1;
                            let mut h = 0usize;
                            while h < hashes && bytes.get(k) == Some(&b'#') {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                out.extend_from_slice(&vec![b' '; k - i]);
                                i = k;
                                break 'raw;
                            }
                        }
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else {
                    // `r` identifier prefix, not a raw string (e.g. `r#ident`).
                    out.push(b'r');
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // bytes (`'x'`, `'\n'`, `'\u{1F600}'` is longer — scan ahead
                // bounded); a lifetime never has a closing quote nearby.
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' && j - i < 12 {
                        j += 1;
                    }
                } else if j < bytes.len() {
                    // One (possibly multi-byte) char.
                    j += 1;
                    while j < bytes.len() && bytes[j] & 0b1100_0000 == 0b1000_0000 {
                        j += 1;
                    }
                }
                if bytes.get(j) == Some(&b'\'') {
                    out.extend_from_slice(&vec![b' '; j + 1 - i]);
                    i = j + 1;
                } else {
                    out.push(b'\''); // lifetime marker
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

// ---------------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------------

/// Parses every `<directive>rule[, rule…])` group on `line` into rule
/// names. Comma-separated lists share one directive:
/// `// qlrb-lint: allow(no-unwrap, no-entropy)`.
fn allows_on(line: &str, directive: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find(directive) {
        rest = &rest[pos + directive.len()..];
        if let Some(end) = rest.find(')') {
            rules.extend(
                rest[..end]
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty()),
            );
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    rules
}

/// Findings for allow directives naming rules that do not exist: a typo in
/// a suppression must fail the lint, not silently disable it.
fn check_allow_names(display: &str, raw_lines: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, raw) in raw_lines.iter().enumerate() {
        for directive in ["qlrb-lint: allow(", "qlrb-lint: allow-file("] {
            for rule in allows_on(raw, directive) {
                if !KNOWN_RULES.contains(&rule.as_str()) {
                    findings.push(Finding {
                        file: display.to_string(),
                        line: idx + 1,
                        rule: "invalid-allow",
                        message: format!(
                            "unknown rule '{rule}' in `{directive}…)` — known rules: {}",
                            KNOWN_RULES.join(", ")
                        ),
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

/// Scans one file's source. `display` is the path used in findings.
fn scan_source(display: &str, scope: Scope, src: &str) -> Vec<Finding> {
    let stripped = strip_source(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let file_allows: Vec<String> = raw_lines
        .iter()
        .flat_map(|l| allows_on(l, "qlrb-lint: allow-file("))
        .collect();
    let line_allows: Vec<Vec<String>> = raw_lines
        .iter()
        .map(|l| allows_on(l, "qlrb-lint: allow("))
        .collect();
    let allowed = |idx: usize, rule: &str| -> bool {
        file_allows.iter().any(|r| r == rule)
            || line_allows[idx].iter().any(|r| r == rule)
            || (idx > 0 && line_allows[idx - 1].iter().any(|r| r == rule))
    };

    let mut findings = check_allow_names(display, &raw_lines);
    // `#[cfg(test)]` handling: after the attribute, skip from the first `{`
    // until its matching `}` (covers `mod tests { … }` and gated items).
    let mut pending_test_attr = false;
    let mut test_depth = 0usize;
    // `qlrb-hot` regions: the block opened by the first `{` after the
    // annotation comment is a sampler hot loop — no per-iteration
    // allocation. Detected on the raw lines (the annotation is a comment,
    // which `strip_source` blanks).
    let mut pending_hot = false;
    let mut hot_depth = 0usize;
    // `float-reduce-order` statement regions: from a rayon
    // parallel-iterator pattern to the `;` that ends the statement,
    // tracked by net bracket depth relative to the region start (inner
    // closure bodies keep the region open).
    let mut par_region = false;
    let mut par_depth: i64 = 0;
    for (idx, line) in stripped.lines().enumerate() {
        if hot_depth == 0 && raw_lines.get(idx).is_some_and(|l| l.contains("qlrb-hot:")) {
            pending_hot = true;
        }
        let mut in_hot = hot_depth > 0;
        if pending_hot || hot_depth > 0 {
            for b in line.bytes() {
                match b {
                    b'{' => {
                        hot_depth += 1;
                        pending_hot = false;
                        in_hot = true;
                    }
                    b'}' => {
                        hot_depth = hot_depth.saturating_sub(1);
                    }
                    _ => {}
                }
            }
        }
        if test_depth == 0 && line.contains("#[cfg(test") {
            pending_test_attr = true;
        }
        let mut in_test = test_depth > 0;
        if pending_test_attr || test_depth > 0 {
            for b in line.bytes() {
                match b {
                    b'{' => {
                        test_depth += 1;
                        pending_test_attr = false;
                        in_test = true;
                    }
                    b'}' => {
                        test_depth = test_depth.saturating_sub(1);
                    }
                    _ => {}
                }
            }
        }
        let mut line_in_par = par_region;
        if scope.solver_path {
            const PAR_PATTERNS: &[&str] = &[
                ".par_iter(",
                ".par_iter_mut(",
                ".into_par_iter(",
                ".par_chunks(",
                ".par_chunks_mut(",
                ".par_bridge(",
            ];
            if !par_region && PAR_PATTERNS.iter().any(|p| line.contains(p)) {
                par_region = true;
                par_depth = 0;
                line_in_par = true;
            }
            if par_region {
                for b in line.bytes() {
                    match b {
                        b'(' | b'[' | b'{' => par_depth += 1,
                        b')' | b']' | b'}' => par_depth -= 1,
                        b';' if par_depth <= 0 => par_region = false,
                        _ => {}
                    }
                }
            }
        }
        if in_test || pending_test_attr {
            continue;
        }

        let mut hit = |rule: &'static str, message: String| {
            if !allowed(idx, rule) {
                findings.push(Finding {
                    file: display.to_string(),
                    line: idx + 1,
                    rule,
                    message,
                });
            }
        };

        if scope.no_unwrap {
            for pat in [".unwrap()", ".expect(", "panic!("] {
                if line.contains(pat) {
                    hit(
                        "no-unwrap",
                        format!("`{pat}` in library code — return a Result instead"),
                    );
                }
            }
        }
        if scope.no_wallclock {
            for pat in ["Instant::now(", "SystemTime::now("] {
                if line.contains(pat) {
                    hit(
                        "no-wallclock",
                        format!("`{pat})` in the sampler substrate makes sweeps nondeterministic"),
                    );
                }
            }
        }
        for pat in ["thread_rng(", "from_entropy("] {
            if line.contains(pat) {
                hit(
                    "no-entropy",
                    format!(
                        "`{pat})` breaks seed-reproducibility — derive RNGs from explicit seeds"
                    ),
                );
            }
        }
        if in_hot {
            for pat in ["vec![", ".collect("] {
                if line.contains(pat) {
                    hit(
                        "no-hot-alloc",
                        format!(
                            "`{pat}` inside a `qlrb-hot` loop — hoist the allocation out of \
                             the per-iteration path"
                        ),
                    );
                }
            }
        }
        if scope.solver_path {
            for pat in ["HashMap", "HashSet"] {
                if line.contains(pat) {
                    hit(
                        "unordered-iteration",
                        format!(
                            "`{pat}` in the solver path — its iteration order is randomized \
                             per process and can reach plans, energies, telemetry, or RNG \
                             streams; use BTreeMap/BTreeSet or sort before iterating"
                        ),
                    );
                }
            }
            for pat in [
                "thread::spawn(",
                "rayon::spawn(",
                "rayon::scope(",
                "ThreadPoolBuilder",
            ] {
                if line.contains(pat) {
                    hit(
                        "ambient-parallelism",
                        format!(
                            "`{pat}` spawns ambient parallelism in the solver path — \
                             scheduling must flow through the harness's sanctioned entry \
                             points so replay order is fixed"
                        ),
                    );
                }
            }
            for pat in ["thread::current(", "ThreadId", "current_thread_index("] {
                if line.contains(pat) {
                    hit(
                        "thread-id-leak",
                        format!(
                            "`{pat}` leaks a scheduler-dependent thread identity into the \
                             solver path — derive per-read identity from (wave, slot) \
                             indices instead"
                        ),
                    );
                }
            }
            // A `// qlrb-float-order:` comment on the line or the line
            // above documents a fixed reduction tree and satisfies the
            // rule (the comment itself is the justification).
            let float_order_documented = raw_lines
                .get(idx)
                .is_some_and(|l| l.contains("qlrb-float-order:"))
                || (idx > 0
                    && raw_lines
                        .get(idx - 1)
                        .is_some_and(|l| l.contains("qlrb-float-order:")));
            if line_in_par && !float_order_documented {
                for pat in [
                    ".sum::<f64",
                    ".sum::<f32",
                    ".sum()",
                    ".product(",
                    ".reduce(",
                    ".fold(",
                ] {
                    if line.contains(pat) {
                        hit(
                            "float-reduce-order",
                            format!(
                                "`{pat}` inside a rayon parallel iterator — float addition \
                                 is non-associative, so the reduction tree rayon picks per \
                                 run changes the result; document a fixed tree with \
                                 `// qlrb-float-order:` or reduce sequentially"
                            ),
                        );
                    }
                }
            }
        }
    }
    findings
}

/// Checks one crate root for the `#![forbid(unsafe_code)]` attribute.
fn check_forbid_unsafe(display: &str, src: &str) -> Vec<Finding> {
    if src.contains("#![forbid(unsafe_code)]") {
        Vec::new()
    } else {
        vec![Finding {
            file: display.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        }]
    }
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ → workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut crates: Vec<String> = std::fs::read_dir(root.join("crates"))
        .map(|it| {
            it.filter_map(|e| e.ok())
                .filter(|e| e.path().is_dir())
                .filter_map(|e| e.file_name().into_string().ok())
                .collect()
        })
        .unwrap_or_default();
    crates.sort();

    for name in &crates {
        if SKIP_CRATES.contains(&name.as_str()) {
            // Still hold drivers to the unsafe ban.
            for rootfile in ["src/lib.rs", "src/main.rs"] {
                let path = root.join("crates").join(name).join(rootfile);
                if let Ok(src) = std::fs::read_to_string(&path) {
                    findings.extend(check_forbid_unsafe(
                        &format!("crates/{name}/{rootfile}"),
                        &src,
                    ));
                }
            }
            continue;
        }
        let scope = scope_for(name);
        let mut files = Vec::new();
        rust_files(&root.join("crates").join(name).join("src"), &mut files);
        for path in files {
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            let display = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            if path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") {
                findings.extend(check_forbid_unsafe(&display, &src));
            }
            findings.extend(scan_source(&display, scope, &src));
        }
    }

    // The facade crate root re-exports the workspace; hold it to the same bar.
    if let Ok(src) = std::fs::read_to_string(root.join("src/lib.rs")) {
        findings.extend(check_forbid_unsafe("src/lib.rs", &src));
    }
    findings
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

/// Renders findings into the flat schema shared with `qlrb lint --json`
/// (one serializer, one schema; see `qlrb_analyze::FlatDiagnostic`).
/// Source findings are all errors — the lint gate is binary.
fn to_flat(findings: &[Finding]) -> Vec<FlatDiagnostic> {
    findings
        .iter()
        .map(|f| FlatDiagnostic {
            rule: f.rule.to_string(),
            severity: "error".to_string(),
            span: format!("{}:{}", f.file, f.line),
            message: f.message.clone(),
            suggestion: None,
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let cmd = args.iter().find(|a| !a.starts_with("--"));
    if cmd.map(String::as_str) != Some("lint") {
        eprintln!("usage: cargo run -p xtask -- lint [--json]");
        return ExitCode::from(2);
    }

    let findings = lint_workspace(&workspace_root());
    if json {
        println!("{}", render_findings_json(&to_flat(&findings)));
    } else if findings.is_empty() {
        println!("xtask lint: clean");
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        println!("xtask lint: {} finding(s)", findings.len());
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: Scope = Scope {
        no_unwrap: true,
        no_wallclock: false,
        solver_path: false,
    };
    const ANNEAL: Scope = Scope {
        no_unwrap: true,
        no_wallclock: true,
        solver_path: true,
    };
    const SOLVER: Scope = Scope {
        no_unwrap: true,
        no_wallclock: false,
        solver_path: true,
    };

    #[test]
    fn seeded_unwrap_violation_fails_the_lint() {
        // The acceptance demo: a library file with a bare unwrap is refused.
        let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        let findings = scan_source("crates/core/src/x.rs", LIB, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-unwrap");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn expect_and_panic_also_fire() {
        let src = "fn f() {\n    g().expect(\"x\");\n    panic!(\"y\");\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        let rules: Vec<_> = findings.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(rules, vec![("no-unwrap", 2), ("no-unwrap", 3)]);
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        super::f();\n        None::<u32>.unwrap();\n    }\n}\n";
        assert!(scan_source("f.rs", LIB, src).is_empty());
    }

    #[test]
    fn code_after_a_test_block_is_scanned_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\npub fn g(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 7);
    }

    #[test]
    fn allow_comment_suppresses_same_and_previous_line() {
        let same = "fn f() {\n    g().unwrap(); // qlrb-lint: allow(no-unwrap)\n}\n";
        assert!(scan_source("f.rs", LIB, same).is_empty());
        let prev = "fn f() {\n    // qlrb-lint: allow(no-unwrap)\n    g().unwrap();\n}\n";
        assert!(scan_source("f.rs", LIB, prev).is_empty());
        let wrong_rule = "fn f() {\n    g().unwrap(); // qlrb-lint: allow(no-entropy)\n}\n";
        assert_eq!(scan_source("f.rs", LIB, wrong_rule).len(), 1);
    }

    #[test]
    fn allow_file_exempts_the_whole_file() {
        let src =
            "// qlrb-lint: allow-file(no-unwrap)\nfn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n";
        assert!(scan_source("f.rs", LIB, src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "fn f() {\n    let s = \".unwrap()\";\n    // calls .unwrap() somewhere\n    /* panic!(...) */\n    let c = '\\n';\n    let r = r#\"thread_rng()\"#;\n}\n";
        assert!(scan_source("f.rs", LIB, src).is_empty());
    }

    #[test]
    fn entropy_rule_fires_everywhere() {
        let src = "fn f() {\n    let mut rng = rand::thread_rng();\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        assert_eq!(findings[0].rule, "no-entropy");
        // from_entropy too, and also in non-lib scopes.
        let src2 = "fn f() {\n    let r = SmallRng::from_entropy();\n}\n";
        let none_scope = Scope {
            no_unwrap: false,
            no_wallclock: false,
            solver_path: false,
        };
        assert_eq!(scan_source("f.rs", none_scope, src2)[0].rule, "no-entropy");
    }

    #[test]
    fn wallclock_rule_is_scoped_to_the_sampler_substrate() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let findings = scan_source("crates/anneal/src/sa.rs", ANNEAL, src);
        assert_eq!(findings[0].rule, "no-wallclock");
        assert!(scan_source("crates/classical/src/kk.rs", LIB, src).is_empty());
    }

    #[test]
    fn hot_alloc_rule_fires_inside_annotated_loops() {
        let src = "fn f() {\n    // qlrb-hot: per-proposal loop\n    for v in 0..n {\n        let x = vec![0u8; 4];\n        let y: Vec<u32> = it.collect();\n    }\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        let rules: Vec<_> = findings.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(rules, vec![("no-hot-alloc", 4), ("no-hot-alloc", 5)]);
    }

    #[test]
    fn hot_alloc_rule_ends_with_the_annotated_block() {
        let src = "fn f() {\n    // qlrb-hot: inner loop\n    for v in 0..n {\n        g(v);\n    }\n    let after = vec![0u8; 4];\n}\n";
        assert!(scan_source("f.rs", LIB, src).is_empty());
        // Allocation before any annotation never fires either.
        let before = "fn f() {\n    let b = vec![1, 2, 3];\n}\n";
        assert!(scan_source("f.rs", LIB, before).is_empty());
    }

    #[test]
    fn hot_alloc_rule_respects_allow_comments() {
        let src = "fn f() {\n    // qlrb-hot: inner loop\n    for v in 0..n {\n        // qlrb-lint: allow(no-hot-alloc)\n        let x = vec![0u8; 4];\n    }\n}\n";
        assert!(scan_source("f.rs", LIB, src).is_empty());
    }

    #[test]
    fn hot_alloc_rule_covers_nested_blocks() {
        let src = "fn f() {\n    // qlrb-hot: scan\n    for v in 0..n {\n        if v > 0 {\n            let x = items.collect();\n        }\n    }\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-hot-alloc");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots() {
        assert!(check_forbid_unsafe("l.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty());
        let findings = check_forbid_unsafe("l.rs", "pub fn f() {}\n");
        assert_eq!(findings[0].rule, "forbid-unsafe");
    }

    #[test]
    fn scope_table_matches_layout() {
        assert!(scope_for("core").no_unwrap);
        assert!(scope_for("anneal").no_wallclock);
        assert!(!scope_for("classical").no_wallclock);
        assert!(!scope_for("bench").no_unwrap);
    }

    #[test]
    fn json_output_uses_the_shared_schema() {
        let findings = vec![Finding {
            file: "a \"b\".rs".into(),
            line: 3,
            rule: "no-unwrap",
            message: "m".into(),
        }];
        let js = render_findings_json(&to_flat(&findings));
        // Same document shape as `qlrb lint --json`: counts + a flat
        // diagnostics list with rule/severity/span/message/suggestion.
        assert!(js.contains("\"errors\": 1"), "{js}");
        assert!(js.contains("\"warnings\": 0"), "{js}");
        assert!(js.contains("\"rule\": \"no-unwrap\""), "{js}");
        assert!(js.contains("\"severity\": \"error\""), "{js}");
        assert!(js.contains("\"span\": \"a \\\"b\\\".rs:3\""), "{js}");
        assert!(js.contains("\"suggestion\": null"), "{js}");
        let empty = render_findings_json(&to_flat(&[]));
        assert!(empty.contains("\"errors\": 0"), "{empty}");
        assert!(empty.contains("\"diagnostics\": []"), "{empty}");
    }

    #[test]
    fn allow_directive_accepts_comma_separated_rules() {
        let src = "fn f() {\n    // qlrb-lint: allow(no-unwrap, no-entropy)\n    \
                   let r = thread_rng();\n    r.unwrap();\n}\n";
        // Both rules on the line after the directive are suppressed…
        let both = "fn f() {\n    // qlrb-lint: allow(no-unwrap, no-entropy)\n    \
                    thread_rng().unwrap();\n}\n";
        assert!(scan_source("f.rs", LIB, both).is_empty());
        // …but a single-rule directive still only covers its own rule.
        let findings = scan_source("f.rs", LIB, src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "no-unwrap");
        assert_eq!(
            allows_on(
                "// qlrb-lint: allow(no-unwrap, no-entropy)",
                "qlrb-lint: allow("
            ),
            vec!["no-unwrap".to_string(), "no-entropy".to_string()]
        );
    }

    #[test]
    fn unknown_rule_in_allow_directive_is_a_finding() {
        let src = "fn f() {\n    g(); // qlrb-lint: allow(no-unwarp)\n}\n";
        let findings = scan_source("f.rs", LIB, src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "invalid-allow");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("no-unwarp"));
        // allow-file directives are validated too, even inside tests.
        let file = "// qlrb-lint: allow-file(nonsense)\nfn f() {}\n";
        assert_eq!(scan_source("f.rs", LIB, file)[0].rule, "invalid-allow");
        // Valid names in a comma list produce no findings.
        let ok = "fn f() {\n    // qlrb-lint: allow(no-unwrap, no-hot-alloc)\n    g();\n}\n";
        assert!(scan_source("f.rs", LIB, ok).is_empty());
    }

    #[test]
    fn unordered_iteration_fires_in_the_solver_path_only() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {\n    \
                   for (k, v) in m {}\n}\n";
        let findings = scan_source("crates/core/src/x.rs", SOLVER, src);
        assert!(!findings.is_empty());
        assert!(findings.iter().all(|f| f.rule == "unordered-iteration"));
        assert_eq!(findings[0].line, 1);
        // Outside the solver path the rule is silent.
        assert!(scan_source("crates/telemetry/src/x.rs", LIB, src).is_empty());
        // HashSet too.
        let set = "fn f() {\n    let s = std::collections::HashSet::new();\n}\n";
        assert_eq!(
            scan_source("x.rs", SOLVER, set)[0].rule,
            "unordered-iteration"
        );
    }

    #[test]
    fn unordered_iteration_respects_allow_and_cfg_test() {
        let allowed = "// justification: order never escapes — drained into a sorted Vec.\n\
                       // qlrb-lint: allow(unordered-iteration)\n\
                       use std::collections::HashMap;\n";
        assert!(scan_source("x.rs", SOLVER, allowed).is_empty());
        let test_only = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    \
                         use std::collections::HashMap;\n    fn t() { let m = HashMap::new(); }\n}\n";
        assert!(scan_source("x.rs", SOLVER, test_only).is_empty());
    }

    #[test]
    fn float_reduce_order_fires_inside_par_statements() {
        let src = "fn f(xs: &[f64]) -> f64 {\n    xs.par_iter().map(|x| x * 2.0).sum::<f64>()\n}\n";
        let findings = scan_source("x.rs", SOLVER, src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "float-reduce-order");
        // Multi-line chains stay in the region until the statement ends.
        let multi = "fn f(xs: &[f64]) -> f64 {\n    let t = xs\n        .par_iter()\n        \
                     .map(|x| g(x))\n        .reduce(|| 0.0, |a, b| a + b);\n    t\n}\n";
        let findings = scan_source("x.rs", SOLVER, multi);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5);
        // A sequential sum after the par statement ended does not fire.
        let seq = "fn f(xs: &[f64]) -> f64 {\n    let v: Vec<f64> = xs.par_iter().map(|x| \
                   g(x)).collect();\n    v.iter().sum::<f64>()\n}\n";
        assert!(
            scan_source("x.rs", SOLVER, seq).is_empty(),
            "sequential sum is fine"
        );
        // Non-solver crates are out of scope.
        assert!(scan_source("x.rs", LIB, src).is_empty());
    }

    #[test]
    fn float_reduce_order_accepts_a_documented_tree() {
        let doc = "fn f(xs: &[f64]) -> f64 {\n    // qlrb-float-order: fixed two-level tree, \
                   chunk sums in index order\n    xs.par_iter().map(|x| x * 2.0).sum::<f64>()\n}\n";
        assert!(scan_source("x.rs", SOLVER, doc).is_empty());
        let allow = "fn f(xs: &[f64]) -> f64 {\n    // qlrb-lint: allow(float-reduce-order)\n    \
                     xs.par_iter().map(|x| x * 2.0).sum::<f64>()\n}\n";
        assert!(scan_source("x.rs", SOLVER, allow).is_empty());
    }

    #[test]
    fn ambient_parallelism_fires_on_spawns() {
        for (snippet, pat) in [
            (
                "fn f() {\n    std::thread::spawn(|| {});\n}\n",
                "thread::spawn(",
            ),
            (
                "fn f() {\n    rayon::ThreadPoolBuilder::new().build();\n}\n",
                "ThreadPoolBuilder",
            ),
            ("fn f() {\n    rayon::scope(|s| {});\n}\n", "rayon::scope("),
        ] {
            let findings = scan_source("x.rs", SOLVER, snippet);
            assert!(
                findings.iter().any(|f| f.rule == "ambient-parallelism"),
                "{pat} should fire: {findings:?}"
            );
        }
        // The sanctioned entry point carries an allow with justification.
        let allowed = "fn pool() {\n    // sanctioned entry point: the one pool the harness \
                       owns\n    // qlrb-lint: allow(ambient-parallelism)\n    \
                       rayon::ThreadPoolBuilder::new().build();\n}\n";
        assert!(scan_source("x.rs", SOLVER, allowed).is_empty());
        assert!(
            scan_source("x.rs", LIB, "fn f() {\n    std::thread::spawn(|| {});\n}\n").is_empty()
        );
    }

    #[test]
    fn thread_id_leak_fires_on_identity_reads() {
        for snippet in [
            "fn f() {\n    let id = std::thread::current().id();\n}\n",
            "fn f(id: std::thread::ThreadId) {}\n",
            "fn f() {\n    let i = rayon::current_thread_index();\n}\n",
        ] {
            let findings = scan_source("x.rs", SOLVER, snippet);
            assert!(
                findings.iter().any(|f| f.rule == "thread-id-leak"),
                "{snippet} should fire: {findings:?}"
            );
        }
        let test_only = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let id = \
                         std::thread::current().id(); }\n}\n";
        assert!(scan_source("x.rs", SOLVER, test_only).is_empty());
    }

    #[test]
    fn workspace_is_lint_clean() {
        // The CI gate, enforced from `cargo test` as well: the real tree has
        // zero findings. If this fails, run `cargo run -p xtask -- lint` for
        // the list.
        let findings = lint_workspace(&workspace_root());
        assert!(
            findings.is_empty(),
            "workspace lint findings: {findings:#?}"
        );
    }
}
