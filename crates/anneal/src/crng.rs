//! Counter-based RNG for the batched sampler kernels.
//!
//! The batched lanes need many independent, cheaply-derivable random
//! streams — one per lane, plus shared group streams for move ordering.
//! A counter-based generator gives exactly that: the state is a `(key,
//! counter)` pair, output `i` is a pure hash of `key + i`, and a sub-stream
//! is just a different key. No warm-up, no block buffer, and seeding costs
//! two multiplies instead of ChaCha's key schedule.
//!
//! The hash is splitmix64's finaliser, the same mixer `rand`'s own
//! `SeedableRng::seed_from_u64` uses. It passes the statistical bar for
//! annealing acceptance draws; it is **not** cryptographic. The legacy
//! scalar path keeps ChaCha8 untouched — [`CounterRng`] is consumed only by
//! the opt-in batched kernels, keyed on the same `(seed, read, attempt)`
//! derivation the scalar path already uses.

use rand::{RngCore, SeedableRng};

/// The 64-bit golden ratio, splitmix64's counter increment.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64's output finaliser: a bijective avalanche mix of one word.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A splitmix64-style counter RNG: output `i` of stream `key` is
/// `mix(key + (i + 1)·φ)`. Jump-free, clonable, and trivially splittable
/// into independent sub-streams via [`CounterRng::stream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
    counter: u64,
}

impl CounterRng {
    /// A generator for stream 0 of `key`.
    pub fn new(key: u64) -> Self {
        Self { key, counter: 0 }
    }

    /// An independent sub-stream: the stream id is avalanche-mixed into the
    /// key, so adjacent ids (lane 0, lane 1, …) land on unrelated streams.
    pub fn stream(key: u64, stream: u64) -> Self {
        Self {
            key: key ^ mix(stream.wrapping_add(1).wrapping_mul(GOLDEN)),
            counter: 0,
        }
    }

    /// Outputs drawn so far (the counter).
    pub fn draws(&self) -> u64 {
        self.counter
    }
}

impl RngCore for CounterRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        mix(self.key.wrapping_add(self.counter.wrapping_mul(GOLDEN)))
    }

    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl SeedableRng for CounterRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_counter_indexed() {
        let mut a = CounterRng::new(42);
        let mut b = CounterRng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_eq!(a.draws(), 8);
    }

    #[test]
    fn streams_are_distinct() {
        let mut s0 = CounterRng::stream(7, 0);
        let mut s1 = CounterRng::stream(7, 1);
        let mut base = CounterRng::new(7);
        let a = s0.next_u64();
        let b = s1.next_u64();
        let c = base.next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn uniform_f64_is_in_unit_interval() {
        let mut rng = CounterRng::new(3);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_covers_odd_lengths() {
        let mut rng = CounterRng::new(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is ~2^-104");
    }

    #[test]
    fn bits_look_balanced() {
        // Crude avalanche check: over 4096 draws, each bit position is set
        // roughly half the time.
        let mut rng = CounterRng::new(0);
        let mut ones = [0u32; 64];
        for _ in 0..4096 {
            let x = rng.next_u64();
            for (i, c) in ones.iter_mut().enumerate() {
                *c += ((x >> i) & 1) as u32;
            }
        }
        for (i, &c) in ones.iter().enumerate() {
            assert!(
                (1500..=2600).contains(&c),
                "bit {i} set {c}/4096 times — badly biased"
            );
        }
    }
}
