//! Parallel tempering (replica exchange) — a portfolio extension.
//!
//! `R` walkers run Metropolis sweeps at fixed inverse temperatures along a
//! geometric ladder; after every sweep, adjacent temperature pairs attempt a
//! configuration swap with the standard acceptance
//! `min(1, exp(Δβ · ΔE))`. Hot walkers roam, cold walkers exploit, and
//! swaps carry discoveries down the ladder — often stronger than plain SA on
//! rugged landscapes like the penalized LRP objective. Not part of the
//! paper's solver; provided as an ablation/extension of the hybrid
//! portfolio.

use qlrb_model::eval::Evaluator;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::sa::AnnealResult;

/// Parallel tempering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtParams {
    /// Number of temperature rungs (≥ 2).
    pub replicas: usize,
    /// Sweeps (each sweep = one Metropolis pass per rung + one swap phase).
    pub sweeps: usize,
    /// Coldest inverse temperature.
    pub beta_max: f64,
    /// Hottest inverse temperature.
    pub beta_min: f64,
    /// Cache resync cadence.
    pub resync_interval: usize,
}

impl Default for PtParams {
    fn default() -> Self {
        Self {
            replicas: 8,
            sweeps: 400,
            beta_max: 50.0,
            beta_min: 0.2,
            resync_interval: 128,
        }
    }
}

/// Runs parallel tempering from the prototype's current state (all rungs
/// start there). Returns the best state seen at any rung.
pub fn parallel_tempering<E: Evaluator + Clone>(
    proto: &E,
    params: &PtParams,
    rng: &mut impl Rng,
) -> AnnealResult {
    let n = proto.num_vars();
    let r = params.replicas.max(2);
    let mut best_state = proto.state().to_vec();
    let mut best_energy = proto.energy();
    let mut accepted = 0u64;
    if n == 0 || params.sweeps == 0 {
        return AnnealResult {
            state: best_state,
            energy: best_energy,
            accepted,
        };
    }
    // Geometric ladder, coldest first.
    let ratio = (params.beta_min / params.beta_max).powf(1.0 / (r - 1) as f64);
    let betas: Vec<f64> = (0..r)
        .map(|i| params.beta_max * ratio.powi(i as i32))
        .collect();
    let mut walkers: Vec<E> = (0..r).map(|_| proto.clone()).collect();

    // Proposals come from the active set only (cf. `sa`): presolve-fixed
    // variables have identically-zero flip deltas.
    let mut order: Vec<usize> = match proto.active_vars() {
        Some(active) => active.to_vec(),
        None => (0..n).collect(),
    };
    if order.is_empty() {
        return AnnealResult {
            state: best_state,
            energy: best_energy,
            accepted,
        };
    }
    let proposals = order.len();
    let mut accept_u: Vec<f64> = Vec::with_capacity(proposals);
    for sweep in 0..params.sweeps {
        for (walker, &beta) in walkers.iter_mut().zip(&betas) {
            order.shuffle(rng);
            // Batched acceptance uniforms, one per proposal (cf. `sa`).
            accept_u.clear();
            accept_u.extend((0..proposals).map(|_| rng.random::<f64>()));
            for (i, &v) in order.iter().enumerate() {
                let delta = walker.flip_delta(v);
                let accept = delta <= 0.0 || {
                    let x = -beta * delta;
                    x > -60.0 && accept_u[i] < x.exp()
                };
                if accept {
                    walker.flip_known(v, delta);
                    accepted += 1;
                }
            }
            if walker.energy() < best_energy {
                best_energy = walker.energy();
                best_state.clear();
                best_state.extend_from_slice(walker.state());
            }
        }
        // Swap phase: adjacent rungs, alternating parity to avoid bias.
        let start = sweep % 2;
        for a in (start..r - 1).step_by(2) {
            let (ea, eb) = (walkers[a].energy(), walkers[a + 1].energy());
            let arg = (betas[a] - betas[a + 1]) * (ea - eb);
            let accept = arg >= 0.0 || (arg > -60.0 && rng.random::<f64>() < arg.exp());
            if accept {
                // Swap configurations by swapping the evaluators themselves.
                walkers.swap(a, a + 1);
            }
        }
        if params.resync_interval > 0 && (sweep + 1) % params.resync_interval == 0 {
            for w in &mut walkers {
                w.resync();
            }
        }
    }
    for w in &mut walkers {
        w.resync();
        if w.energy() < best_energy {
            best_energy = w.energy();
            best_state.clear();
            best_state.extend_from_slice(w.state());
        }
    }
    AnnealResult {
        state: best_state,
        energy: best_energy,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_model::bqm::BinaryQuadraticModel;
    use qlrb_model::eval::BqmEvaluator;
    use qlrb_model::Var;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn rugged() -> (BinaryQuadraticModel, Vec<u8>) {
        // All-ones is the deep minimum behind a +1 single-flip barrier.
        let n = 8;
        let mut bqm = BinaryQuadraticModel::new(n);
        for i in 0..n as u32 {
            bqm.add_linear(Var(i), 1.0);
        }
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                bqm.add_quadratic(Var(i), Var(j), -0.8);
            }
        }
        (bqm, vec![1; n])
    }

    #[test]
    fn crosses_barriers_to_ground_state() {
        let (bqm, ground) = rugged();
        let ground_e = bqm.energy(&ground);
        let ev = BqmEvaluator::new(Arc::new(bqm));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let res = parallel_tempering(&ev, &PtParams::default(), &mut rng);
        assert_eq!(res.state, ground);
        assert!((res.energy - ground_e).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let (bqm, _) = rugged();
        let model = Arc::new(bqm);
        let run = || {
            let ev = BqmEvaluator::new(Arc::clone(&model));
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
            parallel_tempering(
                &ev,
                &PtParams {
                    sweeps: 60,
                    ..Default::default()
                },
                &mut rng,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.state, b.state);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn zero_sweeps_identity() {
        let (bqm, _) = rugged();
        let ev = BqmEvaluator::new(Arc::new(bqm));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let res = parallel_tempering(
            &ev,
            &PtParams {
                sweeps: 0,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(res.state, vec![0; 8]);
        assert_eq!(res.accepted, 0);
    }

    #[test]
    fn ladder_is_geometric_and_ordered() {
        // Indirect check through behaviour: with beta_min == beta_max all
        // rungs are identical, so swaps are always accepted and the result
        // is still well-formed.
        let (bqm, _) = rugged();
        let ev = BqmEvaluator::new(Arc::new(bqm));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let res = parallel_tempering(
            &ev,
            &PtParams {
                beta_min: 5.0,
                beta_max: 5.0,
                sweeps: 50,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(res.state.len(), 8);
    }
}
