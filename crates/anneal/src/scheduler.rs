//! Adaptive portfolio scheduler: convergence-based early termination,
//! bandit-style read allocation, and elite cross-seeding for
//! [`crate::hybrid::HybridCqmSolver`].
//!
//! The scheduler replaces the fixed round-robin wave loop with a feedback
//! loop: after every wave it observes what each portfolio member achieved
//! (feasible hits, energy improvement, proposals spent) and decides
//!
//! 1. whether to stop — the best incumbent has plateaued for
//!    [`SchedulerConfig::plateau_window`] consecutive waves, a provable
//!    objective lower bound has been reached, or presolve already solved
//!    the model (*fast exit*);
//! 2. how to split the next wave's reads across members — a multiplicative
//!    bandit score `hit-rate × improvement-per-proposal` turned into read
//!    counts by largest-remainder apportionment;
//! 3. which reads to warm-start — a bounded pool of *elite* states (best
//!    feasible first) seeds a configurable fraction of every later wave.
//!
//! **Determinism.** Every decision is a pure function of the observed
//! energies, feasibility verdicts, and *proposal counts* — never wall-clock
//! time. Proposal counts are the samplers' deterministic CPU-cost proxy
//! (each sampler reports `sweeps × active-neighbourhood`), so
//! "improvement per CPU-millisecond" becomes "improvement per proposal"
//! without breaking the identical-seeds ⇒ identical-samples contract.

use qlrb_model::cqm::Cqm;

/// Scheduler knobs carried by the hybrid solver. All fields have inert
/// defaults: with both `adaptive` and `early_stop` off the solver's legacy
/// fixed-rotation wave loop runs unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Bandit read-allocation + elite cross-seeding.
    pub adaptive: bool,
    /// Plateau / lower-bound / fast-exit termination.
    pub early_stop: bool,
    /// Reads per wave; `0` means auto (one read per portfolio member).
    pub wave_size: usize,
    /// Consecutive non-improving waves tolerated before a plateau stop.
    /// Must be ≥ 1 (the builder rejects 0).
    pub plateau_window: usize,
    /// Relative improvement threshold: a wave counts as improving only if
    /// it lowers the incumbent by more than `tol × max(1, |incumbent|)`.
    pub plateau_tolerance: f64,
    /// Maximum states retained in the elite pool.
    pub elite_capacity: usize,
    /// Fraction of each post-first wave's reads warm-started from the
    /// elite pool, in `[0, 1]`.
    pub elite_fraction: f64,
    /// Reads that share one batched kernel invocation (a *lane group*).
    /// `1` (or `0`) preserves per-read allocation exactly; larger widths
    /// make the bandit apportion whole lane groups so a batched wave never
    /// splits a kernel invocation across members, and auto wave sizing
    /// scales to `num_members × lane_width`.
    pub lane_width: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            adaptive: false,
            early_stop: false,
            wave_size: 0,
            plateau_window: 1,
            plateau_tolerance: 1e-3,
            elite_capacity: 8,
            elite_fraction: 0.5,
            lane_width: 1,
        }
    }
}

/// Why the wave loop stopped launching reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationReason {
    /// All requested reads ran.
    Exhausted,
    /// The incumbent failed to improve for `plateau_window` waves.
    Plateau,
    /// Presolve trivialised the model or a read reached a provable
    /// objective lower bound — no further reads can help.
    FastExit,
    /// The wall-clock budget ran out (decided by the solver, not here).
    TimeLimit,
    /// Every portfolio member's backend is dead (enough consecutive
    /// failed submissions each): further waves could only fail, so the
    /// solve returns the best incumbent found so far.
    BackendExhausted,
}

impl TerminationReason {
    /// Stable string form recorded into telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Exhausted => "exhausted",
            Self::Plateau => "plateau",
            Self::FastExit => "fast-exit",
            Self::TimeLimit => "time-limit",
            Self::BackendExhausted => "backend-exhausted",
        }
    }
}

impl std::fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one read of a wave reported back to the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadStats {
    /// Portfolio member index that ran the read.
    pub member: usize,
    /// Move proposals the sampler examined (deterministic cost proxy).
    pub proposals: u64,
    /// Penalized energy entering the sampler.
    pub initial_energy: f64,
    /// Penalized energy of the returned state.
    pub final_energy: f64,
    /// Objective of the returned state against the original CQM.
    pub objective: f64,
    /// Feasibility verdict against the original CQM.
    pub feasible: bool,
    /// The returned state at compiled width (for the elite pool).
    pub state: Vec<u8>,
}

/// The scheduler's decision for one wave: which member runs each slot and
/// which leading slots are warm-started from the elite pool.
#[derive(Debug, Clone, PartialEq)]
pub struct WavePlan {
    /// Portfolio member index per read slot, in launch order.
    pub members: Vec<usize>,
    /// Elite states assigned to the leading slots (`elite_seeds[i]` seeds
    /// slot `i`); shorter than `members` when the pool is small.
    pub elite_seeds: Vec<Vec<u8>>,
}

/// Consecutive failed submissions after which a portfolio member is
/// considered dead: the bandit stops allocating reads to it until one of
/// its submissions succeeds again.
const DEAD_AFTER: u64 = 2;

/// Cumulative per-member bandit statistics.
#[derive(Debug, Clone, Copy, Default)]
struct MemberStats {
    reads: u64,
    feasible: u64,
    proposals: u64,
    improvement: f64,
    /// Reads that exhausted their submission retries (cumulative).
    failures: u64,
    /// Current run of failed submissions; any success resets it.
    consecutive_failures: u64,
}

impl MemberStats {
    /// Whether the member's backend is considered dead.
    fn dead(&self) -> bool {
        self.consecutive_failures >= DEAD_AFTER
    }
}

/// The best state seen so far, ordered lexicographically: any feasible
/// state beats any infeasible one; ties break on value (objective for
/// feasible states, penalized energy otherwise).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Incumbent {
    feasible: bool,
    value: f64,
}

impl Incumbent {
    fn of(r: &ReadStats) -> Self {
        Self {
            feasible: r.feasible,
            value: if r.feasible {
                r.objective
            } else {
                r.final_energy
            },
        }
    }

    /// Whether `self` is strictly better than `other`.
    fn better_than(self, other: Self) -> bool {
        if self.feasible != other.feasible {
            return self.feasible;
        }
        self.value < other.value
    }

    /// Whether `self` improves on `other` by more than the relative
    /// tolerance (used only for plateau counting; incumbent replacement
    /// uses the plain [`Self::better_than`] ordering).
    fn improves_on(self, other: Self, tol: f64) -> bool {
        if self.feasible != other.feasible {
            return self.feasible;
        }
        other.value - self.value > tol * other.value.abs().max(1.0)
    }
}

/// One elite-pool entry.
#[derive(Debug, Clone)]
struct Elite {
    feasible: bool,
    energy: f64,
    state: Vec<u8>,
}

/// Deterministic wave-by-wave scheduler. Feed it observations with
/// [`Self::observe_wave`]; ask it for plans with [`Self::plan_wave`] and
/// for a stop verdict with [`Self::should_stop`]. Identical observation
/// streams produce identical plans and verdicts.
#[derive(Debug)]
pub struct PortfolioScheduler {
    cfg: SchedulerConfig,
    num_members: usize,
    /// Provable objective lower bound, when one exists for the model.
    lower_bound: Option<f64>,
    /// Presolve already solved (or refuted) the model: no read can beat
    /// the trivial incumbent, so stop after the mandatory first wave.
    trivial: bool,
    stats: Vec<MemberStats>,
    /// Declared cost-per-read of each member — under backend federation a
    /// member is a (sampler, backend) pair and inherits its backend's
    /// `cost_per_read`. Bandit weights divide by this, so expensive members
    /// must earn their reads. All-1.0 (the default) reproduces the
    /// pre-federation allocation exactly.
    member_costs: Vec<f64>,
    elites: Vec<Elite>,
    incumbent: Option<Incumbent>,
    stagnant_waves: usize,
    waves_observed: usize,
}

impl PortfolioScheduler {
    /// A fresh scheduler for a portfolio of `num_members` samplers.
    pub fn new(
        cfg: SchedulerConfig,
        num_members: usize,
        lower_bound: Option<f64>,
        trivial: bool,
    ) -> Self {
        let members = num_members.max(1);
        Self {
            cfg,
            num_members: members,
            lower_bound,
            trivial,
            stats: vec![MemberStats::default(); members],
            member_costs: vec![1.0; members],
            elites: Vec::new(),
            incumbent: None,
            stagnant_waves: 0,
            waves_observed: 0,
        }
    }

    /// Reads per wave under this configuration. Auto sizing
    /// (`wave_size == 0`) hands every portfolio member one full lane group.
    pub fn wave_size(&self) -> usize {
        if self.cfg.wave_size == 0 {
            self.num_members * self.lane_width()
        } else {
            self.cfg.wave_size
        }
    }

    /// Reads per batched lane group (1 on the scalar path).
    fn lane_width(&self) -> usize {
        self.cfg.lane_width.max(1)
    }

    /// Declares each member's cost-per-read (defaults to 1.0 everywhere).
    /// Non-finite or non-positive entries are clamped to 1.0 so a
    /// misdeclared profile can never zero out or invert the allocation.
    ///
    /// # Panics
    /// Panics if `costs` does not cover every member.
    pub fn set_member_costs(&mut self, costs: Vec<f64>) {
        assert_eq!(
            costs.len(),
            self.num_members,
            "one cost per portfolio member"
        );
        self.member_costs = costs
            .into_iter()
            .map(|c| if c.is_finite() && c > 0.0 { c } else { 1.0 })
            .collect();
    }

    /// Number of waves observed so far.
    pub fn waves_observed(&self) -> usize {
        self.waves_observed
    }

    /// Best incumbent value seen so far (objective if a feasible state has
    /// been found, penalized energy otherwise).
    pub fn incumbent_value(&self) -> Option<f64> {
        self.incumbent.map(|i| i.value)
    }

    /// Plans the next wave of `wave_reads` reads starting at global read
    /// index `first_read`. Wave 0 — and every wave when `adaptive` is off —
    /// uses the legacy fixed rotation `member = read % num_members`, so a
    /// scheduler with adaptivity disabled reproduces the classic portfolio
    /// exactly. Later adaptive waves allocate by bandit weight, emitting
    /// slots in descending-weight order so elite seeds (which occupy the
    /// leading slots) warm-start the currently strongest members.
    pub fn plan_wave(&self, first_read: usize, wave_reads: usize) -> WavePlan {
        let members = if self.cfg.adaptive && self.waves_observed > 0 {
            self.bandit_members(wave_reads)
        } else {
            (0..wave_reads)
                .map(|i| (first_read + i) % self.num_members)
                .collect()
        };
        let elite_seeds = if self.cfg.adaptive && self.waves_observed > 0 {
            let frac = self.cfg.elite_fraction.clamp(0.0, 1.0);
            let want = (frac * wave_reads as f64).round() as usize;
            let take = want.min(self.elites.len()).min(wave_reads);
            self.elites[..take]
                .iter()
                .map(|e| e.state.clone())
                .collect()
        } else {
            Vec::new()
        };
        WavePlan {
            members,
            elite_seeds,
        }
    }

    /// Folds one finished wave into the bandit statistics, elite pool,
    /// incumbent, and plateau counter.
    pub fn observe_wave(&mut self, reads: &[ReadStats]) {
        let before = self.incumbent;
        for r in reads {
            if let Some(s) = self.stats.get_mut(r.member) {
                s.reads += 1;
                s.feasible += u64::from(r.feasible);
                s.proposals += r.proposals;
                s.improvement += (r.initial_energy - r.final_energy).max(0.0);
                // A completed read proves the member's backend is alive.
                s.consecutive_failures = 0;
            }
            let cand = Incumbent::of(r);
            if self.incumbent.is_none_or(|inc| cand.better_than(inc)) {
                self.incumbent = Some(cand);
            }
            self.admit_elite(r);
        }
        let improved = match (self.incumbent, before) {
            (Some(now), Some(then)) => now.improves_on(then, self.cfg.plateau_tolerance),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if improved {
            self.stagnant_waves = 0;
        } else {
            self.stagnant_waves += 1;
        }
        self.waves_observed += 1;
    }

    /// Records that a read assigned to `member` exhausted its submission
    /// retries and produced no sample. Enough consecutive failures mark
    /// the member dead: the bandit allocation zeroes it out and its reads
    /// are reapportioned across the surviving members. A later successful
    /// read revives it (see [`Self::observe_wave`]).
    pub fn observe_failure(&mut self, member: usize) {
        if let Some(s) = self.stats.get_mut(member) {
            s.failures += 1;
            s.consecutive_failures += 1;
        }
    }

    /// Stop verdict for the *next* wave. Always `None` before the first
    /// wave has been observed (a solve runs at least one wave); with
    /// `early_stop` off, only backend exhaustion can stop the loop early.
    pub fn should_stop(&self) -> Option<TerminationReason> {
        if self.waves_observed == 0 {
            return None;
        }
        // Degradation is checked regardless of `early_stop`: with every
        // member dead, further waves could only fail.
        if self.stats.iter().all(MemberStats::dead) {
            return Some(TerminationReason::BackendExhausted);
        }
        if !self.cfg.early_stop {
            return None;
        }
        if self.trivial {
            return Some(TerminationReason::FastExit);
        }
        if let (Some(lb), Some(inc)) = (self.lower_bound, self.incumbent) {
            if inc.feasible && inc.value <= lb + 1e-9 {
                return Some(TerminationReason::FastExit);
            }
        }
        if self.stagnant_waves >= self.cfg.plateau_window {
            return Some(TerminationReason::Plateau);
        }
        None
    }

    /// Bandit allocation: weight each member by
    /// `hit-rate × (gain-per-proposal + floor)` and apportion `wave_reads`
    /// slots by largest remainder. Slots are emitted grouped by member in
    /// descending-weight order (ties break on member index), so the elite
    /// seeds assigned to leading slots land on the strongest members.
    ///
    /// With `lane_width > 1` the unit of apportionment is the whole lane
    /// group: slots are handed out `lane_width` at a time so a batched
    /// kernel invocation never straddles two members, then truncated to
    /// `wave_reads` (the final group of the last, weakest member may be
    /// partial — a partial lane group is valid, a split one is not).
    fn bandit_members(&self, wave_reads: usize) -> Vec<usize> {
        let gains: Vec<f64> = self
            .stats
            .iter()
            .map(|s| {
                if s.proposals == 0 {
                    0.0
                } else {
                    s.improvement / s.proposals as f64
                }
            })
            .collect();
        let max_gain = gains.iter().fold(0.0_f64, |a, &g| a.max(g));
        // The floor keeps zero-gain members in the race (exploration) and
        // makes hit-rate the deciding factor when no member has improved
        // anything yet.
        let floor = if max_gain > 0.0 { 1e-3 * max_gain } else { 1.0 };
        let weights: Vec<f64> = self
            .stats
            .iter()
            .zip(&gains)
            .map(|(s, &g)| {
                // Dead members get zero weight so their reads are
                // reapportioned; live members always weigh > 0 (hit-rate
                // and floor are positive), so apportionment can never
                // hand a slot back to a dead member.
                if s.dead() {
                    return 0.0;
                }
                let hit = (1.0 + s.feasible as f64) / (1.0 + s.reads as f64);
                hit * (g + floor)
            })
            .zip(&self.member_costs)
            // Feasible-hit-rate × improvement ÷ cost: an expensive backend
            // only keeps its share while it outproduces cheaper ones
            // proportionally. Cost 1.0 everywhere is the legacy weighting.
            .map(|(w, &cost)| w / cost)
            .collect();
        let lane_width = self.lane_width();
        let groups = wave_reads.div_ceil(lane_width);
        let counts = apportion(&weights, groups);
        // Descending weight, ties by index: stable ordering for plans.
        let mut order: Vec<usize> = (0..self.num_members).collect();
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then_with(|| a.cmp(&b)));
        let mut plan = Vec::with_capacity(groups * lane_width);
        for m in order {
            plan.extend(std::iter::repeat_n(m, counts[m] * lane_width));
        }
        plan.truncate(wave_reads);
        plan
    }

    /// Inserts a read's state into the elite pool unless an identical state
    /// is already present, then re-sorts (feasible first, lower penalized
    /// energy first) and truncates to capacity.
    fn admit_elite(&mut self, r: &ReadStats) {
        if self.cfg.elite_capacity == 0 || r.state.is_empty() {
            return;
        }
        if self.elites.iter().any(|e| e.state == r.state) {
            return;
        }
        self.elites.push(Elite {
            feasible: r.feasible,
            energy: r.final_energy,
            state: r.state.clone(),
        });
        self.elites.sort_by(|a, b| {
            b.feasible
                .cmp(&a.feasible)
                .then_with(|| a.energy.total_cmp(&b.energy))
        });
        self.elites.truncate(self.cfg.elite_capacity);
    }
}

/// Largest-remainder apportionment of `total` slots by non-negative
/// weights. Degenerate weights (all zero / non-finite sum) fall back to an
/// even round-robin split. Always sums to `total`.
fn apportion(weights: &[f64], total: usize) -> Vec<usize> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let sum: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if !(sum.is_finite() && sum > 0.0) {
        let mut counts = vec![total / n; n];
        for c in counts.iter_mut().take(total % n) {
            *c += 1;
        }
        return counts;
    }
    let mut counts = vec![0usize; n];
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(n);
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let quota = total as f64 * w / sum;
        let base = quota.floor() as usize;
        counts[i] = base;
        assigned += base;
        fracs.push((quota - base as f64, i));
    }
    // Highest fractional remainder first; ties break on member index.
    // The leftover is at most n − 1 (sum of floors loses < 1 per member),
    // so one pass over the sorted remainders always places everything.
    fracs.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let mut leftover = total.saturating_sub(assigned);
    for &(_, i) in &fracs {
        if leftover == 0 {
            break;
        }
        counts[i] += 1;
        leftover -= 1;
    }
    counts
}

/// A provable lower bound on the CQM objective, when one exists.
///
/// The objective is `Σ wᵢ·(exprᵢ − targetᵢ)² + linear`. Squared terms with
/// non-negative weights contribute ≥ 0, so
/// `lb = linear.constant + Σ min(0, linear coeff)` bounds the whole
/// objective from below. Returns `None` if any squared-term weight is
/// negative (the model layer forbids this, but a bound must not lie).
pub fn objective_lower_bound(cqm: &Cqm) -> Option<f64> {
    if cqm.squared_terms.iter().any(|t| t.weight < 0.0) {
        return None;
    }
    let lin = &cqm.linear_objective;
    let lb = lin.constant_part() + lin.terms().iter().map(|&(_, c)| c.min(0.0)).sum::<f64>();
    Some(lb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qlrb_model::expr::LinearExpr;
    use qlrb_model::Var;

    fn adaptive_cfg() -> SchedulerConfig {
        SchedulerConfig {
            adaptive: true,
            early_stop: true,
            ..Default::default()
        }
    }

    fn read(member: usize, initial: f64, fin: f64, feasible: bool, state: Vec<u8>) -> ReadStats {
        ReadStats {
            member,
            proposals: 1000,
            initial_energy: initial,
            final_energy: fin,
            objective: fin,
            feasible,
            state,
        }
    }

    #[test]
    fn wave_zero_uses_fixed_rotation() {
        let s = PortfolioScheduler::new(adaptive_cfg(), 3, None, false);
        let plan = s.plan_wave(0, 6);
        assert_eq!(plan.members, vec![0, 1, 2, 0, 1, 2]);
        assert!(plan.elite_seeds.is_empty());
        // Rotation honours the global read offset, matching the legacy
        // `samplers[read % len]` rule mid-solve.
        assert_eq!(s.plan_wave(2, 3).members, vec![2, 0, 1]);
    }

    #[test]
    fn adaptive_off_always_rotates() {
        let cfg = SchedulerConfig {
            early_stop: true,
            ..Default::default()
        };
        let mut s = PortfolioScheduler::new(cfg, 2, None, false);
        s.observe_wave(&[read(0, 10.0, 0.0, true, vec![1])]);
        let plan = s.plan_wave(2, 4);
        assert_eq!(plan.members, vec![0, 1, 0, 1]);
        assert!(plan.elite_seeds.is_empty());
    }

    #[test]
    fn never_stops_before_first_wave() {
        // Even a trivial model with early_stop on must run one wave.
        let s = PortfolioScheduler::new(adaptive_cfg(), 3, Some(0.0), true);
        assert_eq!(s.should_stop(), None);
    }

    #[test]
    fn early_stop_off_never_stops() {
        let cfg = SchedulerConfig {
            adaptive: true,
            early_stop: false,
            ..Default::default()
        };
        let mut s = PortfolioScheduler::new(cfg, 2, None, true);
        for _ in 0..5 {
            s.observe_wave(&[read(0, 1.0, 1.0, false, vec![0])]);
        }
        assert_eq!(s.should_stop(), None);
    }

    #[test]
    fn trivial_model_fast_exits_after_one_wave() {
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 3, None, true);
        s.observe_wave(&[read(0, 0.0, 0.0, true, vec![])]);
        assert_eq!(s.should_stop(), Some(TerminationReason::FastExit));
    }

    #[test]
    fn lower_bound_reached_fast_exits() {
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 2, Some(5.0), false);
        // Feasible incumbent above the bound: keep going (plateau_window=1
        // would fire, so use an improving stream).
        s.observe_wave(&[read(0, 100.0, 20.0, true, vec![1, 0])]);
        assert_eq!(s.should_stop(), None);
        s.observe_wave(&[read(1, 20.0, 5.0, true, vec![0, 1])]);
        assert_eq!(s.should_stop(), Some(TerminationReason::FastExit));
    }

    #[test]
    fn plateau_fires_after_window_stagnant_waves() {
        let cfg = SchedulerConfig {
            plateau_window: 2,
            ..adaptive_cfg()
        };
        let mut s = PortfolioScheduler::new(cfg, 2, None, false);
        s.observe_wave(&[read(0, 10.0, 2.0, true, vec![1, 1])]);
        assert_eq!(s.should_stop(), None); // first wave set the incumbent
        s.observe_wave(&[read(1, 10.0, 2.0, true, vec![1, 1])]);
        assert_eq!(s.should_stop(), None); // one stagnant wave < window 2
        s.observe_wave(&[read(0, 10.0, 2.0, true, vec![1, 1])]);
        assert_eq!(s.should_stop(), Some(TerminationReason::Plateau));
    }

    #[test]
    fn sub_tolerance_improvement_counts_as_stagnant() {
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 1, None, false);
        s.observe_wave(&[read(0, 10.0, 100.0, true, vec![1])]);
        // 0.01% improvement on |100| is below the 0.1% tolerance.
        s.observe_wave(&[read(0, 10.0, 99.99, true, vec![0])]);
        assert_eq!(s.should_stop(), Some(TerminationReason::Plateau));
    }

    #[test]
    fn feasible_beats_infeasible_in_incumbent() {
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 1, None, false);
        s.observe_wave(&[read(0, 10.0, -50.0, false, vec![0])]);
        assert_eq!(s.incumbent_value(), Some(-50.0));
        // A feasible state with a *worse* value still takes over.
        let mut r = read(0, 10.0, 7.0, true, vec![1]);
        r.objective = 7.0;
        s.observe_wave(&[r]);
        assert_eq!(s.incumbent_value(), Some(7.0));
        assert_eq!(s.stagnant_waves, 0); // infeasible → feasible is progress
    }

    #[test]
    fn bandit_shifts_reads_toward_productive_member() {
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 3, None, false);
        // Member 2: feasible + big gain per proposal. Members 0/1: nothing.
        s.observe_wave(&[
            read(0, 10.0, 10.0, false, vec![0, 0]),
            read(1, 10.0, 10.0, false, vec![0, 1]),
            read(2, 10.0, 1.0, true, vec![1, 0]),
        ]);
        let plan = s.plan_wave(3, 6);
        let count2 = plan.members.iter().filter(|&&m| m == 2).count();
        assert!(
            count2 > 2,
            "productive member should win >1/3 of reads, plan {:?}",
            plan.members
        );
        // Strongest member's slots lead the wave (elite seeds land there).
        assert_eq!(plan.members[0], 2);
    }

    #[test]
    fn member_costs_divide_bandit_weight() {
        // Two members with identical productivity; member 1 declares a
        // 100× cost-per-read, so member 0 should dominate the wave.
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 2, None, false);
        s.set_member_costs(vec![1.0, 100.0]);
        s.observe_wave(&[
            read(0, 10.0, 1.0, true, vec![0, 0]),
            read(1, 10.0, 1.0, true, vec![0, 1]),
        ]);
        let plan = s.plan_wave(2, 8);
        let count0 = plan.members.iter().filter(|&&m| m == 0).count();
        assert!(
            count0 >= 7,
            "cheap member should win nearly every read, plan {:?}",
            plan.members
        );

        // Uniform costs reproduce the unweighted plan exactly.
        let mut a = PortfolioScheduler::new(adaptive_cfg(), 2, None, false);
        let mut b = PortfolioScheduler::new(adaptive_cfg(), 2, None, false);
        b.set_member_costs(vec![1.0, 1.0]);
        let obs = [
            read(0, 10.0, 2.0, true, vec![0, 0]),
            read(1, 10.0, 4.0, false, vec![0, 1]),
        ];
        a.observe_wave(&obs);
        b.observe_wave(&obs);
        assert_eq!(a.plan_wave(2, 6).members, b.plan_wave(2, 6).members);
    }

    #[test]
    #[should_panic(expected = "one cost per portfolio member")]
    fn member_costs_must_cover_every_member() {
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 3, None, false);
        s.set_member_costs(vec![1.0]);
    }

    #[test]
    fn bandit_hands_out_whole_lane_groups() {
        let cfg = SchedulerConfig {
            lane_width: 4,
            ..adaptive_cfg()
        };
        let mut s = PortfolioScheduler::new(cfg, 3, None, false);
        // Auto wave size scales to one lane group per member.
        assert_eq!(s.wave_size(), 12);
        s.observe_wave(&[
            read(0, 10.0, 10.0, false, vec![0, 0]),
            read(1, 10.0, 2.0, true, vec![0, 1]),
            read(2, 10.0, 10.0, false, vec![1, 0]),
        ]);
        let plan = s.plan_wave(3, 12);
        assert_eq!(plan.members.len(), 12);
        // Every member's slots form whole contiguous groups of 4: member
        // changes only happen on lane-group boundaries.
        for chunk in plan.members.chunks(4) {
            assert!(
                chunk.iter().all(|&m| m == chunk[0]),
                "lane group split across members, plan {:?}",
                plan.members
            );
        }
        // The strongest member still leads the wave.
        assert_eq!(plan.members[0], 1);
    }

    #[test]
    fn lane_width_one_matches_per_read_allocation() {
        let mut a = PortfolioScheduler::new(adaptive_cfg(), 3, None, false);
        let cfg = SchedulerConfig {
            lane_width: 1,
            ..adaptive_cfg()
        };
        let mut b = PortfolioScheduler::new(cfg, 3, None, false);
        let wave = [
            read(0, 10.0, 4.0, true, vec![1, 0]),
            read(1, 10.0, 8.0, false, vec![0, 1]),
            read(2, 10.0, 6.0, true, vec![1, 1]),
        ];
        a.observe_wave(&wave);
        b.observe_wave(&wave);
        assert_eq!(a.plan_wave(3, 7), b.plan_wave(3, 7));
        assert_eq!(a.wave_size(), b.wave_size());
    }

    #[test]
    fn elite_pool_seeds_later_waves_best_first() {
        let cfg = SchedulerConfig {
            elite_capacity: 2,
            elite_fraction: 0.5,
            ..adaptive_cfg()
        };
        let mut s = PortfolioScheduler::new(cfg, 2, None, false);
        s.observe_wave(&[
            read(0, 10.0, 3.0, false, vec![0, 0]),
            read(1, 10.0, 5.0, true, vec![1, 1]),
            read(0, 10.0, 4.0, true, vec![1, 0]),
            read(1, 10.0, 1.0, false, vec![0, 1]),
        ]);
        let plan = s.plan_wave(4, 4);
        // capacity 2 keeps the two feasible states; best (energy 4) first.
        assert_eq!(plan.elite_seeds.len(), 2);
        assert_eq!(plan.elite_seeds[0], vec![1, 0]);
        assert_eq!(plan.elite_seeds[1], vec![1, 1]);
    }

    #[test]
    fn elite_pool_dedups_identical_states() {
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 1, None, false);
        for _ in 0..3 {
            s.observe_wave(&[read(0, 10.0, 2.0, true, vec![1, 0, 1])]);
        }
        assert_eq!(s.elites.len(), 1);
    }

    #[test]
    fn dead_member_gets_no_reads_until_revived() {
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 3, None, false);
        s.observe_wave(&[
            read(0, 10.0, 5.0, true, vec![1, 0]),
            read(1, 10.0, 5.0, true, vec![0, 1]),
            read(2, 10.0, 5.0, true, vec![1, 1]),
        ]);
        for _ in 0..DEAD_AFTER {
            s.observe_failure(2);
        }
        let plan = s.plan_wave(3, 6);
        assert!(
            plan.members.iter().all(|&m| m != 2),
            "dead member must receive no reads, plan {:?}",
            plan.members
        );
        assert_eq!(plan.members.len(), 6, "its reads are reapportioned");
        // A successful read revives the member.
        s.observe_wave(&[read(2, 10.0, 4.0, true, vec![0, 0])]);
        let plan = s.plan_wave(9, 6);
        assert!(plan.members.contains(&2), "revived member samples again");
    }

    #[test]
    fn single_failure_does_not_kill_a_member() {
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 2, None, false);
        s.observe_wave(&[
            read(0, 10.0, 5.0, true, vec![1, 0]),
            read(1, 10.0, 5.0, true, vec![0, 1]),
        ]);
        s.observe_failure(1);
        let plan = s.plan_wave(2, 4);
        assert!(
            plan.members.contains(&1),
            "one transient failure must not exclude a member, plan {:?}",
            plan.members
        );
        assert_eq!(s.should_stop(), None);
    }

    #[test]
    fn all_members_dead_stops_with_backend_exhausted() {
        // early_stop OFF: exhaustion must still stop the loop.
        let cfg = SchedulerConfig {
            adaptive: true,
            early_stop: false,
            ..Default::default()
        };
        let mut s = PortfolioScheduler::new(cfg, 2, None, false);
        // Wave 0: every read of every member fails.
        for _ in 0..DEAD_AFTER {
            s.observe_failure(0);
            s.observe_failure(1);
        }
        s.observe_wave(&[]);
        assert_eq!(s.should_stop(), Some(TerminationReason::BackendExhausted));
    }

    #[test]
    fn no_backend_exhaustion_verdict_before_first_wave() {
        let mut s = PortfolioScheduler::new(adaptive_cfg(), 1, None, false);
        for _ in 0..DEAD_AFTER {
            s.observe_failure(0);
        }
        assert_eq!(s.should_stop(), None, "a solve always runs one wave");
        s.observe_wave(&[]);
        assert_eq!(s.should_stop(), Some(TerminationReason::BackendExhausted));
    }

    #[test]
    fn apportionment_sums_and_favours_weight() {
        assert_eq!(apportion(&[1.0, 1.0, 6.0], 8), vec![1, 1, 6]);
        assert_eq!(apportion(&[0.0, 0.0], 5), vec![3, 2]); // round-robin
        assert_eq!(apportion(&[f64::NAN, 1.0], 4), vec![0, 4]);
        assert_eq!(apportion(&[], 3), Vec::<usize>::new());
    }

    #[test]
    fn objective_lower_bound_of_linear_plus_squares() {
        let mut cqm = Cqm::new(3);
        let mut lin = LinearExpr::new();
        lin.add_term(Var(0), -2.0);
        lin.add_term(Var(1), 3.0);
        lin.add_constant(1.5);
        cqm.linear_objective = lin;
        let mut e = LinearExpr::new();
        e.add_term(Var(2), 1.0);
        cqm.add_squared_term(e, 0.5, 2.0);
        // lb = 1.5 + min(0,-2) + min(0,3) = -0.5; squares add ≥ 0.
        assert_eq!(objective_lower_bound(&cqm), Some(-0.5));
    }

    proptest! {
        /// Determinism: identical configs + identical observation streams
        /// produce identical plans and identical termination verdicts, and
        /// every plan covers exactly the requested reads.
        #[test]
        fn scheduler_is_deterministic(
            num_members in 1usize..5,
            wave_size in 1usize..7,
            window in 1usize..4,
            waves in proptest::collection::vec(
                proptest::collection::vec(
                    ((0usize..5, 0u64..5000),
                     (-50.0f64..50.0, -50.0f64..50.0),
                     0u8..2,
                     proptest::collection::vec(0u8..2, 4usize)),
                    1usize..5),
                1usize..6),
        ) {
            let cfg = SchedulerConfig {
                adaptive: true,
                early_stop: true,
                wave_size,
                plateau_window: window,
                ..Default::default()
            };
            let mut a = PortfolioScheduler::new(cfg.clone(), num_members, None, false);
            let mut b = PortfolioScheduler::new(cfg, num_members, None, false);
            let mut first_read = 0usize;
            for wave in &waves {
                let stats: Vec<ReadStats> = wave
                    .iter()
                    .map(|((m, p), (ie, fe), f, st)| ReadStats {
                        member: m % num_members,
                        proposals: *p,
                        initial_energy: *ie,
                        final_energy: *fe,
                        objective: *fe,
                        feasible: *f == 1,
                        state: st.clone(),
                    })
                    .collect();
                let pa = a.plan_wave(first_read, wave_size);
                let pb = b.plan_wave(first_read, wave_size);
                prop_assert_eq!(&pa, &pb);
                prop_assert_eq!(pa.members.len(), wave_size);
                prop_assert!(pa.members.iter().all(|&m| m < num_members));
                prop_assert!(pa.elite_seeds.len() <= wave_size);
                a.observe_wave(&stats);
                b.observe_wave(&stats);
                prop_assert_eq!(a.should_stop(), b.should_stop());
                first_read += wave_size;
            }
        }

        /// The stop verdict is `None` before any wave completes, whatever
        /// the model looks like — a solve always runs at least one wave.
        #[test]
        fn no_stop_at_wave_zero(
            num_members in 1usize..6,
            trivial in 0u8..2,
            has_lb in 0u8..2,
            lb in -100.0f64..100.0,
        ) {
            let lb = (has_lb == 1).then_some(lb);
            let s = PortfolioScheduler::new(adaptive_cfg(), num_members, lb, trivial == 1);
            prop_assert_eq!(s.should_stop(), None);
        }
    }
}
