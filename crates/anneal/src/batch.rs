//! Batched sampler kernels: one CSR traversal serves up to 64 lanes.
//!
//! The scalar samplers spend almost all their time in
//! [`Evaluator::flip_delta`][qlrb_model::eval::Evaluator::flip_delta] —
//! a walk over the flipped variable's CSR incidence row. When many
//! independent reads (or Trotter replicas) propose the *same* variable, the
//! row walk, expression kinds, and coefficients are identical across them;
//! only the per-lane sums differ. [`BatchedEvaluator`] exploits that by
//! packing one state bit per lane into `u64` bitsets, and these kernels
//! drive it:
//!
//! * [`batched_annealing`] — lane-per-read SA: a shared shuffled visit
//!   order, per-lane β schedules, and per-lane acceptance draws.
//! * [`batched_descent`] — lane-per-read greedy polish with a live-lane
//!   mask; lanes retire individually once a full sweep stops improving.
//! * [`batched_sqa`] — lane-per-Trotter-replica path-integral annealing:
//!   the replica ring lives in the lane dimension, so nearest-neighbour
//!   spins are single bit reads and one delta traversal serves all `P`
//!   replicas.
//! * [`batched_tabu`] — lane-per-read tabu search over the batched
//!   flip-delta cache; the admissibility scan reads each variable's lane
//!   row contiguously.
//!
//! All kernels consume [`CounterRng`] streams: every lane owns an
//! independent counter stream, so results are byte-for-byte reproducible
//! regardless of thread count or lane-group composition order. These
//! kernels are the opt-in `batched()` path of the hybrid solver — the
//! scalar samplers and their ChaCha8 streams are untouched.

use qlrb_model::batch::{BatchedEvaluator, MAX_LANES};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

use crate::crng::CounterRng;
use crate::schedule::{BetaSchedule, TransverseSchedule};
use crate::tabu::TabuParams;

/// What one lane of a batched kernel produced: the best state seen, its
/// penalized energy, and the accepted-move count (tabu: iterations).
#[derive(Debug, Clone)]
pub struct LaneOutcome {
    /// Best-seen assignment at compiled width.
    pub state: Vec<u8>,
    /// Its penalized energy.
    pub energy: f64,
    /// Accepted moves (diagnostic; tabu reports committed iterations).
    pub accepted: u64,
}

/// A full-lane mask for `lanes` lanes.
#[inline]
fn all_lanes(lanes: usize) -> u64 {
    if lanes == MAX_LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Snapshots every lane whose current energy beats its recorded best.
fn snapshot_improved(bev: &BatchedEvaluator, best_energy: &mut [f64], best_state: &mut [Vec<u8>]) {
    for l in 0..bev.lanes() {
        if bev.energy(l) < best_energy[l] {
            best_energy[l] = bev.energy(l);
            bev.write_lane_state(l, &mut best_state[l]);
        }
    }
}

/// Packs per-lane bests into [`LaneOutcome`]s.
fn outcomes(best_energy: &[f64], best_state: Vec<Vec<u8>>, accepted: &[u64]) -> Vec<LaneOutcome> {
    best_state
        .into_iter()
        .zip(best_energy)
        .zip(accepted)
        .map(|((state, &energy), &accepted)| LaneOutcome {
            state,
            energy,
            accepted,
        })
        .collect()
}

/// Lane-per-read simulated annealing: every sweep shuffles one shared visit
/// order (all lanes propose the same variable at the same step — that is
/// what lets one CSR traversal serve the whole wave), computes all lane
/// deltas in one pass, and applies per-lane Metropolis tests with per-lane
/// inverse temperatures.
///
/// Differences from the scalar kernel, by construction: the visit order is
/// shared across lanes instead of per-read, one acceptance uniform is drawn
/// per (lane, proposal) from the lane's counter stream, and the best-seen
/// state is snapshotted at sweep granularity (plus once at the end) rather
/// than per accepted flip — the post-anneal polish pass recovers anything a
/// mid-sweep snapshot would have caught.
///
/// # Panics
/// Panics if `schedules` or `lane_rngs` are narrower than the lane count.
pub fn batched_annealing(
    bev: &mut BatchedEvaluator,
    schedules: &[BetaSchedule],
    sweeps: usize,
    resync_interval: usize,
    order_rng: &mut CounterRng,
    lane_rngs: &mut [CounterRng],
) -> Vec<LaneOutcome> {
    let lanes = bev.lanes();
    assert!(schedules.len() >= lanes, "one schedule per lane");
    assert!(lane_rngs.len() >= lanes, "one RNG stream per lane");
    let mut order = bev.active_vars().to_vec();
    let mut best_energy = bev.energies().to_vec();
    let mut best_state: Vec<Vec<u8>> = (0..lanes).map(|l| bev.lane_state(l)).collect();
    let mut accepted = vec![0u64; lanes];
    if order.is_empty() || sweeps == 0 {
        return outcomes(&best_energy, best_state, &accepted);
    }
    let denom = (sweeps.saturating_sub(1)).max(1) as f64;
    let mut deltas = [0.0f64; MAX_LANES];
    let mut betas = [0.0f64; MAX_LANES];
    for sweep in 0..sweeps {
        let t = sweep as f64 / denom;
        for (l, schedule) in schedules.iter().take(lanes).enumerate() {
            betas[l] = schedule.beta(t);
        }
        order.shuffle(order_rng);
        // qlrb-hot: the per-proposal loop — no allocation allowed here.
        for &v in &order {
            bev.flip_deltas(v, &mut deltas);
            let mut mask = 0u64;
            for (l, rng) in lane_rngs.iter_mut().take(lanes).enumerate() {
                let delta = deltas[l];
                // Always draw: a fixed one-uniform-per-proposal stream per
                // lane keeps lane results independent of other lanes.
                let u: f64 = rng.random();
                let accept = delta <= 0.0 || {
                    let x = -betas[l] * delta;
                    x > -60.0 && u < x.exp()
                };
                if accept {
                    mask |= 1u64 << l;
                    accepted[l] += 1;
                }
            }
            bev.flip_lanes(v, mask, &deltas);
        }
        snapshot_improved(bev, &mut best_energy, &mut best_state);
        if resync_interval > 0 && (sweep + 1) % resync_interval == 0 {
            bev.resync();
        }
    }
    bev.resync();
    snapshot_improved(bev, &mut best_energy, &mut best_state);
    outcomes(&best_energy, best_state, &accepted)
}

/// Lane-per-read first-improvement descent with a shared shuffled order.
/// A lane retires once a full sweep applies none of its flips; the kernel
/// stops when every lane has retired or `max_sweeps` is spent. Returns the
/// improving flips applied per lane.
pub fn batched_descent(
    bev: &mut BatchedEvaluator,
    max_sweeps: usize,
    rng: &mut CounterRng,
) -> Vec<u64> {
    let lanes = bev.lanes();
    let mut flips = vec![0u64; lanes];
    let mut order = bev.active_vars().to_vec();
    if order.is_empty() {
        return flips;
    }
    let mut live = all_lanes(lanes);
    let mut deltas = [0.0f64; MAX_LANES];
    for _ in 0..max_sweeps {
        if live == 0 {
            break;
        }
        order.shuffle(rng);
        let mut improved = 0u64;
        // qlrb-hot: the per-candidate loop — no allocation allowed here.
        for &v in &order {
            bev.flip_deltas(v, &mut deltas);
            let mut mask = 0u64;
            let mut scan = live;
            while scan != 0 {
                let l = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                if deltas[l] < -1e-12 {
                    mask |= 1u64 << l;
                    flips[l] += 1;
                }
            }
            bev.flip_lanes(v, mask, &deltas);
            improved |= mask;
        }
        live &= improved;
    }
    bev.resync();
    flips
}

/// Parameters of the batched SQA kernel (the lane-per-replica counterpart
/// of [`crate::sqa::SqaParams`]; the replica count is the evaluator's lane
/// count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchedSqaParams {
    /// Monte-Carlo sweeps (each visits every active variable in every
    /// replica).
    pub sweeps: usize,
    /// Inverse temperature of the quantum bath.
    pub beta: f64,
    /// Transverse-field schedule.
    pub transverse: TransverseSchedule,
    /// Fraction of active variables tried as all-replica moves per sweep.
    pub global_move_fraction: f64,
    /// Full recompute cadence (sweeps).
    pub resync_interval: usize,
}

/// Lane-per-Trotter-replica simulated quantum annealing. The `P` replicas
/// of the path integral live in the lane dimension of one evaluator, so
/// the classical flip delta of all replicas is one CSR traversal and the
/// ring-coupling term reads neighbouring replicas' spins as single bits of
/// the variable's lane word.
///
/// Replicas update in checkerboard phases over the ring (even/odd lane
/// index; an odd replica count parks the wrap-around lane in a third
/// phase), so within a phase no two updating replicas are neighbours and
/// the coupling term always reads settled spins.
///
/// Every lane starts from the evaluator's packed state (the caller packs
/// the same seed into all lanes); lanes `1..P` are then perturbed with
/// `k`-proportional random flips to diversify the ring exactly like the
/// scalar kernel. Returns the best *classical* replica seen.
pub fn batched_sqa(
    bev: &mut BatchedEvaluator,
    params: &BatchedSqaParams,
    rng: &mut CounterRng,
) -> LaneOutcome {
    let p = bev.lanes();
    let pf = p as f64;
    let mut order = bev.active_vars().to_vec();
    let na = order.len();
    let mut best_energy = f64::INFINITY;
    let mut best_state = bev.lane_state(0);
    let mut accepted = 0u64;
    snapshot_best(bev, &mut best_energy, &mut best_state);
    if na == 0 || params.sweeps == 0 || p < 2 {
        return LaneOutcome {
            state: best_state,
            energy: best_energy,
            accepted,
        };
    }

    // Per-replica acceptance streams, derived once from the read stream.
    let stream_base = rng.next_u64();
    let mut slice_rngs: Vec<CounterRng> = (0..p)
        .map(|k| CounterRng::stream(stream_base, k as u64))
        .collect();

    // Diversify the ring: replica k gets k-proportional random flips.
    let flips = (na / 50).clamp(1, na);
    for (k, srng) in slice_rngs.iter_mut().enumerate().skip(1) {
        for _ in 0..(flips * k).min(na) {
            let v = order[srng.random_range(0..na)];
            let delta = bev.flip_delta_lane(v, k);
            bev.flip_lane(v, k, delta);
        }
    }
    snapshot_best(bev, &mut best_energy, &mut best_state);

    // Checkerboard phases over the replica ring.
    let num_phases = if p % 2 == 0 { 2 } else { 3 };
    let mut phase_mask = [0u64; 3];
    for k in 0..p {
        let ph = if p % 2 == 1 && k == p - 1 { 2 } else { k % 2 };
        phase_mask[ph] |= 1u64 << k;
    }

    let denom = (params.sweeps.saturating_sub(1)).max(1) as f64;
    let mut deltas = [0.0f64; MAX_LANES];
    for sweep in 0..params.sweeps {
        let gamma = params.transverse.gamma(sweep as f64 / denom);
        let arg = (params.beta * gamma / pf).clamp(1e-12, 30.0);
        let jperp = -(pf / (2.0 * params.beta)) * arg.tanh().ln();
        order.shuffle(rng);
        // qlrb-hot: the per-proposal loop — no allocation allowed here.
        for &v in &order {
            bev.flip_deltas(v, &mut deltas);
            for mask_ph in phase_mask.iter().take(num_phases) {
                // Re-read the lane word per phase: earlier phases may have
                // flipped a neighbouring replica at this variable.
                let bits = bev.var_bits(v);
                let mut mask = 0u64;
                let mut scan = *mask_ph;
                while scan != 0 {
                    let k = scan.trailing_zeros() as usize;
                    scan &= scan - 1;
                    let s = 2.0 * ((bits >> k) & 1) as f64 - 1.0;
                    let prev = 2.0 * ((bits >> ((k + p - 1) % p)) & 1) as f64 - 1.0;
                    let next = 2.0 * ((bits >> ((k + 1) % p)) & 1) as f64 - 1.0;
                    let delta = deltas[k] / pf + 2.0 * jperp * s * (prev + next);
                    let u: f64 = slice_rngs[k].random();
                    let accept = delta <= 0.0 || {
                        let x = -params.beta * delta;
                        x > -60.0 && u < x.exp()
                    };
                    if accept {
                        mask |= 1u64 << k;
                        accepted += 1;
                    }
                }
                bev.flip_lanes(v, mask, &deltas);
            }
        }
        // All-replica moves: average classical delta, caller-stream draw.
        let global_moves = (na as f64 * params.global_move_fraction) as usize;
        for _ in 0..global_moves {
            let v = order[rng.random_range(0..na)];
            bev.flip_deltas(v, &mut deltas);
            let avg = deltas[..p].iter().sum::<f64>() / pf;
            let u: f64 = rng.random();
            let accept = avg <= 0.0 || {
                let x = -params.beta * avg;
                x > -60.0 && u < x.exp()
            };
            if accept {
                bev.flip_lanes(v, all_lanes(p), &deltas);
                accepted += 1;
            }
        }
        snapshot_best(bev, &mut best_energy, &mut best_state);
        if params.resync_interval > 0 && (sweep + 1) % params.resync_interval == 0 {
            bev.resync();
        }
    }
    bev.resync();
    snapshot_best(bev, &mut best_energy, &mut best_state);
    LaneOutcome {
        state: best_state,
        energy: best_energy,
        accepted,
    }
}

/// Records the lowest-energy replica if it beats the best seen so far.
fn snapshot_best(bev: &BatchedEvaluator, best_energy: &mut f64, best_state: &mut Vec<u8>) {
    for l in 0..bev.lanes() {
        if bev.energy(l) < *best_energy {
            *best_energy = bev.energy(l);
            bev.write_lane_state(l, best_state);
        }
    }
}

/// One lane's tabu result (iterations double as the accepted-move count).
#[derive(Debug, Clone)]
pub struct TabuLaneOutcome {
    /// Best-seen assignment at compiled width.
    pub state: Vec<u8>,
    /// Its penalized energy.
    pub energy: f64,
    /// Committed moves before the lane stopped.
    pub iterations: u64,
}

/// Lane-per-read tabu search over the batched flip-delta cache.
///
/// Each iteration scans every active variable's cached lane-delta row
/// (contiguous in the batched cache layout) and commits, per live lane,
/// the steepest admissible move — non-tabu, or aspirating past the lane's
/// best energy. Ties break by a per-lane `1e-9`-scaled jitter draw exactly
/// like the scalar kernel. A lane retires when it has no admissible move
/// or when `stall_limit` consecutive non-improving moves accumulate; the
/// kernel returns when every lane has retired or the move budget is spent.
///
/// # Panics
/// Panics if `lane_rngs` is narrower than the lane count.
pub fn batched_tabu(
    bev: &mut BatchedEvaluator,
    params: &TabuParams,
    lane_rngs: &mut [CounterRng],
) -> Vec<TabuLaneOutcome> {
    let lanes = bev.lanes();
    assert!(lane_rngs.len() >= lanes, "one RNG stream per lane");
    let n = bev.num_vars();
    let order = bev.active_vars().to_vec();
    let na = order.len();
    let tenure = if params.tenure == 0 {
        (na / 10).max(8) as u64
    } else {
        params.tenure as u64
    };
    let mut best_energy = bev.energies().to_vec();
    let mut best_state: Vec<Vec<u8>> = (0..lanes).map(|l| bev.lane_state(l)).collect();
    let mut iterations = vec![0u64; lanes];
    if na == 0 || params.max_iters == 0 {
        return tabu_outcomes(&best_energy, best_state, &iterations);
    }
    bev.enable_delta_cache();
    let mut tabu_until = vec![0u64; n * lanes];
    let mut stall = vec![0usize; lanes];
    let mut live = all_lanes(lanes);
    let mut chosen = [usize::MAX; MAX_LANES];
    let mut chosen_key = [f64::INFINITY; MAX_LANES];
    let mut chosen_delta = [0.0f64; MAX_LANES];
    for iter in 0..params.max_iters as u64 {
        if live == 0 {
            break;
        }
        for l in 0..lanes {
            chosen[l] = usize::MAX;
            chosen_key[l] = f64::INFINITY;
        }
        // Steepest admissible scan: each variable's lane row is contiguous
        // in the batched cache, so the scan streams the cache linearly.
        let cache = bev.cached_deltas().expect("cache enabled above"); // qlrb-lint: allow(no-unwrap)
                                                                       // qlrb-hot: the neighbourhood scan — no allocation allowed here.
        for &v in &order {
            let row = &cache[v * lanes..v * lanes + lanes];
            let tabu_row = &tabu_until[v * lanes..v * lanes + lanes];
            let mut scan = live;
            while scan != 0 {
                let l = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                let delta = row[l];
                let jitter: f64 = lane_rngs[l].random();
                let key = delta + jitter * 1e-9;
                let admissible =
                    tabu_row[l] <= iter || bev.energy(l) + delta < best_energy[l] - 1e-12;
                if admissible && key < chosen_key[l] {
                    chosen[l] = v;
                    chosen_key[l] = key;
                    chosen_delta[l] = delta;
                }
            }
        }
        let mut scan = live;
        while scan != 0 {
            let l = scan.trailing_zeros() as usize;
            scan &= scan - 1;
            let v = chosen[l];
            if v == usize::MAX {
                live &= !(1u64 << l);
                continue;
            }
            bev.flip_lane(v, l, chosen_delta[l]);
            tabu_until[v * lanes + l] = iter + tenure;
            iterations[l] += 1;
            if bev.energy(l) < best_energy[l] - 1e-12 {
                best_energy[l] = bev.energy(l);
                bev.write_lane_state(l, &mut best_state[l]);
                stall[l] = 0;
            } else {
                stall[l] += 1;
                if stall[l] >= params.stall_limit {
                    live &= !(1u64 << l);
                }
            }
        }
        if (iter + 1) % 512 == 0 {
            bev.resync();
        }
    }
    bev.resync();
    for l in 0..lanes {
        if bev.energy(l) < best_energy[l] {
            best_energy[l] = bev.energy(l);
            bev.write_lane_state(l, &mut best_state[l]);
        }
    }
    tabu_outcomes(&best_energy, best_state, &iterations)
}

/// Packs per-lane tabu bests into [`TabuLaneOutcome`]s.
fn tabu_outcomes(
    best_energy: &[f64],
    best_state: Vec<Vec<u8>>,
    iterations: &[u64],
) -> Vec<TabuLaneOutcome> {
    best_state
        .into_iter()
        .zip(best_energy)
        .zip(iterations)
        .map(|((state, &energy), &iterations)| TabuLaneOutcome {
            state,
            energy,
            iterations,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::auto_geometric;
    use qlrb_model::cqm::{Cqm, Sense};
    use qlrb_model::eval::{CompiledCqm, CqmEvaluator, Evaluator};
    use qlrb_model::expr::{LinearExpr, Var};
    use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};
    use std::sync::Arc;

    /// Minimize `(Σ w_i x_i − 5)²` subject to `Σ x_i ≤ 3`.
    fn model() -> Arc<CompiledCqm> {
        let w = [3.0, 1.0, 1.0, 2.0, 2.0, 1.0];
        let mut cqm = Cqm::new(w.len());
        let mut sum = LinearExpr::new();
        for (i, &wi) in w.iter().enumerate() {
            sum.add_term(Var(i as u32), wi);
        }
        cqm.add_squared_term(sum, 5.0, 1.0);
        let mut card = LinearExpr::new();
        for i in 0..w.len() {
            card.add_term(Var(i as u32), 1.0);
        }
        cqm.add_constraint(card, Sense::Le, 3.0, "at_most_3");
        CompiledCqm::compile(
            &cqm,
            PenaltyConfig::auto(&cqm, 2.0, PenaltyStyle::ViolationQuadratic),
        )
    }

    fn packed(lanes: usize) -> BatchedEvaluator {
        let mut bev = BatchedEvaluator::new(model(), lanes);
        for l in 0..lanes {
            // Distinct random-ish starts per lane.
            let state: Vec<u8> = (0..6).map(|v| ((l + v) % 2) as u8).collect();
            bev.set_lane_state(l, &state);
        }
        bev
    }

    #[test]
    fn batched_annealing_finds_the_optimum_in_some_lane() {
        let lanes = 8;
        let mut bev = packed(lanes);
        let schedules = vec![auto_geometric(2.0); lanes];
        let mut order_rng = CounterRng::stream(7, 0);
        let mut lane_rngs: Vec<CounterRng> = (0..lanes)
            .map(|l| CounterRng::stream(7, 1 + l as u64))
            .collect();
        let out = batched_annealing(
            &mut bev,
            &schedules,
            300,
            64,
            &mut order_rng,
            &mut lane_rngs,
        );
        assert_eq!(out.len(), lanes);
        let best = out.iter().map(|o| o.energy).fold(f64::INFINITY, f64::min);
        assert_eq!(best, 0.0, "a perfect feasible split exists (e.g. 3+2)");
        // Reported energies are consistent with the reported states.
        let m = model();
        for o in &out {
            let ev = CqmEvaluator::with_state(Arc::clone(&m), &o.state);
            assert!((ev.energy() - o.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn batched_annealing_is_deterministic() {
        let run = || {
            let lanes = 5;
            let mut bev = packed(lanes);
            let schedules = vec![auto_geometric(2.0); lanes];
            let mut order_rng = CounterRng::stream(3, 0);
            let mut lane_rngs: Vec<CounterRng> = (0..lanes)
                .map(|l| CounterRng::stream(3, 1 + l as u64))
                .collect();
            batched_annealing(
                &mut bev,
                &schedules,
                120,
                32,
                &mut order_rng,
                &mut lane_rngs,
            )
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.state, y.state);
            assert_eq!(x.energy, y.energy);
            assert_eq!(x.accepted, y.accepted);
        }
    }

    #[test]
    fn batched_descent_only_improves_and_reaches_local_minima() {
        let lanes = 6;
        let mut bev = packed(lanes);
        let before: Vec<f64> = bev.energies().to_vec();
        let mut rng = CounterRng::new(11);
        let flips = batched_descent(&mut bev, 100, &mut rng);
        assert_eq!(flips.len(), lanes);
        let mut deltas = [0.0f64; MAX_LANES];
        for l in 0..lanes {
            assert!(bev.energy(l) <= before[l] + 1e-9, "lane {l} got worse");
            // No improving move remains in any lane.
            for &v in &bev.active_vars().to_vec() {
                bev.flip_deltas(v, &mut deltas);
                assert!(deltas[l] >= -1e-12, "lane {l} var {v} still improvable");
            }
        }
    }

    #[test]
    fn batched_sqa_returns_a_good_classical_replica() {
        let p = 8;
        let mut bev = BatchedEvaluator::new(model(), p);
        // All replicas start from the same (poor) state.
        for l in 0..p {
            bev.set_lane_state(l, &[1, 1, 1, 1, 1, 1]);
        }
        let params = BatchedSqaParams {
            sweeps: 200,
            beta: 15.0,
            transverse: TransverseSchedule {
                gamma0: 6.0,
                gamma1: 2e-3,
            },
            global_move_fraction: 0.1,
            resync_interval: 64,
        };
        let mut rng = CounterRng::new(5);
        let out = batched_sqa(&mut bev, &params, &mut rng);
        let m = model();
        let ev = CqmEvaluator::with_state(Arc::clone(&m), &out.state);
        assert!((ev.energy() - out.energy).abs() < 1e-9);
        assert!(
            out.energy < ev_energy_of(&m, &[1, 1, 1, 1, 1, 1]),
            "SQA must beat the all-ones start"
        );
        // Determinism.
        let mut bev2 = BatchedEvaluator::new(model(), p);
        for l in 0..p {
            bev2.set_lane_state(l, &[1, 1, 1, 1, 1, 1]);
        }
        let mut rng2 = CounterRng::new(5);
        let out2 = batched_sqa(&mut bev2, &params, &mut rng2);
        assert_eq!(out.state, out2.state);
        assert_eq!(out.energy, out2.energy);
        assert_eq!(out.accepted, out2.accepted);
    }

    fn ev_energy_of(m: &Arc<CompiledCqm>, state: &[u8]) -> f64 {
        CqmEvaluator::with_state(Arc::clone(m), state).energy()
    }

    #[test]
    fn batched_tabu_beats_its_starts_and_is_deterministic() {
        let run = || {
            let lanes = 4;
            let mut bev = packed(lanes);
            let params = TabuParams {
                tenure: 0,
                max_iters: 400,
                stall_limit: 100,
            };
            let mut lane_rngs: Vec<CounterRng> = (0..lanes)
                .map(|l| CounterRng::stream(9, l as u64))
                .collect();
            (
                bev.energies().to_vec(),
                batched_tabu(&mut bev, &params, &mut lane_rngs),
            )
        };
        let (before, out) = run();
        let m = model();
        let best = out.iter().map(|o| o.energy).fold(f64::INFINITY, f64::min);
        assert_eq!(best, 0.0, "tabu finds the optimum on this toy model");
        for (l, o) in out.iter().enumerate() {
            assert!(o.energy <= before[l] + 1e-9, "lane {l} got worse");
            assert!(o.iterations > 0, "lane {l} committed no move");
            let ev = CqmEvaluator::with_state(Arc::clone(&m), &o.state);
            assert!((ev.energy() - o.energy).abs() < 1e-9);
        }
        let (_, again) = run();
        for (x, y) in out.iter().zip(&again) {
            assert_eq!(x.state, y.state);
            assert_eq!(x.energy, y.energy);
            assert_eq!(x.iterations, y.iterations);
        }
    }

    #[test]
    fn empty_active_set_is_a_noop_everywhere() {
        // A model with no variables at all.
        let cqm = Cqm::new(0);
        let compiled = CompiledCqm::compile(
            &cqm,
            PenaltyConfig::auto(&cqm, 2.0, PenaltyStyle::ViolationQuadratic),
        );
        let mut bev = BatchedEvaluator::new(Arc::clone(&compiled), 3);
        let schedules = vec![auto_geometric(1.0); 3];
        let mut rng = CounterRng::new(0);
        let mut lane_rngs = vec![CounterRng::new(1), CounterRng::new(2), CounterRng::new(3)];
        let out = batched_annealing(&mut bev, &schedules, 10, 4, &mut rng, &mut lane_rngs);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|o| o.accepted == 0));
        let mut bev = BatchedEvaluator::new(Arc::clone(&compiled), 3);
        assert_eq!(batched_descent(&mut bev, 10, &mut rng), vec![0, 0, 0]);
        let mut bev = BatchedEvaluator::new(compiled, 3);
        let params = TabuParams {
            tenure: 0,
            max_iters: 10,
            stall_limit: 5,
        };
        let out = batched_tabu(&mut bev, &params, &mut lane_rngs);
        assert!(out.iter().all(|o| o.iterations == 0));
    }
}
