//! Constraint-directed feasibility repair.
//!
//! Raw anneal samples can land slightly outside the feasible region
//! (penalties are soft). Leap-style hybrid solvers post-process samples back
//! to feasibility; this module does the same with a violation-first local
//! search: every step applies the flip that most reduces the *true* total
//! violation, breaking ties by energy, with a few random kicks when stuck on
//! a violation plateau.

use qlrb_model::eval::{CqmEvaluator, Evaluator};
use rand::Rng;

/// Repair outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Whether the final state satisfies every constraint.
    pub feasible: bool,
    /// Flips applied.
    pub steps: usize,
}

/// Walks the evaluator's state toward feasibility. Stops when feasible, when
/// no flip reduces violation and kicks are exhausted, or after `max_steps`.
pub fn repair(ev: &mut CqmEvaluator, max_steps: usize, rng: &mut impl Rng) -> RepairOutcome {
    let n = ev.num_vars();
    let mut steps = 0usize;
    let mut kicks_left = 8usize;
    while steps < max_steps {
        if ev.is_feasible() {
            return RepairOutcome {
                feasible: true,
                steps,
            };
        }
        // Best violation-reducing flip; ties by plain energy delta.
        let mut best: Option<usize> = None;
        let mut best_key = (0.0f64, f64::INFINITY);
        for v in 0..n {
            let dv = ev.violation_flip_delta(v);
            if dv < -1e-12 {
                let de = ev.flip_delta(v);
                if dv < best_key.0 - 1e-12 || (dv <= best_key.0 + 1e-12 && de < best_key.1) {
                    best_key = (dv, de);
                    best = Some(v);
                }
            }
        }
        match best {
            Some(v) => {
                ev.flip(v);
                steps += 1;
            }
            None => {
                // Violation plateau: random kick, then keep trying.
                if kicks_left == 0 || n == 0 {
                    break;
                }
                kicks_left -= 1;
                // Clamp the kick to the remaining budget: an unchecked
                // kick of (n/20).max(1) flips could push `steps` past
                // `max_steps`, overrunning the budget and over-reporting
                // the work done to the telemetry layer.
                for _ in 0..(n / 20).max(1).min(max_steps - steps) {
                    let v = rng.random_range(0..n);
                    ev.flip(v);
                    steps += 1;
                }
            }
        }
    }
    ev.resync();
    RepairOutcome {
        feasible: ev.is_feasible(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_model::cqm::{Cqm, Sense};
    use qlrb_model::eval::CompiledCqm;
    use qlrb_model::expr::{LinearExpr, Var};
    use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};
    use rand::SeedableRng;

    fn cardinality_model() -> std::sync::Arc<CompiledCqm> {
        // x0 + x1 + x2 + x3 = 2
        let mut cqm = Cqm::new(4);
        let mut e = LinearExpr::new();
        for i in 0..4 {
            e.add_term(Var(i), 1.0);
        }
        cqm.add_constraint(e, Sense::Eq, 2.0, "card");
        CompiledCqm::compile(
            &cqm,
            PenaltyConfig::uniform(10.0, PenaltyStyle::ViolationQuadratic),
        )
    }

    #[test]
    fn repairs_undershoot_and_overshoot() {
        let model = cardinality_model();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        for start in [vec![0u8, 0, 0, 0], vec![1, 1, 1, 1], vec![1, 0, 0, 0]] {
            let mut ev = CqmEvaluator::with_state(std::sync::Arc::clone(&model), &start);
            let out = repair(&mut ev, 100, &mut rng);
            assert!(out.feasible, "start {start:?}");
            assert_eq!(
                ev.state().iter().filter(|&&b| b == 1).count(),
                2,
                "start {start:?}"
            );
        }
    }

    #[test]
    fn already_feasible_is_zero_steps() {
        let model = cardinality_model();
        let mut ev = CqmEvaluator::with_state(model, &[1, 1, 0, 0]);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let out = repair(&mut ev, 100, &mut rng);
        assert!(out.feasible);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn impossible_constraint_reports_infeasible() {
        // x0 + x1 = 5 can never hold.
        let mut cqm = Cqm::new(2);
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 1.0).add_term(Var(1), 1.0);
        cqm.add_constraint(e, Sense::Eq, 5.0, "never");
        let model = CompiledCqm::compile(
            &cqm,
            PenaltyConfig::uniform(10.0, PenaltyStyle::ViolationQuadratic),
        );
        let mut ev = CqmEvaluator::new(model);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let out = repair(&mut ev, 200, &mut rng);
        assert!(!out.feasible);
    }

    #[test]
    fn kicks_never_overrun_the_step_budget() {
        // 40 vars with the unsatisfiable constraint Σx = 80: from all-zeros
        // the repair spends 40 improving flips reaching all-ones, then hits
        // a violation plateau and starts kicking (2 flips per kick at this
        // width). An unclamped kick would land exactly on the plateau with
        // one step of budget left and push `steps` past `max_steps`.
        let n: usize = 40;
        let mut cqm = Cqm::new(n);
        let mut e = LinearExpr::new();
        for i in 0..n {
            e.add_term(Var(i as u32), 1.0);
        }
        cqm.add_constraint(e, Sense::Eq, 2.0 * n as f64, "never");
        let model = CompiledCqm::compile(
            &cqm,
            PenaltyConfig::uniform(10.0, PenaltyStyle::ViolationQuadratic),
        );
        for max_steps in [n + 1, n + 2, n + 3, 2 * n] {
            let mut ev = CqmEvaluator::with_state(std::sync::Arc::clone(&model), &vec![0u8; n]);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
            let out = repair(&mut ev, max_steps, &mut rng);
            assert!(
                out.steps <= max_steps,
                "repair overran its budget: {} > {max_steps}",
                out.steps
            );
            assert!(!out.feasible);
        }
    }
}
