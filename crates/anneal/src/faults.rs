//! Deterministic fault injection for sampler backends.
//!
//! The real Leap hybrid service is a cloud endpoint whose submissions can
//! time out, fail transiently, or return garbage. The in-process portfolio
//! never exhibits those failure modes on its own, so this module provides a
//! [`FaultPlan`]: a declarative, *seed-free* schedule of injected faults
//! keyed on `(sampler, backend, read index, attempt)`. Because the decision
//! path consults only those typed values — no wall clock, no entropy, and
//! since the federation redesign no per-decision `String` either — a faulty
//! run is exactly as reproducible as a clean one, which is what lets
//! `scripts/check_faults.sh` diff two identically-seeded faulty runs.
//!
//! # JSON format
//!
//! A plan is an array of entries (optionally wrapped as
//! `{"entries": [...]}`). Each entry names the fault `kind` and optionally
//! narrows where it fires; omitted fields are wildcards:
//!
//! ```json
//! [
//!   {"sampler": "SQA", "fail_attempts": 1, "kind": "transient"},
//!   {"backend": "qpu", "kind": "timeout"},
//!   {"read": 3, "kind": "timeout"}
//! ]
//! ```
//!
//! * `sampler` — sampler name (`"SA"`, `"SQA"`, `"TABU"`, `"PT"`,
//!   case-insensitive); omitted = every sampler. Parsed into a typed
//!   [`SamplerKind`] up front, so matching allocates nothing.
//! * `backend` — pool-member id the entry targets (case-insensitive);
//!   omitted = every backend.
//! * `read` — read index within the solve; omitted = every read.
//! * `fail_attempts` — the fault fires on attempts `0..fail_attempts`, so
//!   the entry models a backend that recovers after that many retries;
//!   omitted = fails forever (a dead backend).
//! * `kind` — `"timeout"`, `"transient"`, `"crash"`, or `"malformed"`.
//!
//! The first matching entry wins, so narrower entries should precede
//! broader ones.

use std::fmt;

use crate::backend::BackendId;
use crate::hybrid::SamplerKind;

/// The failure mode an injected fault simulates. Mirrors the variants of
/// `SubmitError` the backend surfaces to the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The submission exceeded its service-side deadline.
    Timeout,
    /// A transient service error (the kind a retry is expected to clear).
    Transient,
    /// The backend process died.
    Crash,
    /// The backend answered, but with an unusable sample set.
    Malformed,
}

impl FaultKind {
    /// The lowercase JSON spelling of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Timeout => "timeout",
            Self::Transient => "transient",
            Self::Crash => "crash",
            Self::Malformed => "malformed",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "timeout" => Ok(Self::Timeout),
            "transient" => Ok(Self::Transient),
            "crash" => Ok(Self::Crash),
            "malformed" => Ok(Self::Malformed),
            other => Err(format!(
                "unknown fault kind '{other}' (expected timeout, transient, crash, or malformed)"
            )),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One schedule entry: which submissions fault, and how. `None` fields are
/// wildcards (see the module docs for the JSON spelling).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEntry {
    /// Sampler the entry targets; `None` = every sampler.
    pub sampler: Option<SamplerKind>,
    /// Backend id the entry targets (matched case-insensitively);
    /// `None` = every backend.
    pub backend: Option<String>,
    /// Read index the entry targets; `None` = every read.
    pub read: Option<usize>,
    /// Fault fires on attempts `0..fail_attempts`; `None` = every attempt.
    pub fail_attempts: Option<u32>,
    /// The failure mode to inject.
    pub kind: FaultKind,
}

impl FaultEntry {
    fn matches(
        &self,
        sampler: SamplerKind,
        backend: &BackendId,
        read: usize,
        attempt: u32,
    ) -> bool {
        if let Some(s) = self.sampler {
            if s != sampler {
                return false;
            }
        }
        if let Some(b) = &self.backend {
            if !b.eq_ignore_ascii_case(backend.as_str()) {
                return false;
            }
        }
        if let Some(r) = self.read {
            if r != read {
                return false;
            }
        }
        match self.fail_attempts {
            Some(n) => attempt < n,
            None => true,
        }
    }
}

/// A deterministic fault schedule: an ordered list of [`FaultEntry`]s
/// consulted first-match-wins for every `(sampler, backend, read, attempt)`
/// tuple. The default plan is empty (no faults).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The schedule, in priority order.
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// A plan that fails *every* submission with `kind` — the
    /// all-samplers-dead scenario.
    pub fn permanent(kind: FaultKind) -> Self {
        Self {
            entries: vec![FaultEntry {
                sampler: None,
                backend: None,
                read: None,
                fail_attempts: None,
                kind,
            }],
        }
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The fault (if any) to inject for attempt `attempt` of read `read`
    /// on `sampler` dispatched to `backend`. First matching entry wins.
    /// Allocation-free: this runs once per retry decision in the hot path.
    pub fn fault_for(
        &self,
        sampler: SamplerKind,
        backend: &BackendId,
        read: usize,
        attempt: u32,
    ) -> Option<FaultKind> {
        self.entries
            .iter()
            .find(|e| e.matches(sampler, backend, read, attempt))
            .map(|e| e.kind)
    }

    /// Parses a plan from its JSON spelling: a bare entry array or an
    /// `{"entries": [...]}` wrapper. Rejects unknown keys, unknown fault
    /// kinds, and sampler names outside the portfolio vocabulary, so typos
    /// fail loudly instead of silently never matching.
    ///
    /// # Errors
    /// Returns a description of the first syntactic or semantic problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut p = Parser::new(text);
        p.skip_ws();
        let entries = match p.peek() {
            Some(b'[') => p.parse_entry_array()?,
            Some(b'{') => {
                p.advance();
                p.skip_ws();
                let key = p.parse_string()?;
                if key != "entries" {
                    return Err(format!("expected key 'entries', found '{key}'"));
                }
                p.skip_ws();
                p.expect_byte(b':')?;
                p.skip_ws();
                let entries = p.parse_entry_array()?;
                p.skip_ws();
                p.expect_byte(b'}')?;
                entries
            }
            _ => return Err("fault plan must be a JSON array or {\"entries\": [...]}".into()),
        };
        p.skip_ws();
        if p.peek().is_some() {
            return Err("trailing characters after fault plan".into());
        }
        Ok(Self { entries })
    }
}

/// Minimal recursive-descent parser for the fault-plan JSON subset
/// (objects, arrays, strings, unsigned integers, `null`). Hand-rolled so
/// `qlrb-anneal` stays free of serialization dependencies.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.advance();
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.advance();
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    /// A double-quoted string; escapes are limited to `\"` and `\\`, which
    /// covers every name the format can contain.
    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.advance();
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.advance();
                    match self.peek() {
                        Some(c @ (b'"' | b'\\')) => {
                            out.push(char::from(c));
                            self.advance();
                        }
                        _ => return Err(format!("unsupported escape at byte {}", self.pos)),
                    }
                }
                Some(c) => {
                    out.push(char::from(c));
                    self.advance();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_uint(&mut self) -> Result<u64, String> {
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(c @ b'0'..=b'9') = self.peek() {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(c - b'0')))
                .ok_or_else(|| format!("integer overflow at byte {start}"))?;
            self.advance();
        }
        if self.pos == start {
            return Err(format!("expected unsigned integer at byte {start}"));
        }
        Ok(value)
    }

    fn parse_null(&mut self) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            Ok(())
        } else {
            Err(format!("expected null at byte {}", self.pos))
        }
    }

    fn parse_entry_array(&mut self) -> Result<Vec<FaultEntry>, String> {
        self.expect_byte(b'[')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.advance();
            return Ok(entries);
        }
        loop {
            self.skip_ws();
            entries.push(self.parse_entry()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.advance(),
                Some(b']') => {
                    self.advance();
                    return Ok(entries);
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_entry(&mut self) -> Result<FaultEntry, String> {
        self.expect_byte(b'{')?;
        let mut sampler = None;
        let mut backend = None;
        let mut read = None;
        let mut fail_attempts = None;
        let mut kind = None;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.advance();
                break;
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            match key.as_str() {
                "sampler" => {
                    if self.peek() == Some(b'n') {
                        self.parse_null()?;
                    } else {
                        let name = self.parse_string()?;
                        sampler = Some(SamplerKind::parse(&name).ok_or_else(|| {
                            format!("unknown sampler '{name}' (expected one of SA, SQA, TABU, PT)")
                        })?);
                    }
                }
                "backend" => {
                    if self.peek() == Some(b'n') {
                        self.parse_null()?;
                    } else {
                        let name = self.parse_string()?;
                        if name.is_empty() {
                            return Err("fault-plan backend id must not be empty".into());
                        }
                        backend = Some(name);
                    }
                }
                "read" => {
                    if self.peek() == Some(b'n') {
                        self.parse_null()?;
                    } else {
                        let v = self.parse_uint()?;
                        read = Some(usize::try_from(v).map_err(|_| "read index too large")?);
                    }
                }
                "fail_attempts" => {
                    if self.peek() == Some(b'n') {
                        self.parse_null()?;
                    } else {
                        let v = self.parse_uint()?;
                        fail_attempts =
                            Some(u32::try_from(v).map_err(|_| "fail_attempts too large")?);
                    }
                }
                "kind" => kind = Some(FaultKind::parse(&self.parse_string()?)?),
                other => {
                    return Err(format!(
                        "unknown fault-plan key '{other}' \
                         (expected sampler, backend, read, fail_attempts, or kind)"
                    ))
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.advance(),
                Some(b'}') => {
                    self.advance();
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
        let kind = kind.ok_or("fault-plan entry missing required key 'kind'")?;
        Ok(FaultEntry {
            sampler,
            backend,
            read,
            fail_attempts,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any_backend() -> BackendId {
        BackendId::from_static("in-process")
    }

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.fault_for(SamplerKind::Sa, &any_backend(), 0, 0), None);
    }

    #[test]
    fn permanent_plan_faults_everything() {
        let plan = FaultPlan::permanent(FaultKind::Crash);
        for sampler in [
            SamplerKind::Sa,
            SamplerKind::Sqa,
            SamplerKind::Tabu,
            SamplerKind::Pt,
        ] {
            for read in [0, 7, 1000] {
                for attempt in [0, 3] {
                    assert_eq!(
                        plan.fault_for(sampler, &any_backend(), read, attempt),
                        Some(FaultKind::Crash)
                    );
                }
            }
        }
    }

    #[test]
    fn parses_bare_array_with_wildcards() {
        let plan = FaultPlan::from_json(
            r#"[
                {"sampler": "SQA", "fail_attempts": 1, "kind": "transient"},
                {"read": 3, "kind": "timeout"}
            ]"#,
        )
        .unwrap();
        assert_eq!(plan.entries.len(), 2);
        assert_eq!(plan.entries[0].sampler, Some(SamplerKind::Sqa));
        let b = any_backend();
        // SQA faults only on attempt 0 (recovers under retry).
        assert_eq!(
            plan.fault_for(SamplerKind::Sqa, &b, 5, 0),
            Some(FaultKind::Transient)
        );
        assert_eq!(plan.fault_for(SamplerKind::Sqa, &b, 5, 1), None);
        // Read 3 times out for every sampler and attempt.
        assert_eq!(
            plan.fault_for(SamplerKind::Sa, &b, 3, 2),
            Some(FaultKind::Timeout)
        );
        assert_eq!(plan.fault_for(SamplerKind::Sa, &b, 4, 0), None);
    }

    #[test]
    fn sampler_names_parse_case_insensitively() {
        let plan = FaultPlan::from_json(r#"[{"sampler": "sqa", "kind": "crash"}]"#).unwrap();
        assert_eq!(plan.entries[0].sampler, Some(SamplerKind::Sqa));
    }

    #[test]
    fn backend_key_narrows_entries_to_one_pool_member() {
        let plan = FaultPlan::from_json(r#"[{"backend": "qpu", "kind": "timeout"}]"#).unwrap();
        let qpu = BackendId::new("qpu");
        let fast = BackendId::new("fast");
        assert_eq!(
            plan.fault_for(SamplerKind::Sa, &qpu, 0, 0),
            Some(FaultKind::Timeout)
        );
        // Ids match case-insensitively, like sampler names.
        assert_eq!(
            plan.fault_for(SamplerKind::Sa, &BackendId::new("QPU"), 0, 0),
            Some(FaultKind::Timeout)
        );
        assert_eq!(plan.fault_for(SamplerKind::Sa, &fast, 0, 0), None);
    }

    #[test]
    fn first_matching_entry_wins() {
        let plan =
            FaultPlan::from_json(r#"[{"sampler": "SA", "kind": "crash"}, {"kind": "timeout"}]"#)
                .unwrap();
        let b = any_backend();
        assert_eq!(
            plan.fault_for(SamplerKind::Sa, &b, 0, 0),
            Some(FaultKind::Crash)
        );
        assert_eq!(
            plan.fault_for(SamplerKind::Tabu, &b, 0, 0),
            Some(FaultKind::Timeout)
        );
    }

    #[test]
    fn parses_entries_wrapper_and_nulls() {
        let plan = FaultPlan::from_json(
            r#"{"entries": [{"sampler": null, "backend": null, "read": null,
                             "fail_attempts": null, "kind": "malformed"}]}"#,
        )
        .unwrap();
        assert_eq!(plan.entries.len(), 1);
        assert_eq!(
            plan.fault_for(SamplerKind::Pt, &any_backend(), 9, 4),
            Some(FaultKind::Malformed)
        );
    }

    #[test]
    fn rejects_malformed_plans() {
        for (input, needle) in [
            ("", "array"),
            ("[{\"kind\": \"explode\"}]", "unknown fault kind"),
            (
                "[{\"sampler\": \"QPU9000\", \"kind\": \"crash\"}]",
                "unknown sampler",
            ),
            (
                "[{\"backend\": \"\", \"kind\": \"crash\"}]",
                "must not be empty",
            ),
            ("[{\"read\": 0}]", "missing required key 'kind'"),
            (
                "[{\"frequency\": 2, \"kind\": \"crash\"}]",
                "unknown fault-plan key",
            ),
            ("[{\"kind\": \"crash\"}] trailing", "trailing"),
            ("[{\"kind\": \"crash\"", "expected"),
        ] {
            let err = FaultPlan::from_json(input).unwrap_err();
            assert!(
                err.contains(needle),
                "input {input:?}: error '{err}' should mention '{needle}'"
            );
        }
    }

    #[test]
    fn fault_kind_round_trips_through_display() {
        for kind in [
            FaultKind::Timeout,
            FaultKind::Transient,
            FaultKind::Crash,
            FaultKind::Malformed,
        ] {
            assert_eq!(FaultKind::parse(&kind.to_string()).unwrap(), kind);
        }
    }
}
