#![forbid(unsafe_code)]
//! # qlrb-anneal — annealing substrate and hybrid CQM solver
//!
//! The paper solves its CQM formulations on D-Wave's Leap hybrid CQM solver,
//! a cloud service that pairs a classical heuristic frontend with quantum
//! annealing hardware. No D-Wave bindings exist for this environment, so this
//! crate implements the closest faithful stand-in, from scratch:
//!
//! * [`sa`] — Metropolis simulated annealing over any
//!   [`qlrb_model::eval::Evaluator`], with auto-scaled geometric temperature
//!   schedules.
//! * [`sqa`] — *simulated quantum annealing*: path-integral Monte Carlo of
//!   the transverse-field Ising model (Trotter replicas coupled along
//!   imaginary time, with the standard
//!   `J⊥(Γ) = −(P·T/2)·ln tanh(Γ/(P·T))` coupling schedule). This is the
//!   textbook classical simulation of the quantum annealing dynamics D-Wave
//!   hardware performs.
//! * [`descent`] / [`tabu`] — greedy polish and tabu search, the classical
//!   post-processing Leap-style solvers apply to raw anneal samples.
//! * [`repair`] — constraint-directed feasibility repair.
//! * [`batch`] / [`crng`] — the opt-in batched fast path
//!   (`HybridSolverBuilder::batched`): SoA bitset kernels that evaluate one
//!   CSR traversal for up to 64 lanes at once (lane-per-read for SA, tabu
//!   and polish; lane-per-Trotter-replica for SQA), driven by splitmix64
//!   counter RNG streams.
//! * [`hybrid`] — [`hybrid::HybridCqmSolver`]: presolve → penalty compile →
//!   a rayon-parallel portfolio of SA/SQA/tabu reads seeded with classical
//!   candidate states → polish → repair → best-feasible selection, with the
//!   CPU/"QPU" time split the paper reports in its runtime columns.
//! * [`scheduler`] — deterministic adaptive wave scheduling for the hybrid
//!   solver: plateau-based early termination, bandit read allocation, and
//!   elite cross-seeding (see `HybridSolverBuilder::adaptive`).
//! * [`decompose`] — the opt-in active-window decomposition frontend
//!   (`HybridSolverBuilder::decompose`): models wider than the tabu cap are
//!   solved through a deterministic sequence of frozen-complement windows
//!   extracted with `qlrb_model::Cqm::subview`, each handed to the
//!   unchanged portfolio; off, oversized models surface a structured
//!   [`ModelTooLarge`] from `solve_checked` instead of silently
//!   downgrading.
//! * [`backend`] / [`faults`] — the fallible submission boundary: every
//!   read goes through a [`backend::Backend`] whose `submit()` can fail
//!   like a cloud sampler endpoint (timeout / transient / crash /
//!   malformed), plus a deterministic [`faults::FaultPlan`] injection layer
//!   for exercising the solver's retry, backoff, and degradation paths.
//!   Backends federate into a [`backend::BackendPool`] of heterogeneous
//!   members, each declaring a [`backend::BackendProfile`] (virtual-clock
//!   latency, cost-per-read, reliability class); the solver's bandit
//!   allocates reads across (sampler, backend) pairs, retries rotate across
//!   members, and stragglers can be speculatively raced against a duplicate
//!   on the next member (`HybridSolverBuilder::speculate`).
//!
//! Determinism: every entry point takes a seed; identical seeds produce
//! identical sample sets (rayon parallelism is over independently-seeded
//! reads, so scheduling order cannot leak into results).

pub mod backend;
pub mod batch;
pub mod crng;
pub mod decompose;
pub mod descent;
pub mod faults;
pub mod hybrid;
pub mod pt;
pub mod repair;
pub mod run;
pub mod sa;
pub mod sampleset;
pub mod schedule;
pub mod scheduler;
pub mod sqa;
pub mod tabu;

pub use backend::{
    Backend, BackendId, BackendPool, BackendProfile, FaultInjectingBackend, InProcessBackend,
    ProfiledBackend, ReliabilityClass, SubmitError, SubmitRequest,
};
pub use batch::{
    batched_annealing, batched_descent, batched_sqa, batched_tabu, BatchedSqaParams, LaneOutcome,
    TabuLaneOutcome,
};
pub use crng::CounterRng;
pub use decompose::{solve_active_windows, ActiveWindowOutcome};
pub use faults::{FaultEntry, FaultKind, FaultPlan};
pub use hybrid::{
    HybridCqmSolver, HybridSolverBuilder, LintMode, ModelRejected, ModelTooLarge, SamplerKind,
    SolveError, SolverBuildError,
};
pub use pt::PtParams;
pub use run::{SamplerExtras, SamplerRun};
pub use sa::SaParams;
pub use sampleset::{Sample, SampleSet, SampleSetSummary, SolverTiming};
pub use schedule::BetaSchedule;
pub use scheduler::{PortfolioScheduler, ReadStats, SchedulerConfig, TerminationReason, WavePlan};
pub use sqa::SqaParams;
pub use tabu::TabuParams;

pub use qlrb_telemetry as telemetry;
