//! Sample sets returned by the hybrid solver.

use std::time::Duration;

pub use qlrb_telemetry::SampleSetSummary;

use crate::hybrid::SamplerKind;

/// One solution sample: a binary assignment with its quality metrics,
/// measured against the *original* CQM (not the penalized surrogate).
#[derive(Debug, Clone)]
pub struct Sample {
    /// The assignment, truncated to the CQM's variable width (slack
    /// variables, if any, are stripped).
    pub state: Vec<u8>,
    /// Objective value of the original CQM.
    pub objective: f64,
    /// Total true violation magnitude (0 iff feasible).
    pub violation: f64,
    /// Whether every constraint is satisfied.
    pub feasible: bool,
    /// Which portfolio member produced it.
    pub sampler: SamplerKind,
}

/// CPU vs (simulated) QPU time split, mirroring the paper's Table V runtime
/// columns.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverTiming {
    /// Wall-clock time of the whole hybrid solve (classical side).
    pub cpu: Duration,
    /// Deterministic surrogate for quantum-processor access time: the
    /// D-Wave-style charge for the annealing portion of the workflow.
    pub qpu: Duration,
}

/// An ordered collection of samples: feasible ones first, then by objective.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    /// Samples, best first.
    pub samples: Vec<Sample>,
    /// Timing split.
    pub timing: SolverTiming,
}

impl SampleSet {
    /// Sorts samples best-first: feasibility strictly dominates, then lower
    /// objective, then lower violation.
    pub fn sort(&mut self) {
        self.samples.sort_by(|a, b| {
            b.feasible
                .cmp(&a.feasible)
                .then(a.objective.total_cmp(&b.objective))
                .then(a.violation.total_cmp(&b.violation))
        });
    }

    /// The best feasible sample, if any.
    pub fn best_feasible(&self) -> Option<&Sample> {
        self.samples.iter().find(|s| s.feasible)
    }

    /// The best sample overall (feasible-first ordering).
    pub fn best(&self) -> Option<&Sample> {
        self.samples.first()
    }

    /// Number of feasible samples.
    pub fn num_feasible(&self) -> usize {
        self.samples.iter().filter(|s| s.feasible).count()
    }

    /// The stable reporting surface over this set: counts, objective range,
    /// and spread — what manifests and benches consume instead of poking
    /// sample fields.
    pub fn summary(&self) -> SampleSetSummary {
        let mut best: Option<f64> = None;
        let mut worst: Option<f64> = None;
        for s in &self.samples {
            best = Some(best.map_or(s.objective, |b| b.min(s.objective)));
            worst = Some(worst.map_or(s.objective, |w| w.max(s.objective)));
        }
        SampleSetSummary {
            num_samples: self.samples.len(),
            num_feasible: self.num_feasible(),
            best_objective: best,
            worst_objective: worst,
            objective_spread: best.zip(worst).map(|(b, w)| w - b),
            best_feasible_objective: self.best_feasible().map(|s| s.objective),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(feasible: bool, objective: f64) -> Sample {
        Sample {
            state: vec![],
            objective,
            violation: if feasible { 0.0 } else { 1.0 },
            feasible,
            sampler: SamplerKind::Sa,
        }
    }

    #[test]
    fn sort_prefers_feasible_then_objective() {
        let mut set = SampleSet {
            samples: vec![sample(false, -10.0), sample(true, 5.0), sample(true, 2.0)],
            timing: SolverTiming::default(),
        };
        set.sort();
        assert!(set.samples[0].feasible && set.samples[0].objective == 2.0);
        assert!(set.samples[1].feasible && set.samples[1].objective == 5.0);
        assert!(!set.samples[2].feasible);
        assert_eq!(set.num_feasible(), 2);
        assert_eq!(set.best_feasible().unwrap().objective, 2.0);
    }

    #[test]
    fn summary_reports_range_and_counts() {
        let mut set = SampleSet {
            samples: vec![sample(false, -10.0), sample(true, 5.0), sample(true, 2.0)],
            timing: SolverTiming::default(),
        };
        set.sort();
        let sum = set.summary();
        assert_eq!(sum.num_samples, 3);
        assert_eq!(sum.num_feasible, 2);
        assert_eq!(sum.best_objective, Some(-10.0));
        assert_eq!(sum.worst_objective, Some(5.0));
        assert_eq!(sum.objective_spread, Some(15.0));
        assert_eq!(sum.best_feasible_objective, Some(2.0));
    }

    #[test]
    fn empty_set_summary_is_all_none() {
        let sum = SampleSet::default().summary();
        assert_eq!(sum.num_samples, 0);
        assert_eq!(sum.best_objective, None);
        assert_eq!(sum.objective_spread, None);
        assert_eq!(sum.best_feasible_objective, None);
    }

    #[test]
    fn empty_set_has_no_best() {
        let set = SampleSet::default();
        assert!(set.best().is_none());
        assert!(set.best_feasible().is_none());
    }
}
