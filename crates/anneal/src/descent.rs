//! Greedy local descent (zero-temperature polish).

use qlrb_model::eval::Evaluator;
use rand::seq::SliceRandom;
use rand::Rng;

/// First-improvement descent: repeatedly sweep all variables in random order
/// applying every energy-reducing flip, until a full sweep makes no progress
/// or `max_sweeps` is exhausted.
///
/// Reads candidate deltas from the evaluator's flip-delta cache when one is
/// available ([`Evaluator::enable_delta_cache`]): polish runs are dominated
/// by rejected proposals, so a flat array read per candidate beats an
/// on-demand delta recomputation. Evaluators without cache support fall
/// back transparently.
///
/// Returns the number of improving flips applied.
pub fn greedy_descent<E: Evaluator>(ev: &mut E, max_sweeps: usize, rng: &mut impl Rng) -> u64 {
    let n = ev.num_vars();
    if n == 0 {
        return 0;
    }
    // Sweep only the active set — presolve-fixed variables can never offer
    // an improving flip (their delta is identically zero).
    let mut order: Vec<usize> = match ev.active_vars() {
        Some(active) => active.to_vec(),
        None => (0..n).collect(),
    };
    if order.is_empty() {
        return 0;
    }
    let use_cache = ev.enable_delta_cache();
    let mut total = 0u64;
    for _ in 0..max_sweeps {
        order.shuffle(rng);
        let mut improved = false;
        for &v in &order {
            let delta = if use_cache {
                ev.cached_deltas().expect("cache enabled above")[v] // qlrb-lint: allow(no-unwrap)
            } else {
                ev.flip_delta(v)
            };
            if delta < -1e-12 {
                ev.flip_known(v, delta);
                improved = true;
                total += 1;
            }
        }
        if !improved {
            break;
        }
    }
    ev.resync();
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_model::bqm::BinaryQuadraticModel;
    use qlrb_model::eval::BqmEvaluator;
    use qlrb_model::Var;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn descends_to_local_minimum() {
        // E = -x0 - x1 + 3·x0·x1: minima at (1,0) and (0,1), E = -1.
        let mut bqm = BinaryQuadraticModel::new(2);
        bqm.add_linear(Var(0), -1.0);
        bqm.add_linear(Var(1), -1.0);
        bqm.add_quadratic(Var(0), Var(1), 3.0);
        let mut ev = BqmEvaluator::new(Arc::new(bqm));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let flips = greedy_descent(&mut ev, 100, &mut rng);
        assert!(flips >= 1);
        assert_eq!(ev.energy(), -1.0);
        // No improving move remains.
        for v in 0..2 {
            assert!(ev.flip_delta(v) >= -1e-12);
        }
    }

    #[test]
    fn noop_at_minimum() {
        let mut bqm = BinaryQuadraticModel::new(2);
        bqm.add_linear(Var(0), 1.0);
        bqm.add_linear(Var(1), 1.0);
        let mut ev = BqmEvaluator::new(Arc::new(bqm)); // all-zeros is optimal
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        assert_eq!(greedy_descent(&mut ev, 10, &mut rng), 0);
    }

    #[test]
    fn empty_model() {
        let bqm = BinaryQuadraticModel::new(0);
        let mut ev = BqmEvaluator::new(Arc::new(bqm));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        assert_eq!(greedy_descent(&mut ev, 10, &mut rng), 0);
    }
}
