//! Unified sampler dispatch: one entry point over the four samplers.
//!
//! [`SamplerRun`] carries the fields every sampler shares (sweep budget,
//! cache-resync cadence) plus a per-kind [`SamplerExtras`] payload, and its
//! [`SamplerRun::run`] drives the underlying free function *unchanged* — the
//! RNG consumption pattern is byte-for-byte what calling the sampler
//! directly would produce, so solver determinism is untouched. The telemetry
//! [`ReadObserver`] attaches here, uniformly, instead of in four
//! copy-pasted match arms inside `hybrid.rs`.

use qlrb_model::eval::Evaluator;
use qlrb_telemetry::ReadObserver;
use rand::Rng;

use crate::hybrid::SamplerKind;
use crate::pt::{parallel_tempering, PtParams};
use crate::sa::{simulated_annealing, AnnealResult, SaParams};
use crate::schedule::{auto_geometric, BetaSchedule, TransverseSchedule};
use crate::sqa::{simulated_quantum_annealing, SqaParams};
use crate::tabu::{tabu_search, TabuParams};

/// Per-sampler parameters beyond the shared ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerExtras {
    /// Metropolis simulated annealing.
    Sa {
        /// Inverse-temperature schedule over the sweeps.
        schedule: BetaSchedule,
    },
    /// Path-integral simulated quantum annealing.
    Sqa {
        /// Trotter replicas `P`.
        replicas: usize,
        /// Inverse temperature of the quantum bath.
        beta: f64,
        /// Transverse-field schedule.
        transverse: TransverseSchedule,
        /// Fraction of variables tried as all-replica moves per sweep.
        global_move_fraction: f64,
    },
    /// Tabu search; here `SamplerRun::sweeps` is the *move* budget
    /// (`max_iters`).
    Tabu {
        /// Tabu tenure (`0` = auto).
        tenure: usize,
        /// Stop after this many non-improving moves in a row.
        stall_limit: usize,
    },
    /// Parallel tempering.
    Pt {
        /// Temperature rungs.
        replicas: usize,
        /// Coldest inverse temperature.
        beta_max: f64,
        /// Hottest inverse temperature.
        beta_min: f64,
    },
}

/// One sampler invocation: shared budget fields plus kind-specific extras.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerRun {
    /// Sweep budget (tabu: total move budget).
    pub sweeps: usize,
    /// Evaluator caches resync every this many sweeps (tabu manages its own
    /// cadence internally).
    pub resync_interval: usize,
    /// Kind-specific parameters.
    pub extras: SamplerExtras,
}

impl SamplerRun {
    /// Which portfolio member this run drives.
    pub fn kind(&self) -> SamplerKind {
        match self.extras {
            SamplerExtras::Sa { .. } => SamplerKind::Sa,
            SamplerExtras::Sqa { .. } => SamplerKind::Sqa,
            SamplerExtras::Tabu { .. } => SamplerKind::Tabu,
            SamplerExtras::Pt { .. } => SamplerKind::Pt,
        }
    }

    /// Wraps explicit SA parameters.
    pub fn sa(params: SaParams) -> Self {
        Self {
            sweeps: params.sweeps,
            resync_interval: params.resync_interval,
            extras: SamplerExtras::Sa {
                schedule: params.schedule,
            },
        }
    }

    /// Wraps explicit SQA parameters.
    pub fn sqa(params: SqaParams) -> Self {
        Self {
            sweeps: params.sweeps,
            resync_interval: params.resync_interval,
            extras: SamplerExtras::Sqa {
                replicas: params.replicas,
                beta: params.beta,
                transverse: params.transverse,
                global_move_fraction: params.global_move_fraction,
            },
        }
    }

    /// Wraps explicit tabu parameters (`max_iters` becomes the shared
    /// `sweeps` budget).
    pub fn tabu(params: TabuParams) -> Self {
        Self {
            sweeps: params.max_iters,
            resync_interval: 512, // tabu's fixed internal cadence
            extras: SamplerExtras::Tabu {
                tenure: params.tenure,
                stall_limit: params.stall_limit,
            },
        }
    }

    /// Wraps explicit parallel-tempering parameters.
    pub fn pt(params: PtParams) -> Self {
        Self {
            sweeps: params.sweeps,
            resync_interval: params.resync_interval,
            extras: SamplerExtras::Pt {
                replicas: params.replicas,
                beta_max: params.beta_max,
                beta_min: params.beta_min,
            },
        }
    }

    /// The hybrid solver's portfolio sizing rules: derives each member's
    /// budget from the configured SA `sweeps`, the SQA replica count, and
    /// the probed energy-delta `scale` of the model at hand.
    ///
    /// SA runs the full sweep budget on an auto-scaled geometric ladder;
    /// SQA takes `sweeps / 4` (each sweep touches every replica) at
    /// scale-adjusted temperature and transverse field; tabu gets a
    /// `2·sweeps` move budget with a `sweeps / 2` stall cutoff; PT takes
    /// `sweeps / 4` over a scale-adjusted ladder.
    pub fn for_portfolio(
        kind: SamplerKind,
        sweeps: usize,
        sqa_replicas: usize,
        scale: f64,
    ) -> Self {
        match kind {
            SamplerKind::Sa => Self::sa(SaParams {
                sweeps,
                schedule: auto_geometric(scale),
                resync_interval: 256,
            }),
            SamplerKind::Sqa => Self::sqa(SqaParams {
                replicas: sqa_replicas,
                sweeps: (sweeps / 4).max(50),
                beta: 30.0 / scale,
                transverse: TransverseSchedule {
                    gamma0: 3.0 * scale,
                    gamma1: 1e-3 * scale,
                },
                global_move_fraction: 0.1,
                resync_interval: 128,
            }),
            SamplerKind::Tabu => Self::tabu(TabuParams {
                tenure: 0,
                max_iters: sweeps * 2,
                stall_limit: (sweeps / 2).max(100),
            }),
            SamplerKind::Pt => Self::pt(PtParams {
                replicas: sqa_replicas.clamp(4, 12),
                sweeps: (sweeps / 4).max(50),
                beta_max: 60.0 / scale,
                beta_min: 0.2 / scale,
                resync_interval: 128,
            }),
        }
    }

    /// Runs the sampler from the evaluator's current state and reports the
    /// stage to `obs`. RNG consumption is identical to calling the
    /// underlying sampler directly; the observer only reads statistics the
    /// sampler already produced.
    pub fn run<E: Evaluator + Clone>(
        &self,
        ev: &mut E,
        rng: &mut impl Rng,
        obs: &mut ReadObserver,
    ) -> AnnealResult {
        // Proposal counts are per *active* variable: samplers skip
        // presolve-fixed bits, and the scheduler uses these counts as its
        // deterministic CPU-cost proxy, so they must reflect work done.
        let n = ev.active_vars().map_or(ev.num_vars(), <[usize]>::len) as u64;
        let initial_energy = ev.energy();
        let kind = self.kind().to_string();
        match self.extras {
            SamplerExtras::Sa { schedule } => {
                let params = SaParams {
                    sweeps: self.sweeps,
                    schedule,
                    resync_interval: self.resync_interval,
                };
                let res = simulated_annealing(ev, &params, rng);
                obs.anneal(
                    &kind,
                    initial_energy,
                    res.energy,
                    self.sweeps as u64,
                    self.sweeps as u64 * n,
                    res.accepted,
                );
                res
            }
            SamplerExtras::Sqa {
                replicas,
                beta,
                transverse,
                global_move_fraction,
            } => {
                let params = SqaParams {
                    replicas,
                    sweeps: self.sweeps,
                    beta,
                    transverse,
                    global_move_fraction,
                    resync_interval: self.resync_interval,
                };
                let res = simulated_quantum_annealing(&*ev, &params, rng);
                let p = replicas.max(2) as u64;
                let global_per_sweep = (n as f64 * global_move_fraction) as u64;
                obs.anneal(
                    &kind,
                    initial_energy,
                    res.energy,
                    self.sweeps as u64,
                    self.sweeps as u64 * (n * p + global_per_sweep),
                    res.accepted,
                );
                res
            }
            SamplerExtras::Tabu {
                tenure,
                stall_limit,
            } => {
                let params = TabuParams {
                    tenure,
                    max_iters: self.sweeps,
                    stall_limit,
                };
                let res = tabu_search(ev, &params, rng);
                // Each tabu iteration scans the full neighbourhood and
                // commits exactly one move.
                obs.anneal(
                    &kind,
                    initial_energy,
                    res.energy,
                    res.iterations as u64,
                    res.iterations as u64 * n,
                    res.iterations as u64,
                );
                AnnealResult {
                    state: res.state,
                    energy: res.energy,
                    accepted: res.iterations as u64,
                }
            }
            SamplerExtras::Pt {
                replicas,
                beta_max,
                beta_min,
            } => {
                let params = PtParams {
                    replicas,
                    sweeps: self.sweeps,
                    beta_max,
                    beta_min,
                    resync_interval: self.resync_interval,
                };
                let res = parallel_tempering(&*ev, &params, rng);
                let r = replicas.max(2) as u64;
                obs.anneal(
                    &kind,
                    initial_energy,
                    res.energy,
                    self.sweeps as u64,
                    self.sweeps as u64 * n * r,
                    res.accepted,
                );
                res
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_model::bqm::BinaryQuadraticModel;
    use qlrb_model::eval::BqmEvaluator;
    use qlrb_model::Var;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn model() -> Arc<BinaryQuadraticModel> {
        let mut bqm = BinaryQuadraticModel::new(6);
        for i in 0..6u32 {
            bqm.add_linear(Var(i), 1.0);
        }
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                bqm.add_quadratic(Var(i), Var(j), -1.0);
            }
        }
        Arc::new(bqm)
    }

    #[test]
    fn kind_round_trips_through_for_portfolio() {
        for kind in [
            SamplerKind::Sa,
            SamplerKind::Sqa,
            SamplerKind::Tabu,
            SamplerKind::Pt,
        ] {
            assert_eq!(SamplerRun::for_portfolio(kind, 100, 8, 1.0).kind(), kind);
        }
    }

    #[test]
    fn unified_run_matches_direct_sampler_call() {
        // The whole point of SamplerRun: identical RNG stream, identical
        // result, observer attached on the side.
        let m = model();
        let params = SaParams {
            sweeps: 80,
            schedule: auto_geometric(1.0),
            resync_interval: 256,
        };

        let mut ev_direct = BqmEvaluator::new(Arc::clone(&m));
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let direct = simulated_annealing(&mut ev_direct, &params, &mut rng);

        let mut ev_unified = BqmEvaluator::new(Arc::clone(&m));
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut obs = ReadObserver::recording(0, 17, false);
        let unified = SamplerRun::sa(params).run(&mut ev_unified, &mut rng, &mut obs);

        assert_eq!(direct.state, unified.state);
        assert_eq!(direct.accepted, unified.accepted);
        let rec = obs.finish(unified.energy).unwrap();
        assert_eq!(rec.sampler, "SA");
        assert_eq!(rec.sweeps, 80);
        assert_eq!(rec.proposals, 80 * 6);
        assert_eq!(rec.accepted, direct.accepted);
    }

    #[test]
    fn observer_sees_every_kind() {
        let m = model();
        for kind in [
            SamplerKind::Sa,
            SamplerKind::Sqa,
            SamplerKind::Tabu,
            SamplerKind::Pt,
        ] {
            let mut ev = BqmEvaluator::new(Arc::clone(&m));
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let mut obs = ReadObserver::recording(0, 5, false);
            let run = SamplerRun::for_portfolio(kind, 40, 4, 1.0);
            let res = run.run(&mut ev, &mut rng, &mut obs);
            let rec = obs.finish(res.energy).unwrap();
            assert_eq!(rec.sampler, kind.to_string());
            assert!(rec.proposals > 0, "{kind} reported no proposals");
            assert!(rec.accepted <= rec.proposals, "{kind} over-counts accepts");
        }
    }

    #[test]
    fn disabled_observer_changes_nothing() {
        let m = model();
        let run = SamplerRun::for_portfolio(SamplerKind::Sqa, 40, 4, 1.0);

        let mut ev_a = BqmEvaluator::new(Arc::clone(&m));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut obs = ReadObserver::disabled();
        let a = run.run(&mut ev_a, &mut rng, &mut obs);

        let mut ev_b = BqmEvaluator::new(Arc::clone(&m));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut obs = ReadObserver::recording(0, 3, false);
        let b = run.run(&mut ev_b, &mut rng, &mut obs);

        assert_eq!(a.state, b.state);
        assert_eq!(a.accepted, b.accepted);
    }
}
