//! Metropolis simulated annealing over an [`Evaluator`].
//!
//! The inner loop draws its acceptance uniforms in one batch per sweep (one
//! draw per proposal, consumed whether or not the Metropolis test needs it),
//! which keeps the RNG call count per sweep fixed and off the per-proposal
//! hot path, and applies accepted moves through
//! [`Evaluator::flip_known`] so the delta computed for the acceptance test
//! is not recomputed inside the flip.
//!
//! SA deliberately does *not* opt into the evaluator's flip-delta cache
//! ([`Evaluator::enable_delta_cache`]): it examines exactly one candidate
//! per proposal, and on LRP models — where the migration-budget constraint
//! couples every variable — maintaining the cache costs O(n) per accepted
//! flip, which at annealing acceptance rates is slower than recomputing the
//! single needed delta on demand.

use qlrb_model::eval::Evaluator;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::schedule::BetaSchedule;

/// Simulated annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaParams {
    /// Number of full sweeps (each sweep proposes every variable once, in
    /// random order).
    pub sweeps: usize,
    /// Inverse-temperature schedule over the sweeps.
    pub schedule: BetaSchedule,
    /// Caches are recomputed from scratch every `resync_interval` sweeps to
    /// flush accumulated floating-point drift.
    pub resync_interval: usize,
}

impl Default for SaParams {
    fn default() -> Self {
        Self {
            sweeps: 1000,
            schedule: BetaSchedule::Geometric {
                beta0: 0.1,
                beta1: 50.0,
            },
            resync_interval: 256,
        }
    }
}

/// Result of an annealing run: the best state seen and its energy.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// The lowest-energy assignment encountered (not necessarily the final
    /// state of the walk).
    pub state: Vec<u8>,
    /// Its energy.
    pub energy: f64,
    /// Number of accepted moves (diagnostic).
    pub accepted: u64,
}

/// Runs simulated annealing starting from the evaluator's current state.
///
/// The evaluator is left at the *final* walk state; the best-seen state is
/// returned separately so callers can restore or compare.
pub fn simulated_annealing<E: Evaluator>(
    ev: &mut E,
    params: &SaParams,
    rng: &mut impl Rng,
) -> AnnealResult {
    let n = ev.num_vars();
    let mut best_state = ev.state().to_vec();
    let mut best_energy = ev.energy();
    let mut accepted = 0u64;
    // Proposals are drawn from the evaluator's active set only: presolve-
    // fixed variables carry zero incidence, so flipping them is a wasted
    // move (delta 0, always accepted, never changes the energy).
    let mut order: Vec<usize> = match ev.active_vars() {
        Some(active) => active.to_vec(),
        None => (0..n).collect(),
    };
    if order.is_empty() || params.sweeps == 0 {
        return AnnealResult {
            state: best_state,
            energy: best_energy,
            accepted,
        };
    }
    let proposals = order.len();
    let mut accept_u: Vec<f64> = Vec::with_capacity(proposals);
    let denom = (params.sweeps.saturating_sub(1)).max(1) as f64;
    for sweep in 0..params.sweeps {
        let beta = params.schedule.beta(sweep as f64 / denom);
        order.shuffle(rng);
        // One uniform per proposal, drawn up front for the whole sweep.
        accept_u.clear();
        accept_u.extend((0..proposals).map(|_| rng.random::<f64>()));
        for (i, &v) in order.iter().enumerate() {
            let delta = ev.flip_delta(v);
            let accept = delta <= 0.0 || {
                let x = -beta * delta;
                // exp underflows harmlessly; skip the exp when hopeless.
                x > -60.0 && accept_u[i] < x.exp()
            };
            if accept {
                ev.flip_known(v, delta);
                accepted += 1;
                if ev.energy() < best_energy {
                    best_energy = ev.energy();
                    best_state.copy_from_slice(ev.state());
                }
            }
        }
        if params.resync_interval > 0 && (sweep + 1) % params.resync_interval == 0 {
            ev.resync();
        }
    }
    // One final resync so reported energies are exact, then re-check best.
    ev.resync();
    if ev.energy() < best_energy {
        best_energy = ev.energy();
        best_state.copy_from_slice(ev.state());
    }
    AnnealResult {
        state: best_state,
        energy: best_energy,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{auto_geometric, estimate_delta_scale};
    use qlrb_model::bqm::BinaryQuadraticModel;
    use qlrb_model::eval::BqmEvaluator;
    use qlrb_model::Var;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// A frustrated 8-variable QUBO with known (degenerate) ground energy.
    fn chain_bqm() -> (BinaryQuadraticModel, Vec<u8>, f64) {
        // Antiferromagnetic chain with a field pinning x0 = 1:
        // minimized by alternating 1,0,1,0,...
        let n = 8;
        let mut bqm = BinaryQuadraticModel::new(n);
        bqm.add_linear(Var(0), -2.0);
        for i in 0..n - 1 {
            bqm.add_quadratic(Var(i as u32), Var(i as u32 + 1), 3.0);
            bqm.add_linear(Var(i as u32 + 1), -1.0);
        }
        let ground: Vec<u8> = (0..n).map(|i| (1 - i % 2) as u8).collect();
        let e = bqm.energy(&ground);
        (bqm, ground, e)
    }

    #[test]
    fn finds_chain_ground_state() {
        let (bqm, ground, ground_e) = chain_bqm();
        let mut ev = BqmEvaluator::new(Arc::new(bqm));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let scale = estimate_delta_scale(&mut ev, &mut rng, 64);
        ev.set_state(&[0; 8]);
        let params = SaParams {
            sweeps: 400,
            schedule: auto_geometric(scale),
            resync_interval: 64,
        };
        let res = simulated_annealing(&mut ev, &params, &mut rng);
        // The ground energy is degenerate (any independent set of 4 ones
        // with x0 = 1 reaches −5), so assert on energy, not the exact bit
        // pattern — which exact ground state the walk lands in depends on
        // the RNG stream.
        let _ = ground;
        assert!(
            (res.energy - ground_e).abs() < 1e-9,
            "best energy {} vs ground {}",
            res.energy,
            ground_e
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (bqm, _, _) = chain_bqm();
        let model = Arc::new(bqm);
        let run = |seed: u64| {
            let mut ev = BqmEvaluator::new(Arc::clone(&model));
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            simulated_annealing(&mut ev, &SaParams::default(), &mut rng)
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.state, b.state);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn zero_sweeps_is_identity() {
        let (bqm, _, _) = chain_bqm();
        let mut ev = BqmEvaluator::new(Arc::new(bqm));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let params = SaParams {
            sweeps: 0,
            ..Default::default()
        };
        let res = simulated_annealing(&mut ev, &params, &mut rng);
        assert_eq!(res.state, vec![0; 8]);
        assert_eq!(res.accepted, 0);
    }

    #[test]
    fn best_energy_never_above_final() {
        let (bqm, _, _) = chain_bqm();
        let mut ev = BqmEvaluator::new(Arc::new(bqm));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let res = simulated_annealing(&mut ev, &SaParams::default(), &mut rng);
        assert!(res.energy <= ev.energy() + 1e-9);
    }
}
