//! The hybrid CQM solver — the stand-in for D-Wave's Leap hybrid service.
//!
//! Leap hybrid solvers run a classical frontend (presolve, candidate
//! generation, local search) and delegate sampling to quantum annealing
//! hardware, returning the best feasible solution found within a time/read
//! budget. [`HybridCqmSolver`] reproduces that workflow:
//!
//! 1. **Compile** the CQM with auto-scaled penalties.
//! 2. **Seed** reads with caller-provided candidate states (the classical
//!    frontend's role — the LRP layer passes the identity assignment and a
//!    greedy construction) plus random states.
//! 3. **Portfolio**: reads run in parallel (rayon), each independently
//!    seeded, cycling through SA / SQA / tabu samplers.
//! 4. **Polish + repair** every read's best state, then score it against the
//!    *original* CQM.
//! 5. **Select** feasible-first, lowest objective.
//!
//! Timing is split into true CPU wall time and a deterministic simulated
//! "QPU access time" — `16 ms + 4 ms per SQA read` — standing in for the
//! hardware anneal charge the paper reports (≈32 ms per Table V solve).

use std::sync::Arc;
use std::time::{Duration, Instant};

use qlrb_model::cqm::Cqm;
use qlrb_model::eval::{CompiledCqm, CqmEvaluator, Evaluator};
use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};
use qlrb_model::presolve::presolve;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::descent::greedy_descent;
use crate::pt::{parallel_tempering, PtParams};
use crate::repair::repair;
use crate::sa::{simulated_annealing, SaParams};
use crate::sampleset::{Sample, SampleSet, SolverTiming};
use crate::schedule::{auto_geometric, estimate_delta_scale, TransverseSchedule};
use crate::sqa::{simulated_quantum_annealing, SqaParams};
use crate::tabu::{tabu_search, TabuParams};

/// Portfolio member identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplerKind {
    /// Metropolis simulated annealing.
    Sa,
    /// Path-integral simulated quantum annealing (the "QPU" side).
    Sqa,
    /// Tabu search (classical frontend refinement).
    Tabu,
    /// Parallel tempering (replica exchange) — extension, not in the
    /// default portfolio.
    Pt,
}

impl std::fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplerKind::Sa => write!(f, "SA"),
            SamplerKind::Sqa => write!(f, "SQA"),
            SamplerKind::Tabu => write!(f, "TABU"),
            SamplerKind::Pt => write!(f, "PT"),
        }
    }
}

/// Configuration of the hybrid solve.
///
/// ```
/// use qlrb_anneal::HybridCqmSolver;
/// use qlrb_model::{Cqm, LinearExpr, Var, Sense};
/// // minimize (x0 + x1 + x2 − 2)²  s.t.  x0 + x1 ≤ 1
/// let mut cqm = Cqm::new(3);
/// let mut sum = LinearExpr::new();
/// for v in 0..3 { sum.add_term(Var(v), 1.0); }
/// cqm.add_squared_term(sum, 2.0, 1.0);
/// let mut cap = LinearExpr::new();
/// cap.add_term(Var(0), 1.0).add_term(Var(1), 1.0);
/// cqm.add_constraint(cap, Sense::Le, 1.0, "cap");
///
/// let set = HybridCqmSolver::fast().solve(&cqm, &[]);
/// let best = set.best_feasible().expect("feasible sample");
/// assert_eq!(best.objective, 0.0); // e.g. x2 = 1 plus one of x0/x1
/// ```
#[derive(Debug, Clone)]
pub struct HybridCqmSolver {
    /// Number of independent reads (samples drawn).
    pub num_reads: usize,
    /// Sweeps per SA read (SQA uses `sweeps / 4`, tabu `2·sweeps` moves).
    pub sweeps: usize,
    /// Trotter replicas for SQA reads.
    pub sqa_replicas: usize,
    /// Master seed; the whole solve is deterministic given it.
    pub seed: u64,
    /// Headroom multiplier on the auto-scaled penalty weights.
    pub penalty_factor: f64,
    /// Inequality penalty scheme.
    pub style: PenaltyStyle,
    /// Portfolio rotation; read `r` uses `samplers[r % len]`. An empty
    /// portfolio is tolerated: every read falls back to [`SamplerKind::Sa`].
    pub samplers: Vec<SamplerKind>,
    /// Models wider than this fall back from tabu to SA. With the
    /// evaluator's incremental flip-delta cache, tabu's full-neighbourhood
    /// scan is a flat O(n) array read, so this guard only needs to exclude
    /// genuinely huge models.
    pub tabu_max_vars: usize,
    /// Post-anneal greedy polish sweep budget.
    pub polish_sweeps: usize,
    /// Feasibility-repair step budget.
    pub repair_steps: usize,
    /// Optional wall-clock budget, mirroring Leap's `time_limit` API: reads
    /// are executed in parallel waves and the budget is checked *before*
    /// each wave launches, so an exhausted budget never starts extra work.
    /// The first wave is exempt from the check — at least one wave always
    /// runs, so the solver always returns at least one genuine sample no
    /// matter how small the budget. **Non-deterministic across machines** —
    /// leave `None` (the default) for reproducible sample sets.
    pub time_limit: Option<Duration>,
}

impl Default for HybridCqmSolver {
    fn default() -> Self {
        Self {
            num_reads: 8,
            sweeps: 1200,
            sqa_replicas: 12,
            seed: 0x5eed,
            penalty_factor: 2.0,
            style: PenaltyStyle::ViolationQuadratic,
            samplers: vec![SamplerKind::Sa, SamplerKind::Sqa, SamplerKind::Tabu],
            tabu_max_vars: 32_768,
            polish_sweeps: 50,
            repair_steps: 5_000,
            time_limit: None,
        }
    }
}

impl HybridCqmSolver {
    /// A cheaper configuration for large models or quick tests.
    pub fn fast() -> Self {
        Self {
            num_reads: 4,
            sweeps: 300,
            sqa_replicas: 6,
            ..Default::default()
        }
    }

    /// Solves `cqm`, seeding the first reads with `seeds` (candidate states
    /// of CQM width; may be empty). Returns all reads, best first.
    pub fn solve(&self, cqm: &Cqm, seeds: &[Vec<u8>]) -> SampleSet {
        let started = Instant::now();
        let width = cqm.num_vars();
        if width == 0 || self.num_reads == 0 {
            let state: Vec<u8> = Vec::new();
            let mut set = SampleSet {
                samples: vec![Sample {
                    objective: cqm.objective(&state),
                    violation: cqm.total_violation(&state),
                    feasible: cqm.is_feasible(&state),
                    state,
                    sampler: SamplerKind::Sa,
                }],
                timing: SolverTiming::default(),
            };
            set.sort();
            set.timing.cpu = started.elapsed();
            return set;
        }

        // Classical presolve: bound-based variable fixing and redundant
        // constraint elimination (with a tight migration budget this alone
        // can kill a large fraction of the search space).
        let pre = presolve(cqm);
        let penalty = PenaltyConfig::auto(&pre.cqm, self.penalty_factor, self.style);
        let compiled = CompiledCqm::compile(&pre.cqm, penalty);
        let seeds: Vec<Vec<u8>> = seeds
            .iter()
            .map(|s| {
                let mut s = s.clone();
                pre.apply_to_state(&mut s);
                s
            })
            .collect();

        let mut samples: Vec<Sample> = match self.time_limit {
            None => (0..self.num_reads)
                .into_par_iter()
                .map(|r| self.run_read(cqm.num_vars(), &compiled, &seeds, r))
                .collect(),
            Some(limit) => {
                // Waves of one read per worker thread. The budget is
                // checked before a wave launches (never after), so spent
                // budget cannot trigger extra work; the first wave skips
                // the check to honour the at-least-one-wave guarantee.
                let wave = rayon::current_num_threads().max(1);
                let mut out = Vec::with_capacity(self.num_reads);
                let mut next = 0usize;
                while next < self.num_reads {
                    if next > 0 && started.elapsed() >= limit {
                        break;
                    }
                    let end = (next + wave).min(self.num_reads);
                    let batch: Vec<Sample> = (next..end)
                        .into_par_iter()
                        .map(|r| self.run_read(cqm.num_vars(), &compiled, &seeds, r))
                        .collect();
                    out.extend(batch);
                    next = end;
                }
                out
            }
        };

        // Score against the ORIGINAL model (penalties, slacks, and presolve
        // fixings stripped back out — fixed bits are stamped to their
        // proven values first, since they carry no incidence the samplers
        // could have felt).
        for s in &mut samples {
            s.state.truncate(width);
            pre.apply_to_state(&mut s.state);
            s.objective = cqm.objective(&s.state);
            s.violation = cqm.total_violation(&s.state);
            s.feasible = s.violation == 0.0;
        }

        let sqa_reads = samples
            .iter()
            .filter(|s| s.sampler == SamplerKind::Sqa)
            .count() as u32;
        let mut set = SampleSet {
            samples,
            timing: SolverTiming {
                cpu: started.elapsed(),
                qpu: if sqa_reads > 0 {
                    Duration::from_millis(16) + Duration::from_millis(4) * sqa_reads
                } else {
                    Duration::ZERO
                },
            },
        };
        set.sort();
        set
    }

    /// One independent read: seed → sample → polish → repair.
    fn run_read(
        &self,
        cqm_width: usize,
        compiled: &Arc<CompiledCqm>,
        seeds: &[Vec<u8>],
        read_index: usize,
    ) -> Sample {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(read_index as u64 * 0x9e37));
        // An empty portfolio would make the modular lookup panic; degrade
        // to plain SA instead so a misconfigured solver still samples.
        let mut sampler = if self.samplers.is_empty() {
            SamplerKind::Sa
        } else {
            self.samplers[read_index % self.samplers.len()]
        };
        if sampler == SamplerKind::Tabu && compiled.num_vars() > self.tabu_max_vars {
            sampler = SamplerKind::Sa;
        }

        // Initial state: rotate through provided seeds, then random states.
        let initial: Vec<u8> = if read_index < seeds.len() {
            seeds[read_index].clone()
        } else {
            (0..cqm_width)
                .map(|_| u8::from(rng.random::<bool>()))
                .collect()
        };
        let mut ev = CqmEvaluator::with_state(Arc::clone(compiled), &initial);
        // Seeds are CQM-width: under slack compilation their slack bits are
        // zero and the rewritten equalities start violated. Repair first so
        // a good classical seed enters the anneal as a *feasible* state.
        if !ev.is_feasible() {
            repair(&mut ev, self.repair_steps, &mut rng);
        }

        // Auto-scale the temperature ladder by probing, then restore.
        let scale = {
            let mut probe = ev.clone();
            estimate_delta_scale(&mut probe, &mut rng, 128)
        };

        let best_state = match sampler {
            SamplerKind::Sa => {
                let params = SaParams {
                    sweeps: self.sweeps,
                    schedule: auto_geometric(scale),
                    resync_interval: 256,
                };
                simulated_annealing(&mut ev, &params, &mut rng).state
            }
            SamplerKind::Sqa => {
                let params = SqaParams {
                    replicas: self.sqa_replicas,
                    sweeps: (self.sweeps / 4).max(50),
                    beta: 30.0 / scale,
                    transverse: TransverseSchedule {
                        gamma0: 3.0 * scale,
                        gamma1: 1e-3 * scale,
                    },
                    global_move_fraction: 0.1,
                    resync_interval: 128,
                };
                simulated_quantum_annealing(&ev, &params, &mut rng).state
            }
            SamplerKind::Tabu => {
                let params = TabuParams {
                    tenure: 0,
                    max_iters: self.sweeps * 2,
                    stall_limit: (self.sweeps / 2).max(100),
                };
                tabu_search(&mut ev, &params, &mut rng).state
            }
            SamplerKind::Pt => {
                let params = PtParams {
                    replicas: self.sqa_replicas.clamp(4, 12),
                    sweeps: (self.sweeps / 4).max(50),
                    beta_max: 60.0 / scale,
                    beta_min: 0.2 / scale,
                    resync_interval: 128,
                };
                parallel_tempering(&ev, &params, &mut rng).state
            }
        };

        ev.set_state(&best_state);
        greedy_descent(&mut ev, self.polish_sweeps, &mut rng);
        if !ev.is_feasible() {
            repair(&mut ev, self.repair_steps, &mut rng);
            greedy_descent(&mut ev, self.polish_sweeps, &mut rng);
            // Keep the repaired state only if it actually reached
            // feasibility or at least did not lose ground.
        }

        let state = ev.state().to_vec();
        Sample {
            objective: 0.0, // rescored by `solve`
            violation: 0.0,
            feasible: false,
            state,
            sampler,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_model::cqm::Sense;
    use qlrb_model::expr::{LinearExpr, Var};

    /// A small partition problem: split weights {3,1,1,2,2,1} into two halves
    /// of equal sum (x_i = 1 ⇒ item i in part A), with exactly 3 items in A.
    fn partition_cqm() -> Cqm {
        let w = [3.0, 1.0, 1.0, 2.0, 2.0, 1.0];
        let total: f64 = w.iter().sum();
        let mut cqm = Cqm::new(w.len());
        let mut sum = LinearExpr::new();
        for (i, &wi) in w.iter().enumerate() {
            sum.add_term(Var(i as u32), wi);
        }
        cqm.add_squared_term(sum, total / 2.0, 1.0);
        let mut card = LinearExpr::new();
        for i in 0..w.len() {
            card.add_term(Var(i as u32), 1.0);
        }
        cqm.add_constraint(card, Sense::Le, 3.0, "at_most_3");
        cqm
    }

    #[test]
    fn finds_feasible_optimum() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver {
            num_reads: 6,
            sweeps: 300,
            ..Default::default()
        };
        let set = solver.solve(&cqm, &[]);
        let best = set.best_feasible().expect("a feasible sample");
        assert_eq!(
            best.objective, 0.0,
            "perfect split exists: e.g. {{3,2}} vs rest"
        );
        assert!(set.timing.cpu > Duration::ZERO);
        assert!(
            set.timing.qpu > Duration::ZERO,
            "portfolio includes SQA reads"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver {
            num_reads: 4,
            sweeps: 100,
            seed: 77,
            ..Default::default()
        };
        let a = solver.solve(&cqm, &[]);
        let b = solver.solve(&cqm, &[]);
        let states_a: Vec<_> = a.samples.iter().map(|s| s.state.clone()).collect();
        let states_b: Vec<_> = b.samples.iter().map(|s| s.state.clone()).collect();
        assert_eq!(states_a, states_b);
    }

    #[test]
    fn seeded_read_keeps_good_seed() {
        let cqm = partition_cqm();
        // Hand the solver the known optimum as a seed; it must not come back
        // with anything worse.
        let seed_state = vec![1u8, 0, 0, 1, 0, 0]; // {3,2} = 5 = total/2
        assert!(cqm.is_feasible(&seed_state));
        assert_eq!(cqm.objective(&seed_state), 0.0);
        let solver = HybridCqmSolver {
            num_reads: 2,
            sweeps: 50,
            ..Default::default()
        };
        let set = solver.solve(&cqm, &[seed_state]);
        assert_eq!(set.best_feasible().unwrap().objective, 0.0);
    }

    #[test]
    fn portfolio_rotates_through_all_samplers() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver {
            num_reads: 6,
            sweeps: 50,
            ..Default::default()
        };
        let set = solver.solve(&cqm, &[]);
        for kind in [SamplerKind::Sa, SamplerKind::Sqa, SamplerKind::Tabu] {
            assert!(
                set.samples.iter().any(|s| s.sampler == kind),
                "{kind} never ran"
            );
        }
    }

    #[test]
    fn tabu_falls_back_to_sa_on_wide_models() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver {
            num_reads: 3,
            sweeps: 50,
            tabu_max_vars: 0, // force the fallback
            samplers: vec![SamplerKind::Tabu],
            ..Default::default()
        };
        let set = solver.solve(&cqm, &[]);
        assert!(
            set.samples.iter().all(|s| s.sampler == SamplerKind::Sa),
            "every tabu read must have downgraded to SA"
        );
    }

    #[test]
    fn empty_samplers_falls_back_to_sa() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver {
            num_reads: 3,
            sweeps: 50,
            samplers: vec![], // misconfigured portfolio must not panic
            ..Default::default()
        };
        let set = solver.solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 3);
        assert!(
            set.samples.iter().all(|s| s.sampler == SamplerKind::Sa),
            "every read of an empty portfolio degrades to SA"
        );
        assert!(set.best_feasible().is_some());
    }

    #[test]
    fn time_limit_truncates_reads_but_still_solves() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver {
            num_reads: 64,
            sweeps: 200,
            time_limit: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let set = solver.solve(&cqm, &[]);
        // At least one wave ran; with a 1 ms budget on 64 requested reads
        // we almost certainly stopped early, but the contract is only
        // "some samples, best feasible first".
        assert!(!set.samples.is_empty());
        assert!(set.samples.len() <= 64);
        assert!(set.best_feasible().is_some());
    }

    #[test]
    fn empty_model_returns_trivial_sample() {
        let cqm = Cqm::new(0);
        let set = HybridCqmSolver::default().solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 1);
        assert!(set.samples[0].feasible);
    }

    #[test]
    fn unbalanced_style_also_solves() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver {
            num_reads: 6,
            sweeps: 300,
            style: PenaltyStyle::Unbalanced {
                l1: 0.96,
                l2: 0.0331,
            },
            ..Default::default()
        };
        let set = solver.solve(&cqm, &[]);
        assert!(set.best_feasible().is_some());
    }

    #[test]
    fn slack_style_strips_slack_bits() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver {
            num_reads: 4,
            sweeps: 300,
            style: PenaltyStyle::Slack,
            ..Default::default()
        };
        let set = solver.solve(&cqm, &[]);
        for s in &set.samples {
            assert_eq!(s.state.len(), cqm.num_vars());
        }
        assert!(set.best_feasible().is_some());
    }
}
