//! The hybrid CQM solver — the stand-in for D-Wave's Leap hybrid service.
//!
//! Leap hybrid solvers run a classical frontend (presolve, candidate
//! generation, local search) and delegate sampling to quantum annealing
//! hardware, returning the best feasible solution found within a time/read
//! budget. [`HybridCqmSolver`] reproduces that workflow:
//!
//! 1. **Compile** the CQM with auto-scaled penalties.
//! 2. **Seed** reads with caller-provided candidate states (the classical
//!    frontend's role — the LRP layer passes the identity assignment and a
//!    greedy construction) plus random states.
//! 3. **Portfolio**: reads run in parallel (rayon), each independently
//!    seeded, cycling through SA / SQA / tabu samplers via
//!    [`crate::run::SamplerRun`].
//! 4. **Polish + repair** every read's best state, then score it against the
//!    *original* CQM.
//! 5. **Select** feasible-first, lowest objective.
//!
//! Timing is split into true CPU wall time and a deterministic simulated
//! "QPU access time" — `16 ms + 4 ms per SQA read` — standing in for the
//! hardware anneal charge the paper reports (≈32 ms per Table V solve).
//!
//! # Adaptive scheduling
//!
//! With [`HybridSolverBuilder::early_stop`] and/or
//! [`HybridSolverBuilder::adaptive`] enabled, the fixed wave loop is
//! replaced by a [`crate::scheduler::PortfolioScheduler`]: reads run in
//! small waves, the best incumbent is tracked wave-to-wave, and the solve
//! stops early once it plateaus (or presolve / a provable objective lower
//! bound makes further reads pointless). Under `adaptive`, later waves are
//! also re-allocated across portfolio members by a deterministic bandit
//! rule and warm-started from an elite pool of the best states seen.
//! Scheduling decisions are pure functions of seeds and observed energies —
//! identical seeds still produce identical sample sets.
//!
//! # Configuration and telemetry
//!
//! Configuration goes through a validating [`HybridSolverBuilder`]
//! ([`HybridCqmSolver::builder`]); [`Default`] and [`HybridCqmSolver::fast`]
//! remain as known-good presets. An optional [`TraceSink`] observes the
//! solve: with the default [`NoopSink`] nothing is recorded and the hot path
//! pays a single branch per solve; with a recording sink every read emits a
//! [`ReadRecord`] and the solve a [`SolveRecord`]. Observers never draw
//! randomness, so recorded and unrecorded solves are byte-identical.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qlrb_analyze::model::references_in_bounds;
use qlrb_analyze::{lint_cqm, lint_penalty, LintReport};
use qlrb_model::cqm::Cqm;
use qlrb_model::eval::{CompiledCqm, CqmEvaluator, Evaluator};
use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};
use qlrb_model::presolve::{presolve, Presolve};
use qlrb_telemetry::{
    BackendUsageRecord, FailedReadRecord, FaultRecord, LintDiagnosticRecord, LintRecord, NoopSink,
    ReadObserver, ReadRecord, SolveRecord, SolverConfig, TimingRecord, TraceSink, WaveAllocation,
    WaveRecord,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use qlrb_model::batch::{BatchedEvaluator, MAX_LANES};

use crate::backend::{
    Backend, BackendId, BackendPool, BackendProfile, FaultInjectingBackend, SubmitError,
    SubmitRequest,
};
use crate::batch::{
    batched_annealing, batched_descent, batched_sqa, batched_tabu, BatchedSqaParams,
};
use crate::crng::CounterRng;
use crate::descent::greedy_descent;
use crate::faults::FaultPlan;
use crate::repair::repair;
use crate::run::SamplerRun;
use crate::sampleset::{Sample, SampleSet, SolverTiming};
use crate::schedule::{auto_geometric, estimate_delta_scale, BetaSchedule, TransverseSchedule};
use crate::scheduler::{
    objective_lower_bound, PortfolioScheduler, ReadStats, SchedulerConfig, TerminationReason,
};
use crate::tabu::TabuParams;

/// Portfolio member identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplerKind {
    /// Metropolis simulated annealing.
    Sa,
    /// Path-integral simulated quantum annealing (the "QPU" side).
    Sqa,
    /// Tabu search (classical frontend refinement).
    Tabu,
    /// Parallel tempering (replica exchange) — extension, not in the
    /// default portfolio.
    Pt,
}

impl SamplerKind {
    /// Parses a sampler name (`"SA"`, `"SQA"`, `"TABU"`, `"PT"`,
    /// case-insensitive); `None` for anything else.
    pub fn parse(name: &str) -> Option<Self> {
        if name.eq_ignore_ascii_case("SA") {
            Some(Self::Sa)
        } else if name.eq_ignore_ascii_case("SQA") {
            Some(Self::Sqa)
        } else if name.eq_ignore_ascii_case("TABU") {
            Some(Self::Tabu)
        } else if name.eq_ignore_ascii_case("PT") {
            Some(Self::Pt)
        } else {
            None
        }
    }
}

impl std::fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplerKind::Sa => write!(f, "SA"),
            SamplerKind::Sqa => write!(f, "SQA"),
            SamplerKind::Tabu => write!(f, "TABU"),
            SamplerKind::Pt => write!(f, "PT"),
        }
    }
}

/// Rejected solver configurations (see [`HybridSolverBuilder::build`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverBuildError {
    /// `num_reads == 0`: the solver would return no genuine samples.
    ZeroReads,
    /// `sweeps == 0`: every sampler's budget derives from `sweeps`, so
    /// nothing would anneal.
    ZeroSweeps,
    /// An empty portfolio has no sampler to rotate through.
    EmptyPortfolio,
    /// A tabu-only portfolio with `tabu_max_vars == 0` would silently
    /// degrade every read to SA — reject the contradiction instead.
    TabuOnlyOverflow,
    /// `plateau_window == 0` would let early termination fire before any
    /// wave could possibly improve the incumbent.
    ZeroPlateauWindow,
    /// `elite_fraction` outside `[0, 1]` (or NaN) has no meaning as a
    /// fraction of a wave's reads.
    EliteFractionOutOfRange,
    /// `batched()` with more than 64 Trotter replicas: the batched SQA
    /// kernel keeps the replica ring in one `u64` lane word, so
    /// `sqa_replicas` must fit the lane count.
    BatchedReplicasExceedLanes,
    /// `backends(...)` was given a pool with no members: the solver would
    /// have nowhere to dispatch reads.
    EmptyBackendPool,
    /// Two pool members share a [`crate::backend::BackendId`]; fault plans,
    /// telemetry, and accounting key on the id, so duplicates would
    /// silently merge two backends' stories.
    DuplicateBackendId,
    /// `read_deadline_proposals(0)`: a zero deadline is already exceeded
    /// before any attempt is charged, so every retry would be skipped and,
    /// under speculation, every read would count as an instant straggler
    /// racing a pointless duplicate. Clear the deadline (`None`) to mean
    /// "no deadline" instead.
    ZeroReadDeadline,
}

impl std::fmt::Display for SolverBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroReads => write!(f, "num_reads must be at least 1"),
            Self::ZeroSweeps => write!(f, "sweeps must be at least 1"),
            Self::EmptyPortfolio => write!(f, "sampler portfolio must not be empty"),
            Self::TabuOnlyOverflow => write!(
                f,
                "tabu-only portfolio with tabu_max_vars = 0 would downgrade every read; \
                 raise tabu_max_vars or add another sampler"
            ),
            Self::ZeroPlateauWindow => write!(f, "plateau_window must be at least 1"),
            Self::EliteFractionOutOfRange => {
                write!(f, "elite_fraction must lie in [0, 1]")
            }
            Self::BatchedReplicasExceedLanes => write!(
                f,
                "batched mode packs the SQA replica ring into 64 bitset lanes; \
                 sqa_replicas must be at most 64"
            ),
            Self::EmptyBackendPool => write!(f, "backend pool must have at least one member"),
            Self::DuplicateBackendId => {
                write!(f, "backend pool members must have distinct ids")
            }
            Self::ZeroReadDeadline => write!(
                f,
                "read_deadline_proposals must be at least 1 proposal; pass None to \
                 disable the per-read deadline"
            ),
        }
    }
}

impl std::error::Error for SolverBuildError {}

/// What the solver does with the model linter's findings (see
/// [`HybridCqmSolver::solve_checked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintMode {
    /// Lint, record findings, and refuse models with error-severity
    /// findings ([`HybridCqmSolver::solve_checked`] returns
    /// [`ModelRejected`]). The harness runs with this mode.
    Deny,
    /// Lint and record findings, but always solve (the default): warnings
    /// and errors land in the trace sink without changing behaviour.
    #[default]
    Warn,
    /// Skip the lint pass entirely.
    Off,
}

impl std::fmt::Display for LintMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Deny => write!(f, "Deny"),
            Self::Warn => write!(f, "Warn"),
            Self::Off => write!(f, "Off"),
        }
    }
}

/// Returned by [`HybridCqmSolver::solve_checked`] under [`LintMode::Deny`]
/// when the model linter finds error-severity problems: solving such a
/// model would waste the read budget or silently corrupt energies.
#[derive(Debug, Clone)]
pub struct ModelRejected {
    /// The findings that caused the rejection (errors and any warnings).
    pub report: LintReport,
}

impl std::fmt::Display for ModelRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model rejected by lint ({} error(s)):\n{}",
            self.report.num_errors(),
            self.report.render()
        )
    }
}

impl std::error::Error for ModelRejected {}

/// Returned by [`HybridCqmSolver::solve_checked`] when the model is wider
/// than the tabu cap, the portfolio contains tabu reads, and the
/// decomposition frontend is off. Before the decomposition frontend
/// existed, such models silently downgraded their tabu reads to SA; this
/// error replaces that silence on the checked path with an actionable
/// verdict. Enable [`HybridSolverBuilder::decompose`] (CLI:
/// `qlrb rebalance --decompose`) or raise
/// [`HybridSolverBuilder::tabu_max_vars`] to proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelTooLarge {
    /// Structural width of the rejected model.
    pub vars: usize,
    /// The configured tabu cap it exceeds.
    pub cap: usize,
}

impl std::fmt::Display for ModelTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model too large for the monolithic portfolio: {} variables exceed the {}-variable \
             tabu cap; enable the decomposition frontend (`--decompose`) or raise tabu_max_vars",
            self.vars, self.cap
        )
    }
}

impl std::error::Error for ModelTooLarge {}

/// Everything [`HybridCqmSolver::solve_checked`] can refuse a model for.
#[derive(Debug, Clone)]
pub enum SolveError {
    /// The model linter found error-severity problems under
    /// [`LintMode::Deny`].
    Rejected(ModelRejected),
    /// The model exceeds the tabu cap and decomposition is off.
    TooLarge(ModelTooLarge),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Rejected(e) => e.fmt(f),
            Self::TooLarge(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Rejected(e) => Some(e),
            Self::TooLarge(e) => Some(e),
        }
    }
}

impl From<ModelRejected> for SolveError {
    fn from(e: ModelRejected) -> Self {
        Self::Rejected(e)
    }
}

impl From<ModelTooLarge> for SolveError {
    fn from(e: ModelTooLarge) -> Self {
        Self::TooLarge(e)
    }
}

/// Configuration of the hybrid solve.
///
/// Constructed through [`HybridCqmSolver::builder`] (validating) or the
/// [`Default`] / [`HybridCqmSolver::fast`] presets:
///
/// ```
/// use qlrb_anneal::HybridCqmSolver;
/// use qlrb_model::{Cqm, LinearExpr, Var, Sense};
/// // minimize (x0 + x1 + x2 − 2)²  s.t.  x0 + x1 ≤ 1
/// let mut cqm = Cqm::new(3);
/// let mut sum = LinearExpr::new();
/// for v in 0..3 { sum.add_term(Var(v), 1.0); }
/// cqm.add_squared_term(sum, 2.0, 1.0);
/// let mut cap = LinearExpr::new();
/// cap.add_term(Var(0), 1.0).add_term(Var(1), 1.0);
/// cqm.add_constraint(cap, Sense::Le, 1.0, "cap");
///
/// let solver = HybridCqmSolver::builder()
///     .num_reads(4)
///     .sweeps(300)
///     .seed(7)
///     .build()
///     .expect("valid configuration");
/// let set = solver.solve(&cqm, &[]);
/// let best = set.best_feasible().expect("feasible sample");
/// assert_eq!(best.objective, 0.0); // e.g. x2 = 1 plus one of x0/x1
/// ```
#[derive(Debug, Clone)]
pub struct HybridCqmSolver {
    /// Number of independent reads (samples drawn).
    num_reads: usize,
    /// Sweeps per SA read (SQA uses `sweeps / 4`, tabu `2·sweeps` moves).
    sweeps: usize,
    /// Trotter replicas for SQA reads.
    sqa_replicas: usize,
    /// Master seed; the whole solve is deterministic given it.
    seed: u64,
    /// Headroom multiplier on the auto-scaled penalty weights.
    penalty_factor: f64,
    /// Inequality penalty scheme.
    style: PenaltyStyle,
    /// Portfolio rotation; read `r` uses `samplers[r % len]`.
    samplers: Vec<SamplerKind>,
    /// Models wider than this fall back from tabu to SA. With the
    /// evaluator's incremental flip-delta cache, tabu's full-neighbourhood
    /// scan is a flat O(n) array read, so this guard only needs to exclude
    /// genuinely huge models.
    tabu_max_vars: usize,
    /// Post-anneal greedy polish sweep budget.
    polish_sweeps: usize,
    /// Feasibility-repair step budget.
    repair_steps: usize,
    /// Optional wall-clock budget, mirroring Leap's `time_limit` API: reads
    /// are executed in parallel waves and the budget is checked *before*
    /// each wave launches, so an exhausted budget never starts extra work.
    /// The first wave is exempt from the check — at least one wave always
    /// runs, so the solver always returns at least one genuine sample no
    /// matter how small the budget. **Non-deterministic across machines** —
    /// leave `None` (the default) for reproducible sample sets.
    time_limit: Option<Duration>,
    /// What to do with model-lint findings before solving.
    lint: LintMode,
    /// Adaptive scheduling knobs (early termination, bandit allocation,
    /// elite cross-seeding); inert by default.
    scheduler: SchedulerConfig,
    /// Telemetry sink; [`NoopSink`] disables all record collection.
    sink: Arc<dyn TraceSink>,
    /// Submission boundary every read goes through: an ordered pool of
    /// heterogeneous backends. The default is a one-member pool holding the
    /// never-failing [`crate::backend::InProcessBackend`], which keeps the
    /// solve byte-identical to the pre-federation solver; multi-member
    /// pools federate reads across (sampler, backend) pairs, retry across
    /// members, and may race stragglers when `speculate` is on.
    pool: BackendPool,
    /// Speculative dispatch: when a pool member declares a straggler
    /// deadline (or a submission times out) and a second member is
    /// available, race a duplicate of the read there, take the first
    /// success, and cancel the loser without charging it.
    speculate: bool,
    /// Submission retries allowed per read after its first failure.
    max_retries: u32,
    /// Per-read deadline on the deterministic proposal-count virtual
    /// clock: a retry (plus its backoff) that would exceed this budget is
    /// not attempted. `None` = no deadline. The first attempt always runs.
    read_deadline_proposals: Option<u64>,
    /// Opt-in batched fast path: reads sharing a sampler are packed into
    /// up-to-64-lane bitset groups so one CSR traversal serves the whole
    /// group (SQA packs its Trotter replicas instead). Off by default —
    /// the scalar path stays byte-identical to earlier releases; batched
    /// solves are deterministic but draw different (counter-based) RNG
    /// streams.
    batched: bool,
    /// Opt-in decomposition frontend: models wider than `tabu_max_vars`
    /// are solved through a sequence of active-variable windows instead of
    /// erroring out of [`HybridCqmSolver::solve_checked`] (see
    /// [`crate::decompose`]). Off by default — the monolithic path stays
    /// byte-identical.
    decompose: bool,
}

impl Default for HybridCqmSolver {
    fn default() -> Self {
        Self {
            num_reads: 8,
            sweeps: 1200,
            sqa_replicas: 12,
            seed: 0x5eed,
            penalty_factor: 2.0,
            style: PenaltyStyle::ViolationQuadratic,
            samplers: vec![SamplerKind::Sa, SamplerKind::Sqa, SamplerKind::Tabu],
            tabu_max_vars: 32_768,
            polish_sweeps: 50,
            repair_steps: 5_000,
            time_limit: None,
            lint: LintMode::Warn,
            scheduler: SchedulerConfig::default(),
            sink: Arc::new(NoopSink),
            pool: BackendPool::default(),
            speculate: false,
            max_retries: 2,
            read_deadline_proposals: None,
            batched: false,
            decompose: false,
        }
    }
}

/// Validating builder for [`HybridCqmSolver`]; obtained from
/// [`HybridCqmSolver::builder`] (defaults) or
/// [`HybridCqmSolver::to_builder`] (tweak an existing configuration).
#[derive(Debug, Clone)]
pub struct HybridSolverBuilder {
    cfg: HybridCqmSolver,
}

impl HybridSolverBuilder {
    /// Sets the number of independent reads.
    pub fn num_reads(mut self, num_reads: usize) -> Self {
        self.cfg.num_reads = num_reads;
        self
    }

    /// Sets the sweep budget per SA read (other samplers derive theirs).
    pub fn sweeps(mut self, sweeps: usize) -> Self {
        self.cfg.sweeps = sweeps;
        self
    }

    /// Sets the Trotter replica count for SQA reads.
    pub fn sqa_replicas(mut self, sqa_replicas: usize) -> Self {
        self.cfg.sqa_replicas = sqa_replicas;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the penalty headroom multiplier.
    pub fn penalty_factor(mut self, penalty_factor: f64) -> Self {
        self.cfg.penalty_factor = penalty_factor;
        self
    }

    /// Sets the inequality penalty scheme.
    pub fn style(mut self, style: PenaltyStyle) -> Self {
        self.cfg.style = style;
        self
    }

    /// Sets the portfolio rotation.
    pub fn samplers(mut self, samplers: Vec<SamplerKind>) -> Self {
        self.cfg.samplers = samplers;
        self
    }

    /// Sets the width guard above which tabu reads fall back to SA.
    pub fn tabu_max_vars(mut self, tabu_max_vars: usize) -> Self {
        self.cfg.tabu_max_vars = tabu_max_vars;
        self
    }

    /// Sets the greedy polish sweep budget.
    pub fn polish_sweeps(mut self, polish_sweeps: usize) -> Self {
        self.cfg.polish_sweeps = polish_sweeps;
        self
    }

    /// Sets the feasibility-repair step budget.
    pub fn repair_steps(mut self, repair_steps: usize) -> Self {
        self.cfg.repair_steps = repair_steps;
        self
    }

    /// Sets (or clears) the wall-clock budget. Accepts a bare `Duration`
    /// or an `Option<Duration>`.
    pub fn time_limit(mut self, time_limit: impl Into<Option<Duration>>) -> Self {
        self.cfg.time_limit = time_limit.into();
        self
    }

    /// Sets the model-lint mode ([`LintMode::Warn`] by default).
    pub fn lint(mut self, lint: LintMode) -> Self {
        self.cfg.lint = lint;
        self
    }

    /// Enables bandit read-allocation and elite cross-seeding: after the
    /// first wave, reads are re-split across portfolio members by observed
    /// feasible hit-rate × improvement-per-proposal, and a fraction of
    /// each wave is warm-started from the best states seen so far.
    /// Deterministic — scheduling decisions never consult the clock.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.cfg.scheduler.adaptive = adaptive;
        self
    }

    /// Enables convergence-based early termination: the solve stops
    /// launching waves once the best incumbent has not improved by
    /// `plateau_tolerance` (relative) for `plateau_window` consecutive
    /// waves, or sooner when presolve trivialises the model or a read
    /// reaches a provable objective lower bound.
    pub fn early_stop(mut self, early_stop: bool) -> Self {
        self.cfg.scheduler.early_stop = early_stop;
        self
    }

    /// Sets the reads-per-wave of the adaptive scheduler (`0` = auto: one
    /// read per portfolio member).
    pub fn wave_size(mut self, wave_size: usize) -> Self {
        self.cfg.scheduler.wave_size = wave_size;
        self
    }

    /// Sets how many consecutive non-improving waves are tolerated before
    /// a plateau stop (must be ≥ 1).
    pub fn plateau_window(mut self, plateau_window: usize) -> Self {
        self.cfg.scheduler.plateau_window = plateau_window;
        self
    }

    /// Sets the relative improvement threshold below which a wave counts
    /// as non-improving.
    pub fn plateau_tolerance(mut self, plateau_tolerance: f64) -> Self {
        self.cfg.scheduler.plateau_tolerance = plateau_tolerance;
        self
    }

    /// Sets the elite-pool capacity (0 disables cross-seeding).
    pub fn elite_capacity(mut self, elite_capacity: usize) -> Self {
        self.cfg.scheduler.elite_capacity = elite_capacity;
        self
    }

    /// Sets the fraction of each post-first wave's reads warm-started from
    /// the elite pool; must lie in `[0, 1]`.
    pub fn elite_fraction(mut self, elite_fraction: f64) -> Self {
        self.cfg.scheduler.elite_fraction = elite_fraction;
        self
    }

    /// Attaches a telemetry sink; pass `Arc::new(NoopSink)` to detach.
    pub fn sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.cfg.sink = sink;
        self
    }

    /// Replaces the backend pool. This is the primary federation entry
    /// point: each member carries a [`crate::backend::BackendId`] and a
    /// declared [`crate::backend::BackendProfile`]; the scheduler allocates
    /// reads across (sampler, backend) pairs and retries walk the pool in
    /// member order. A one-member pool is byte-identical to the legacy
    /// single-backend path (regression-tested).
    pub fn backends(mut self, pool: BackendPool) -> Self {
        self.cfg.pool = pool;
        self
    }

    /// Wraps a single backend into a one-member pool.
    ///
    /// Deprecated-equivalent: superseded by
    /// [`backends`](Self::backends); kept as a shim so pre-federation
    /// callers keep compiling and solving byte-identically.
    pub fn backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.cfg.pool = BackendPool::single(backend);
        self
    }

    /// Routes every read through a one-member pool holding a
    /// [`FaultInjectingBackend`] driving the given deterministic fault
    /// schedule. An empty plan behaves exactly like the default backend.
    ///
    /// Deprecated-equivalent: superseded by
    /// [`backends`](Self::backends) with an explicit pool; kept as a shim
    /// for pre-federation callers and the `--fault-plan` CLI flag.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.pool = BackendPool::single(Arc::new(FaultInjectingBackend::new(plan)));
        self
    }

    /// Enables speculative dispatch: a read that exceeds its backend's
    /// declared straggler deadline (or observes an injected timeout) is
    /// raced on the next pool member; the first success wins and the loser
    /// is cancelled with no cost or QPU charge. Arbitration happens on the
    /// deterministic virtual clock *before* any sampler runs, so racing
    /// never perturbs RNG streams. No-op on one-member pools.
    pub fn speculate(mut self, speculate: bool) -> Self {
        self.cfg.speculate = speculate;
        self
    }

    /// Sets how many times a failed read submission is retried (with
    /// deterministic exponential backoff) before the read is given up.
    pub fn max_retries(mut self, max_retries: u32) -> Self {
        self.cfg.max_retries = max_retries;
        self
    }

    /// Sets (or clears) the per-read deadline in proposal units of the
    /// deterministic virtual clock. Retries whose backoff + attempt cost
    /// would exceed the deadline are skipped; the first attempt of each
    /// read always runs.
    pub fn read_deadline_proposals(mut self, deadline: impl Into<Option<u64>>) -> Self {
        self.cfg.read_deadline_proposals = deadline.into();
        self
    }

    /// Enables the batched bitset fast path: reads assigned the same
    /// sampler are packed into up-to-64-lane groups and annealed by one
    /// shared CSR traversal per proposal (SQA packs its Trotter replicas
    /// into the lanes of a single read instead; PT reads stay scalar).
    /// Fault injection, retry backoff, and the per-read deadline keep
    /// read granularity. Batched solves are byte-for-byte deterministic
    /// across repeats but draw counter-based RNG streams, so their samples
    /// differ from the scalar path's; leave this off (the default) to
    /// reproduce legacy sample sets exactly.
    pub fn batched(mut self, batched: bool) -> Self {
        self.cfg.batched = batched;
        self
    }

    /// Enables the decomposition frontend (DESIGN.md §Decomposition): a
    /// model wider than the tabu cap is solved through a deterministic
    /// sequence of ≤`tabu_max_vars`-variable active windows — score
    /// variables by their structural flip impact, freeze the rest, solve
    /// the window with this same portfolio, fold improvements back, and
    /// repeat until no window improves. Off (the default), oversized
    /// models make [`HybridCqmSolver::solve_checked`] return
    /// [`SolveError::TooLarge`] instead of silently downgrading, and every
    /// in-cap solve stays byte-identical to earlier releases.
    pub fn decompose(mut self, decompose: bool) -> Self {
        self.cfg.decompose = decompose;
        self
    }

    /// Validates and produces the solver. Rejects configurations that could
    /// only misbehave at solve time: zero reads or sweeps, an empty
    /// portfolio, and a tabu-only portfolio whose width guard would
    /// downgrade every read.
    pub fn build(self) -> Result<HybridCqmSolver, SolverBuildError> {
        let cfg = self.cfg;
        if cfg.num_reads == 0 {
            return Err(SolverBuildError::ZeroReads);
        }
        if cfg.sweeps == 0 {
            return Err(SolverBuildError::ZeroSweeps);
        }
        if cfg.samplers.is_empty() {
            return Err(SolverBuildError::EmptyPortfolio);
        }
        if cfg.tabu_max_vars == 0 && cfg.samplers.iter().all(|&s| s == SamplerKind::Tabu) {
            return Err(SolverBuildError::TabuOnlyOverflow);
        }
        if cfg.scheduler.plateau_window == 0 {
            return Err(SolverBuildError::ZeroPlateauWindow);
        }
        // Written as a negated range check so NaN is rejected too.
        if !(0.0..=1.0).contains(&cfg.scheduler.elite_fraction) {
            return Err(SolverBuildError::EliteFractionOutOfRange);
        }
        // The batched SQA kernel needs replica spins to fit one lane word
        // (the kernel also lifts a configured count below 2 up to 2, so
        // only the upper bound can be violated).
        if cfg.batched && cfg.sqa_replicas > MAX_LANES {
            return Err(SolverBuildError::BatchedReplicasExceedLanes);
        }
        // A zero deadline means "already expired": retries are all skipped
        // (dead-on-arrival reads) and, under --speculate, every attempt is
        // an instant straggler racing a duplicate. Reject the contradiction;
        // `None` is the way to say "no deadline".
        if cfg.read_deadline_proposals == Some(0) {
            return Err(SolverBuildError::ZeroReadDeadline);
        }
        if cfg.pool.is_empty() {
            return Err(SolverBuildError::EmptyBackendPool);
        }
        for (i, a) in cfg.pool.members().iter().enumerate() {
            for b in cfg.pool.members().iter().skip(i + 1) {
                if a.id() == b.id() {
                    return Err(SolverBuildError::DuplicateBackendId);
                }
            }
        }
        Ok(cfg)
    }
}

impl HybridCqmSolver {
    /// A builder seeded with the [`Default`] configuration.
    pub fn builder() -> HybridSolverBuilder {
        HybridSolverBuilder {
            cfg: Self::default(),
        }
    }

    /// A builder seeded with this solver's configuration (including its
    /// sink) — the supported way to tweak an existing solver.
    pub fn to_builder(&self) -> HybridSolverBuilder {
        HybridSolverBuilder { cfg: self.clone() }
    }

    /// A cheaper configuration for large models or quick tests.
    pub fn fast() -> Self {
        Self {
            num_reads: 4,
            sweeps: 300,
            sqa_replicas: 6,
            ..Default::default()
        }
    }

    /// Number of independent reads per solve.
    pub fn num_reads(&self) -> usize {
        self.num_reads
    }

    /// Sweep budget per SA read.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Trotter replicas for SQA reads.
    pub fn sqa_replicas(&self) -> usize {
        self.sqa_replicas
    }

    /// Master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Penalty headroom multiplier.
    pub fn penalty_factor(&self) -> f64 {
        self.penalty_factor
    }

    /// Inequality penalty scheme.
    pub fn style(&self) -> PenaltyStyle {
        self.style
    }

    /// Portfolio rotation.
    pub fn samplers(&self) -> &[SamplerKind] {
        &self.samplers
    }

    /// Width guard above which tabu reads fall back to SA.
    pub fn tabu_max_vars(&self) -> usize {
        self.tabu_max_vars
    }

    /// Greedy polish sweep budget.
    pub fn polish_sweeps(&self) -> usize {
        self.polish_sweeps
    }

    /// Feasibility-repair step budget.
    pub fn repair_steps(&self) -> usize {
        self.repair_steps
    }

    /// Wall-clock budget, if any.
    pub fn time_limit(&self) -> Option<Duration> {
        self.time_limit
    }

    /// The model-lint mode.
    pub fn lint_mode(&self) -> LintMode {
        self.lint
    }

    /// The adaptive scheduling configuration.
    pub fn scheduler(&self) -> &SchedulerConfig {
        &self.scheduler
    }

    /// The attached telemetry sink.
    pub fn trace_sink(&self) -> &Arc<dyn TraceSink> {
        &self.sink
    }

    /// The backend pool reads are federated across.
    pub fn backend_pool(&self) -> &BackendPool {
        &self.pool
    }

    /// The primary backend (first pool member) — the whole story for
    /// single-backend configurations.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        self.pool.member(0)
    }

    /// Whether speculative straggler racing is enabled.
    pub fn speculates(&self) -> bool {
        self.speculate
    }

    /// Submission retries allowed per read.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Per-read deadline on the proposal-count virtual clock, if any.
    pub fn read_deadline_proposals(&self) -> Option<u64> {
        self.read_deadline_proposals
    }

    /// Whether the batched bitset fast path is enabled.
    pub fn is_batched(&self) -> bool {
        self.batched
    }

    /// Whether the decomposition frontend is enabled.
    pub fn decomposes(&self) -> bool {
        self.decompose
    }

    /// Lanes per batched kernel invocation: the bitset word width when
    /// batched, 1 on the scalar path.
    pub fn batch_width(&self) -> usize {
        if self.batched {
            MAX_LANES
        } else {
            1
        }
    }

    /// A serializable snapshot of this configuration, for run manifests.
    pub fn config(&self) -> SolverConfig {
        SolverConfig {
            num_reads: self.num_reads,
            sweeps: self.sweeps,
            sqa_replicas: self.sqa_replicas,
            seed: self.seed,
            penalty_factor: self.penalty_factor,
            style: format!("{:?}", self.style),
            samplers: self.samplers.iter().map(|s| s.to_string()).collect(),
            tabu_max_vars: self.tabu_max_vars,
            polish_sweeps: self.polish_sweeps,
            repair_steps: self.repair_steps,
            time_limit_ms: self.time_limit.map(|d| d.as_secs_f64() * 1e3),
            lint: self.lint.to_string(),
            adaptive: self.scheduler.adaptive,
            early_stop: self.scheduler.early_stop,
            wave_size: self.scheduler.wave_size,
            plateau_window: self.scheduler.plateau_window,
            plateau_tolerance: self.scheduler.plateau_tolerance,
            elite_capacity: self.scheduler.elite_capacity,
            elite_fraction: self.scheduler.elite_fraction,
            max_retries: self.max_retries,
            read_deadline_proposals: self.read_deadline_proposals,
            backend: self.pool.member(0).id().to_string(),
            backends: self
                .pool
                .members()
                .iter()
                .map(|b| b.id().to_string())
                .collect(),
            speculate: self.speculate,
            batched: self.batched,
            batch_width: self.batch_width(),
            kernel: if self.batched { "batched" } else { "scalar" }.to_string(),
            decompose: self.decompose,
        }
    }

    /// Runs the model linter as the solver sees the problem: the *original*
    /// CQM is checked structurally (presolve substitutes fixed variables out
    /// of every expression, which would trip the reference rules), and the
    /// penalty weights this configuration would derive are checked against
    /// the *presolved* model — the one they are actually compiled for.
    pub fn lint_model(&self, cqm: &Cqm) -> LintReport {
        let mut report = lint_cqm(cqm);
        if cqm.num_vars() > 0 && references_in_bounds(cqm) {
            let pre = presolve(cqm);
            let penalty = PenaltyConfig::auto(&pre.cqm, self.penalty_factor, self.style);
            report.merge(lint_penalty(&pre.cqm, &penalty));
        }
        report
    }

    /// Records a lint verdict into the trace sink (no-op on [`NoopSink`]).
    fn record_lint(&self, num_vars: usize, report: &LintReport, denied: bool) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.record_lint(LintRecord {
            num_vars,
            errors: report.num_errors(),
            warnings: report.num_warnings(),
            denied,
            diagnostics: report
                .diagnostics
                .iter()
                .map(|d| LintDiagnosticRecord {
                    rule: d.rule.as_str().to_string(),
                    severity: d.severity.as_str().to_string(),
                    span: d.span.to_string(),
                    message: d.message.clone(),
                })
                .collect(),
        });
    }

    /// Solves `cqm`, seeding the first reads with `seeds` (candidate states
    /// of CQM width; may be empty). Returns all reads, best first.
    ///
    /// Unless the lint mode is [`LintMode::Off`], the model linter runs
    /// first and its findings are recorded into the trace sink — but this
    /// entry point *always* solves, even under [`LintMode::Deny`]; use
    /// [`HybridCqmSolver::solve_checked`] to let error findings refuse the
    /// model.
    pub fn solve(&self, cqm: &Cqm, seeds: &[Vec<u8>]) -> SampleSet {
        if self.lint != LintMode::Off {
            let report = self.lint_model(cqm);
            self.record_lint(cqm.num_vars(), &report, false);
        }
        if self.decompose && self.oversized(cqm) {
            return self.solve_decomposed(cqm, seeds);
        }
        self.solve_impl(cqm, seeds)
    }

    /// [`HybridCqmSolver::solve`] with the verdicts enforced: under
    /// [`LintMode::Deny`], a model with error-severity findings is refused
    /// before any sampling happens, and a model wider than the tabu cap is
    /// refused with [`SolveError::TooLarge`] unless the decomposition
    /// frontend is on (in which case it is solved through active windows).
    /// Under [`LintMode::Warn`] / [`LintMode::Off`] and within the cap this
    /// never fails.
    pub fn solve_checked(&self, cqm: &Cqm, seeds: &[Vec<u8>]) -> Result<SampleSet, SolveError> {
        if self.lint != LintMode::Off {
            let report = self.lint_model(cqm);
            let denied = self.lint == LintMode::Deny && report.has_errors();
            self.record_lint(cqm.num_vars(), &report, denied);
            if denied {
                return Err(SolveError::Rejected(ModelRejected { report }));
            }
        }
        if self.oversized(cqm) {
            if self.decompose {
                return Ok(self.solve_decomposed(cqm, seeds));
            }
            return Err(SolveError::TooLarge(ModelTooLarge {
                vars: cqm.num_vars(),
                cap: self.tabu_max_vars,
            }));
        }
        Ok(self.solve_impl(cqm, seeds))
    }

    /// Whether this model would overflow the tabu width guard: wider than
    /// the cap with tabu reads in the portfolio. (The unchecked
    /// [`HybridCqmSolver::solve`] keeps the legacy behaviour for such
    /// models — tabu reads silently downgrade to SA — unless decomposition
    /// is on.)
    fn oversized(&self, cqm: &Cqm) -> bool {
        cqm.num_vars() > self.tabu_max_vars && self.samplers.contains(&SamplerKind::Tabu)
    }

    /// The active-window decomposition drive (see [`crate::decompose`]):
    /// runs the window loop with sub-solvers that inherit this
    /// configuration (minus sink and decomposition), then emits a single
    /// sealed [`SolveRecord`] carrying the per-window telemetry.
    fn solve_decomposed(&self, cqm: &Cqm, seeds: &[Vec<u8>]) -> SampleSet {
        let started = Instant::now(); // qlrb-lint: allow(no-wallclock) — telemetry timing around a solve, not inside a sweep
        let outcome = crate::decompose::solve_active_windows(self, cqm, seeds);
        let mut set = outcome.set;
        set.timing.cpu = started.elapsed();
        if self.sink.enabled() {
            let mut record = SolveRecord {
                num_vars: cqm.num_vars(),
                compiled_vars: 0,
                requested_reads: self.num_reads,
                reads: Vec::new(),
                failed_reads: Vec::new(),
                backend_usage: Vec::new(),
                waves: Vec::new(),
                termination: "decomposed".to_string(),
                timing: timing_record(&set.timing),
                summary: set.summary(),
                trace_digest: String::new(),
                decomposition: Some(outcome.record),
            };
            qlrb_telemetry::fingerprint::seal(&mut record);
            self.sink.record_solve(record);
        }
        set
    }

    /// The solve proper; lint handled by the public entry points.
    fn solve_impl(&self, cqm: &Cqm, seeds: &[Vec<u8>]) -> SampleSet {
        let started = Instant::now(); // qlrb-lint: allow(no-wallclock) — telemetry timing around a solve, not inside a sweep
        let width = cqm.num_vars();
        let tracing = self.sink.enabled();
        if width == 0 || self.num_reads == 0 {
            let state: Vec<u8> = Vec::new();
            let mut set = SampleSet {
                samples: vec![Sample {
                    objective: cqm.objective(&state),
                    violation: cqm.total_violation(&state),
                    feasible: cqm.is_feasible(&state),
                    state,
                    sampler: SamplerKind::Sa,
                }],
                timing: SolverTiming::default(),
            };
            set.sort();
            set.timing.cpu = started.elapsed();
            if tracing {
                let mut record = SolveRecord {
                    num_vars: width,
                    compiled_vars: 0,
                    requested_reads: self.num_reads,
                    reads: Vec::new(),
                    failed_reads: Vec::new(),
                    backend_usage: Vec::new(),
                    waves: Vec::new(),
                    termination: TerminationReason::FastExit.as_str().to_string(),
                    timing: timing_record(&set.timing),
                    summary: set.summary(),
                    trace_digest: String::new(),
                    decomposition: None,
                };
                qlrb_telemetry::fingerprint::seal(&mut record);
                self.sink.record_solve(record);
            }
            return set;
        }

        // Classical presolve: bound-based variable fixing and redundant
        // constraint elimination (with a tight migration budget this alone
        // can kill a large fraction of the search space).
        let pre = presolve(cqm);
        let penalty = PenaltyConfig::auto(&pre.cqm, self.penalty_factor, self.style);
        let compiled = CompiledCqm::compile(&pre.cqm, penalty);
        let seeds: Vec<Vec<u8>> = seeds
            .iter()
            .map(|s| {
                let mut s = s.clone();
                pre.apply_to_state(&mut s);
                s
            })
            .collect();

        let mut waves: Vec<WaveRecord> = Vec::new();
        let mut termination = TerminationReason::Exhausted;
        let mut failed_reads: Vec<FailedReadRecord> = Vec::new();
        let scheduled = self.scheduler.early_stop || self.scheduler.adaptive;
        let mut results: Vec<(Sample, Option<ReadRecord>)> = if scheduled {
            let (out, w, t, f) = self.run_scheduled(cqm, &pre, &compiled, &seeds, started, tracing);
            waves = w;
            termination = t;
            failed_reads = f;
            out
        } else {
            match self.time_limit {
                None => {
                    let wave_start = Instant::now(); // qlrb-lint: allow(no-wallclock) — telemetry timing around a solve, not inside a sweep
                    let slots: Vec<WaveSlot> = (0..self.num_reads)
                        .map(|r| {
                            let (sampler, backend) = self.rotation_slot(r);
                            WaveSlot {
                                read: r,
                                sampler,
                                backend,
                                initial: seeds.get(r).cloned(),
                            }
                        })
                        .collect();
                    let out = self.run_wave(cqm.num_vars(), &compiled, slots, tracing);
                    let mut ok = Vec::with_capacity(out.len());
                    for res in out {
                        match res {
                            Ok(o) => ok.push(o),
                            Err(f) => failed_reads.push(f),
                        }
                    }
                    if tracing {
                        waves.push(WaveRecord {
                            wave: 0,
                            first_read: 0,
                            reads: ok.len(),
                            allocation: allocation_of(ok.iter().map(|o| o.sample.sampler)),
                            elite_seeded: 0,
                            wall_ms: wave_start.elapsed().as_secs_f64() * 1e3,
                        });
                    }
                    ok.into_iter().map(|o| (o.sample, o.record)).collect()
                }
                Some(limit) => {
                    // Waves of one read per worker thread. The budget is
                    // checked before a wave launches (never after), so spent
                    // budget cannot trigger extra work; the first wave skips
                    // the check to honour the at-least-one-wave guarantee.
                    let wave = rayon::current_num_threads().max(1);
                    let mut out = Vec::with_capacity(self.num_reads);
                    let mut next = 0usize;
                    while next < self.num_reads {
                        if next > 0 && started.elapsed() >= limit {
                            termination = TerminationReason::TimeLimit;
                            break;
                        }
                        let end = (next + wave).min(self.num_reads);
                        let wave_start = Instant::now(); // qlrb-lint: allow(no-wallclock) — telemetry timing around a solve, not inside a sweep
                        let slots: Vec<WaveSlot> = (next..end)
                            .map(|r| {
                                let (sampler, backend) = self.rotation_slot(r);
                                WaveSlot {
                                    read: r,
                                    sampler,
                                    backend,
                                    initial: seeds.get(r).cloned(),
                                }
                            })
                            .collect();
                        let batch = self.run_wave(cqm.num_vars(), &compiled, slots, tracing);
                        let mut ok = Vec::with_capacity(batch.len());
                        for res in batch {
                            match res {
                                Ok(o) => ok.push(o),
                                Err(f) => failed_reads.push(f),
                            }
                        }
                        if tracing {
                            waves.push(WaveRecord {
                                wave: waves.len(),
                                first_read: next,
                                reads: ok.len(),
                                allocation: allocation_of(ok.iter().map(|o| o.sample.sampler)),
                                elite_seeded: 0,
                                wall_ms: wave_start.elapsed().as_secs_f64() * 1e3,
                            });
                        }
                        out.extend(ok.into_iter().map(|o| (o.sample, o.record)));
                        next = end;
                    }
                    out
                }
            }
        };

        // Graceful degradation: a fully-dead backend produced no samples.
        // Fall back to the caller's candidate states (or the zero state) so
        // the best incumbent seen so far is still returned, and report the
        // exhaustion instead of panicking downstream.
        if results.is_empty() {
            termination = TerminationReason::BackendExhausted;
            let fallback: Vec<Vec<u8>> = if seeds.is_empty() {
                vec![vec![0u8; width]]
            } else {
                seeds.clone()
            };
            results.extend(fallback.into_iter().map(|state| {
                (
                    Sample {
                        objective: 0.0, // rescored below
                        violation: 0.0,
                        feasible: false,
                        state,
                        sampler: SamplerKind::Sa,
                    },
                    None,
                )
            }));
        }

        // Score against the ORIGINAL model (penalties, slacks, and presolve
        // fixings stripped back out — fixed bits are stamped to their
        // proven values first, since they carry no incidence the samplers
        // could have felt). Read records learn the same verdicts.
        for (s, rec) in &mut results {
            s.state.truncate(width);
            pre.apply_to_state(&mut s.state);
            s.objective = cqm.objective(&s.state);
            s.violation = cqm.total_violation(&s.state);
            s.feasible = s.violation == 0.0;
            if let Some(rec) = rec {
                rec.objective = s.objective;
                rec.violation = s.violation;
                rec.feasible = s.feasible;
            }
        }

        let mut reads: Vec<ReadRecord> = Vec::new();
        let samples: Vec<Sample> = results
            .into_iter()
            .map(|(s, rec)| {
                reads.extend(rec);
                s
            })
            .collect();

        let sqa_reads = samples
            .iter()
            .filter(|s| s.sampler == SamplerKind::Sqa)
            .count() as u32;
        let mut set = SampleSet {
            samples,
            timing: SolverTiming {
                cpu: started.elapsed(),
                qpu: if sqa_reads > 0 {
                    Duration::from_millis(16) + Duration::from_millis(4) * sqa_reads
                } else {
                    Duration::ZERO
                },
            },
        };
        set.sort();
        if tracing {
            let backend_usage = self.backend_usage(&reads, &failed_reads);
            let mut record = SolveRecord {
                num_vars: width,
                compiled_vars: compiled.num_vars(),
                requested_reads: self.num_reads,
                reads,
                failed_reads,
                backend_usage,
                waves,
                termination: termination.as_str().to_string(),
                timing: timing_record(&set.timing),
                summary: set.summary(),
                trace_digest: String::new(),
                decomposition: None,
            };
            // Fingerprint emission (DESIGN.md §Determinism audit): the
            // digest is stamped where the record is born, so every sink —
            // manifest writers and ad-hoc consumers alike — sees a sealed
            // trace.
            qlrb_telemetry::fingerprint::seal(&mut record);
            self.sink.record_solve(record);
        }
        set
    }

    /// The legacy portfolio rotation: read `r` runs `samplers[r % len]`.
    /// An empty portfolio would make the modular lookup panic; degrade to
    /// plain SA instead so a misconfigured solver still samples.
    fn rotation_sampler(&self, read_index: usize) -> SamplerKind {
        if self.samplers.is_empty() {
            SamplerKind::Sa
        } else {
            self.samplers[read_index % self.samplers.len()]
        }
    }

    /// The federated rotation: reads cycle through the cartesian product of
    /// portfolio samplers × pool members, samplers fastest. Member `m`
    /// decomposes as sampler `m % s`, backend `m / s` — with a one-member
    /// pool this collapses to the legacy [`rotation_sampler`] rotation with
    /// every read on backend 0, keeping single-backend solves byte-identical.
    ///
    /// [`rotation_sampler`]: Self::rotation_sampler
    fn rotation_slot(&self, read_index: usize) -> (SamplerKind, usize) {
        let s = self.samplers.len().max(1);
        let m = read_index % (s * self.pool.len());
        (self.rotation_sampler(m % s), m / s)
    }

    /// Folds the per-read trace records into one [`BackendUsageRecord`] per
    /// pool member (in dispatch order): reads won, failed attempts charged,
    /// speculative wins, cancelled in-flight attempts, the declared
    /// cost-per-read × reads actually charged, and the QPU access time
    /// attributed to SQA reads that backend served. A cancelled straggler is
    /// counted but never charged — its read (and its QPU time) belongs to
    /// the backend that won the race.
    fn backend_usage(
        &self,
        reads: &[ReadRecord],
        failed: &[FailedReadRecord],
    ) -> Vec<BackendUsageRecord> {
        let sqa = SamplerKind::Sqa.to_string();
        let mut usage: Vec<BackendUsageRecord> = self
            .pool
            .members()
            .iter()
            .map(|b| BackendUsageRecord {
                backend: b.id().to_string(),
                reads: 0,
                failed_attempts: 0,
                speculative: 0,
                cancelled: 0,
                cost: 0.0,
                qpu_ms: 0.0,
            })
            .collect();
        fn entry<'a>(
            usage: &'a mut [BackendUsageRecord],
            name: &str,
        ) -> Option<&'a mut BackendUsageRecord> {
            usage.iter_mut().find(|u| u.backend == name)
        }
        for rec in reads {
            if let Some(u) = entry(&mut usage, &rec.backend) {
                u.reads += 1;
                if rec.speculated {
                    u.speculative += 1;
                }
                if rec.sampler == sqa {
                    u.qpu_ms += 4.0;
                }
            }
            if let Some(loser) = &rec.cancelled_backend {
                if let Some(u) = entry(&mut usage, loser) {
                    u.cancelled += 1;
                }
            }
            for fault in &rec.faults {
                if let Some(u) = entry(&mut usage, &fault.backend) {
                    u.failed_attempts += 1;
                }
            }
        }
        for fr in failed {
            for fault in &fr.faults {
                if let Some(u) = entry(&mut usage, &fault.backend) {
                    u.failed_attempts += 1;
                }
            }
        }
        for (u, b) in usage.iter_mut().zip(self.pool.members()) {
            u.cost = u.reads as f64 * b.profile().cost_per_read;
        }
        usage
    }

    /// The adaptive wave loop (`early_stop` and/or `adaptive` enabled): a
    /// [`PortfolioScheduler`] plans each wave's member split and elite
    /// warm-starts, observes the results, and decides when to stop.
    ///
    /// Reads here always run with a recording observer — the scheduler
    /// needs per-read proposal counts and energies whether or not a trace
    /// sink is attached. Observers never draw randomness, so this cannot
    /// perturb the samples.
    #[allow(clippy::too_many_arguments)]
    fn run_scheduled(
        &self,
        cqm: &Cqm,
        pre: &Presolve,
        compiled: &Arc<CompiledCqm>,
        seeds: &[Vec<u8>],
        started: Instant,
        tracing: bool,
    ) -> ScheduledRun {
        let width = cqm.num_vars();
        // Scheduler members are the cartesian product of portfolio samplers
        // × pool backends (samplers fastest): member `m` runs sampler
        // `m % s` on pool member `m / s`, mirroring `rotation_slot`. The
        // bandit thus learns per-(sampler, backend) feasible-hit rates and
        // improvements, and divides its weights by each backend's declared
        // cost-per-read — reads drift toward the cheapest backend that
        // still delivers. A one-member pool with the default unit cost
        // collapses to the legacy sampler-only bandit.
        let samplers: Vec<SamplerKind> = if self.samplers.is_empty() {
            vec![SamplerKind::Sa]
        } else {
            self.samplers.clone()
        };
        let num_members = samplers.len() * self.pool.len();
        // Presolve proved everything (or the model is unsatisfiable as
        // bounded): no read can beat the trivial incumbent.
        let trivial = pre.infeasible || compiled.active_vars().is_empty();
        let mut sched_cfg = self.scheduler.clone();
        // Batched waves are allocated in whole lane groups: the bandit
        // hands out slots `batch_width` at a time so a kernel invocation
        // never straddles two members, and auto wave sizing scales up so
        // every member can fill a group.
        sched_cfg.lane_width = self.batch_width();
        let mut scheduler =
            PortfolioScheduler::new(sched_cfg, num_members, objective_lower_bound(cqm), trivial);
        scheduler.set_member_costs(
            (0..num_members)
                .map(|m| self.pool.member(m / samplers.len()).profile().cost_per_read)
                .collect(),
        );
        let mut out = Vec::with_capacity(self.num_reads);
        let mut waves: Vec<WaveRecord> = Vec::new();
        let mut failed: Vec<FailedReadRecord> = Vec::new();
        let mut termination = TerminationReason::Exhausted;
        let mut next = 0usize;
        while next < self.num_reads {
            if next > 0 {
                if let Some(reason) = scheduler.should_stop() {
                    termination = reason;
                    break;
                }
                if let Some(limit) = self.time_limit {
                    if started.elapsed() >= limit {
                        termination = TerminationReason::TimeLimit;
                        break;
                    }
                }
            }
            let wave_reads = scheduler.wave_size().min(self.num_reads - next);
            let plan = scheduler.plan_wave(next, wave_reads);
            let wave_start = Instant::now(); // qlrb-lint: allow(no-wallclock) — telemetry timing around a solve, not inside a sweep
            let slots: Vec<WaveSlot> = plan
                .members
                .iter()
                .enumerate()
                .map(|(i, &m)| {
                    let r = next + i;
                    // Caller seeds take the slot first; elite warm-starts
                    // fill the remaining leading slots of the wave.
                    let initial = seeds.get(r).or_else(|| plan.elite_seeds.get(i)).cloned();
                    WaveSlot {
                        read: r,
                        sampler: samplers[m % samplers.len()],
                        backend: m / samplers.len(),
                        initial,
                    }
                })
                .collect();
            let batch = self.run_wave(width, compiled, slots, true);
            // Failures feed the scheduler's degradation bookkeeping: a
            // member with enough consecutive failures is declared dead and
            // its reads are reapportioned (or, all members dead, the solve
            // stops with `BackendExhausted`).
            let mut ok: Vec<(usize, ReadOutcome)> = Vec::with_capacity(batch.len());
            for (i, res) in batch.into_iter().enumerate() {
                match res {
                    Ok(o) => ok.push((i, o)),
                    Err(f) => {
                        scheduler.observe_failure(plan.members[i]);
                        failed.push(f);
                    }
                }
            }
            let mut elite_seeded = 0usize;
            let stats: Vec<ReadStats> = ok
                .iter()
                .map(|(i, o)| {
                    let r = next + i;
                    if r >= seeds.len() && *i < plan.elite_seeds.len() {
                        elite_seeded += 1;
                    }
                    // Score against the original model so the scheduler's
                    // incumbent tracks true feasibility and objective
                    // (idempotent with the final rescoring pass below).
                    let mut st = o.sample.state.clone();
                    st.truncate(width);
                    pre.apply_to_state(&mut st);
                    ReadStats {
                        member: plan.members[*i],
                        proposals: o.record.as_ref().map_or(0, |rec| rec.proposals),
                        initial_energy: o
                            .record
                            .as_ref()
                            .map_or(o.energy, |rec| rec.initial_energy),
                        final_energy: o.energy,
                        objective: cqm.objective(&st),
                        feasible: cqm.total_violation(&st) == 0.0,
                        // Elite states live at compiled width so they can
                        // re-enter the samplers directly.
                        state: o.sample.state.clone(),
                    }
                })
                .collect();
            scheduler.observe_wave(&stats);
            if tracing {
                waves.push(WaveRecord {
                    wave: waves.len(),
                    first_read: next,
                    reads: ok.len(),
                    allocation: allocation_of(ok.iter().map(|(_, o)| o.sample.sampler)),
                    elite_seeded,
                    wall_ms: wave_start.elapsed().as_secs_f64() * 1e3,
                });
            }
            out.extend(
                ok.into_iter()
                    .map(|(_, o)| (o.sample, if tracing { o.record } else { None })),
            );
            next += wave_reads;
        }
        (out, waves, termination, failed)
    }

    /// One independent read: [`decide_read`] arbitrates the retry loop
    /// across the backend pool (backoff, deadlines, backend rotation,
    /// speculation) and the granted attempt runs once on the winning
    /// member. A read whose retry budget (or per-read deadline) is
    /// exhausted yields a [`FailedReadRecord`] instead of a sample.
    ///
    /// Attempt 0 draws from the legacy per-read RNG stream, so a solve
    /// whose first attempts all succeed (in particular any solve on the
    /// default single-member pool) is byte-identical to the pre-backend
    /// solver. Retries re-derive a distinct stream from the read seed and
    /// the attempt index — still a pure function of the master seed.
    ///
    /// [`decide_read`]: Self::decide_read
    fn run_read(
        &self,
        cqm_width: usize,
        compiled: &Arc<CompiledCqm>,
        read_index: usize,
        sampler: SamplerKind,
        slot_backend: usize,
        initial: Option<&[u8]>,
        tracing: bool,
    ) -> Result<ReadOutcome, FailedReadRecord> {
        let mut sampler = sampler;
        if sampler == SamplerKind::Tabu && compiled.num_vars() > self.tabu_max_vars {
            sampler = SamplerKind::Sa;
        }
        let grant = self.decide_read(compiled, read_index, sampler, slot_backend)?;
        let backend = self.pool.member(grant.backend);
        match self.attempt_read(
            cqm_width,
            compiled,
            read_index,
            grant.attempt,
            grant.attempt_seed,
            sampler,
            backend,
            initial,
            tracing,
        ) {
            Ok(mut outcome) => {
                if let Some(rec) = &mut outcome.record {
                    rec.attempts = grant.attempt + 1;
                    rec.backoff_proposals = grant.backoff_proposals;
                    rec.faults = grant.faults;
                    rec.backend = backend.id().to_string();
                    rec.speculated = grant.speculated;
                    rec.cancelled_backend = grant.cancelled;
                }
                Ok(outcome)
            }
            // The shipped backends' `submit` verdict matches the `decide`
            // grant (both are pure in the request), so this arm only fires
            // for a custom backend that disagrees with its own `decide` —
            // which fails the read, as in the batched path.
            Err(e) => {
                let mut faults = grant.faults;
                faults.push(FaultRecord {
                    attempt: grant.attempt,
                    backend: backend.id().to_string(),
                    error: e.to_string(),
                });
                Err(FailedReadRecord {
                    read: read_index,
                    sampler: sampler.to_string(),
                    backend: backend.id().to_string(),
                    faults,
                })
            }
        }
    }

    /// One submission attempt of a read: seed → sample (through the
    /// backend) → polish → repair. `sampler` has already been downgraded by
    /// the tabu width guard.
    ///
    /// `initial` is a caller seed or elite warm-start, `None` for a random
    /// start drawn from the attempt's own RNG — drawing inside the attempt
    /// keeps its random stream identical whether or not other reads were
    /// seeded.
    #[allow(clippy::too_many_arguments)]
    fn attempt_read(
        &self,
        cqm_width: usize,
        compiled: &Arc<CompiledCqm>,
        read_index: usize,
        attempt: u32,
        attempt_seed: u64,
        sampler: SamplerKind,
        backend: &Arc<dyn Backend>,
        initial: Option<&[u8]>,
        tracing: bool,
    ) -> Result<ReadOutcome, crate::backend::SubmitError> {
        let mut rng = ChaCha8Rng::seed_from_u64(attempt_seed);
        let seeded = initial.is_some();
        let mut obs = if tracing {
            ReadObserver::recording(read_index, attempt_seed, seeded)
        } else {
            ReadObserver::disabled()
        };
        let initial: Vec<u8> = match initial {
            Some(s) => s.to_vec(),
            None => (0..cqm_width)
                .map(|_| u8::from(rng.random::<bool>()))
                .collect(),
        };
        let mut ev = CqmEvaluator::with_state(Arc::clone(compiled), &initial);
        // Seeds are CQM-width: under slack compilation their slack bits are
        // zero and the rewritten equalities start violated. Repair first so
        // a good classical seed enters the anneal as a *feasible* state.
        if !ev.is_feasible() {
            let out = repair(&mut ev, self.repair_steps, &mut rng);
            obs.repair(out.steps as u64);
        }

        // Auto-scale the temperature ladder by probing, then restore.
        let scale = {
            let mut probe = ev.clone();
            estimate_delta_scale(&mut probe, &mut rng, 128)
        };

        let run = SamplerRun::for_portfolio(sampler, self.sweeps, self.sqa_replicas, scale);
        let req = SubmitRequest {
            read: read_index,
            attempt,
            sampler,
            backend: backend.id(),
        };
        let best_state = backend
            .submit(&req, &run, &mut ev, &mut rng, &mut obs)?
            .state;

        ev.set_state(&best_state);
        let pre_polish = ev.energy();
        let flips = greedy_descent(&mut ev, self.polish_sweeps, &mut rng);
        obs.polish(flips, pre_polish - ev.energy());
        if !ev.is_feasible() {
            let out = repair(&mut ev, self.repair_steps, &mut rng);
            obs.repair(out.steps as u64);
            let pre_polish = ev.energy();
            let flips = greedy_descent(&mut ev, self.polish_sweeps, &mut rng);
            obs.polish(flips, pre_polish - ev.energy());
            // Keep the repaired state only if it actually reached
            // feasibility or at least did not lose ground.
        }

        let energy = ev.energy();
        let record = obs.finish(energy);
        let state = ev.state().to_vec();
        Ok(ReadOutcome {
            sample: Sample {
                objective: 0.0, // rescored by `solve`
                violation: 0.0,
                feasible: false,
                state,
                sampler,
            },
            energy,
            record,
        })
    }

    /// Runs one wave of reads and returns the outcomes in slot order.
    ///
    /// The scalar path (the default) runs each slot through [`run_read`]
    /// in parallel — byte-identical to the pre-batching solver. With
    /// [`batched`](HybridCqmSolverBuilder::batched) on, slots are packed
    /// into bitset lane groups instead.
    ///
    /// [`run_read`]: Self::run_read
    fn run_wave(
        &self,
        cqm_width: usize,
        compiled: &Arc<CompiledCqm>,
        slots: Vec<WaveSlot>,
        tracing: bool,
    ) -> Vec<Result<ReadOutcome, FailedReadRecord>> {
        if !self.batched {
            return slots
                .par_iter()
                .map(|s| {
                    self.run_read(
                        cqm_width,
                        compiled,
                        s.read,
                        s.sampler,
                        s.backend,
                        s.initial.as_deref(),
                        tracing,
                    )
                })
                .collect();
        }
        self.run_batched_wave(cqm_width, compiled, slots, tracing)
    }

    /// The batched wave: fault-arbitrate every read first (at read
    /// granularity, through [`Backend::decide`]), pack the survivors into
    /// lane groups by sampler, and run each group through the batched
    /// kernels. SA and tabu pack up to [`MAX_LANES`] reads per group; SQA
    /// packs one read's Trotter replicas into the lanes; PT (no batched
    /// kernel) falls back to one scalar attempt per read.
    fn run_batched_wave(
        &self,
        cqm_width: usize,
        compiled: &Arc<CompiledCqm>,
        slots: Vec<WaveSlot>,
        tracing: bool,
    ) -> Vec<Result<ReadOutcome, FailedReadRecord>> {
        let mut results: Vec<Option<Result<ReadOutcome, FailedReadRecord>>> =
            (0..slots.len()).map(|_| None).collect();
        let mut work: Vec<BatchWork> = Vec::new();
        let mut sa_group: Vec<LaneTicket> = Vec::new();
        let mut tabu_group: Vec<LaneTicket> = Vec::new();
        for (slot, s) in slots.into_iter().enumerate() {
            let mut sampler = s.sampler;
            if sampler == SamplerKind::Tabu && compiled.num_vars() > self.tabu_max_vars {
                sampler = SamplerKind::Sa;
            }
            match self.decide_read(compiled, s.read, sampler, s.backend) {
                Err(failed) => results[slot] = Some(Err(failed)),
                Ok(grant) => {
                    let ticket = LaneTicket {
                        slot,
                        read: s.read,
                        initial: s.initial,
                        grant,
                    };
                    match sampler {
                        SamplerKind::Sa => {
                            sa_group.push(ticket);
                            if sa_group.len() == MAX_LANES {
                                work.push(BatchWork::Group(sampler, std::mem::take(&mut sa_group)));
                            }
                        }
                        SamplerKind::Tabu => {
                            tabu_group.push(ticket);
                            if tabu_group.len() == MAX_LANES {
                                work.push(BatchWork::Group(
                                    sampler,
                                    std::mem::take(&mut tabu_group),
                                ));
                            }
                        }
                        SamplerKind::Sqa | SamplerKind::Pt => {
                            work.push(BatchWork::Lane(sampler, Box::new(ticket)));
                        }
                    }
                }
            }
        }
        if !sa_group.is_empty() {
            work.push(BatchWork::Group(SamplerKind::Sa, sa_group));
        }
        if !tabu_group.is_empty() {
            work.push(BatchWork::Group(SamplerKind::Tabu, tabu_group));
        }
        let done: Vec<Vec<(usize, Result<ReadOutcome, FailedReadRecord>)>> = work
            .into_par_iter()
            .map(|w| match w {
                BatchWork::Group(kind, tickets) => {
                    self.run_lane_group(cqm_width, compiled, kind, tickets, tracing)
                }
                BatchWork::Lane(SamplerKind::Sqa, t) => {
                    vec![self.run_sqa_lane(cqm_width, compiled, *t, tracing)]
                }
                BatchWork::Lane(_, t) => {
                    vec![self.run_pt_lane(cqm_width, compiled, *t, tracing)]
                }
            })
            .collect();
        for (slot, res) in done.into_iter().flatten() {
            results[slot] = Some(res);
        }
        // Every slot resolved above: decide either failed it or produced a
        // ticket, and every ticket lands in exactly one work unit.
        results
            .into_iter()
            .map(|r| r.expect("wave slot resolved")) // qlrb-lint: allow(no-unwrap)
            .collect()
    }

    /// The shared fault/dispatch arbiter behind both the scalar and batched
    /// paths: replays the retry backoff/deadline arithmetic on the proposal
    /// virtual clock, asking a backend to *decide* each attempt instead of
    /// running it, and stops at the first attempt a backend accepts. The
    /// surviving attempt's seed is the pure `(read, attempt)`-derived value
    /// the pre-federation solver used, so fault plans hit and exhaust
    /// identical attempt identities whatever the pool shape.
    ///
    /// Federation semantics:
    ///
    /// * Attempt `k` runs on pool member `(slot_backend + k) % pool_len` —
    ///   retries rotate *across* backends, so a read stranded on a dead
    ///   member recovers on the next one.
    /// * An attempt's virtual cost is `sweeps × width ×` the backend's
    ///   declared `latency_per_proposal`, so a per-read deadline admits
    ///   fewer retries on slow backends (with the default unit latency this
    ///   is exactly the legacy charge).
    /// * Speculative dispatch (with [`speculate`] on and ≥ 2 members): an
    ///   attempt is a *straggler* when its backend times out, or when the
    ///   backend declares a `deadline_proposals` envelope its own attempt
    ///   cost exceeds. A straggler's attempt is raced against a duplicate
    ///   on the next pool member with the *same* attempt seed; the first
    ///   success wins, the loser is cancelled and never charged — a timeout
    ///   fault is recorded against the cancelled primary, but a merely-slow
    ///   (deadline-triggered) primary that its hedge fails to beat keeps
    ///   the grant with no fault at all.
    ///
    /// [`speculate`]: HybridCqmSolverBuilder::speculate
    fn decide_read(
        &self,
        compiled: &Arc<CompiledCqm>,
        read_index: usize,
        sampler: SamplerKind,
        slot_backend: usize,
    ) -> Result<LaneGrant, FailedReadRecord> {
        let pool_len = self.pool.len();
        let read_seed = self.seed.wrapping_add(read_index as u64 * 0x9e37);
        let attempt_cost = (self.sweeps as u64)
            .saturating_mul(compiled.num_vars() as u64)
            .max(1);
        let deadline = self.read_deadline_proposals.unwrap_or(u64::MAX);
        let mut spent: u64 = 0;
        let mut backoff_total: u64 = 0;
        let mut faults: Vec<FaultRecord> = Vec::new();
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                let backoff = BACKOFF_BASE_PROPOSALS.saturating_mul(1u64 << (attempt - 1).min(20));
                if spent.saturating_add(backoff).saturating_add(attempt_cost) > deadline {
                    break;
                }
                spent = spent.saturating_add(backoff);
                backoff_total = backoff_total.saturating_add(backoff);
            }
            let attempt_seed = if attempt == 0 {
                read_seed
            } else {
                read_seed ^ RETRY_SEED_SALT.wrapping_mul(u64::from(attempt))
            };
            let primary = (slot_backend + attempt as usize) % pool_len;
            let backend = self.pool.member(primary);
            let profile = backend.profile();
            let attempt_spend = attempt_cost.saturating_mul(profile.latency_per_proposal.max(1));
            let req = SubmitRequest {
                read: read_index,
                attempt,
                sampler,
                backend: backend.id(),
            };
            let verdict = backend.decide(&req);
            let timed_out = matches!(verdict, Err(SubmitError::Timeout));
            let over_envelope = profile
                .deadline_proposals
                .is_some_and(|d| attempt_spend > d);
            if (timed_out || over_envelope) && self.speculate && pool_len > 1 {
                let hedge_idx = (primary + 1) % pool_len;
                let hedge = self.pool.member(hedge_idx);
                let hedge_req = SubmitRequest {
                    read: read_index,
                    attempt,
                    sampler,
                    backend: hedge.id(),
                };
                match hedge.decide(&hedge_req) {
                    Ok(()) => {
                        // The hedge wins the race: the straggling primary
                        // attempt is cancelled in flight and never charged.
                        if let Err(e) = verdict {
                            faults.push(FaultRecord {
                                attempt,
                                backend: backend.id().to_string(),
                                error: e.to_string(),
                            });
                        }
                        return Ok(LaneGrant {
                            attempt,
                            attempt_seed,
                            backoff_proposals: backoff_total,
                            faults,
                            backend: hedge_idx,
                            speculated: true,
                            cancelled: Some(backend.id().to_string()),
                        });
                    }
                    Err(hedge_err) => match verdict {
                        Ok(()) => {
                            // The slow primary still finishes first.
                            faults.push(FaultRecord {
                                attempt,
                                backend: hedge.id().to_string(),
                                error: hedge_err.to_string(),
                            });
                            return Ok(LaneGrant {
                                attempt,
                                attempt_seed,
                                backoff_proposals: backoff_total,
                                faults,
                                backend: primary,
                                speculated: true,
                                cancelled: None,
                            });
                        }
                        Err(e) => {
                            faults.push(FaultRecord {
                                attempt,
                                backend: backend.id().to_string(),
                                error: e.to_string(),
                            });
                            faults.push(FaultRecord {
                                attempt,
                                backend: hedge.id().to_string(),
                                error: hedge_err.to_string(),
                            });
                            spent = spent.saturating_add(attempt_spend);
                        }
                    },
                }
                continue;
            }
            match verdict {
                Ok(()) => {
                    return Ok(LaneGrant {
                        attempt,
                        attempt_seed,
                        backoff_proposals: backoff_total,
                        faults,
                        backend: primary,
                        speculated: false,
                        cancelled: None,
                    });
                }
                Err(e) => {
                    faults.push(FaultRecord {
                        attempt,
                        backend: backend.id().to_string(),
                        error: e.to_string(),
                    });
                    spent = spent.saturating_add(attempt_spend);
                }
            }
        }
        Err(FailedReadRecord {
            read: read_index,
            sampler: sampler.to_string(),
            backend: self.pool.member(slot_backend % pool_len).id().to_string(),
            faults,
        })
    }

    /// Per-lane classical setup of a batched read: derive the lane's
    /// counter stream from its granted attempt seed, adopt or draw the
    /// initial state, repair it to feasibility, and probe the model's
    /// energy-delta scale — the same stages, in the same order, as
    /// [`attempt_read`].
    ///
    /// [`attempt_read`]: Self::attempt_read
    fn prepare_lane(
        &self,
        cqm_width: usize,
        compiled: &Arc<CompiledCqm>,
        ticket: &LaneTicket,
        tracing: bool,
    ) -> (CqmEvaluator, CounterRng, ReadObserver, f64) {
        let mut rng = CounterRng::new(ticket.grant.attempt_seed);
        let mut obs = if tracing {
            ReadObserver::recording(
                ticket.read,
                ticket.grant.attempt_seed,
                ticket.initial.is_some(),
            )
        } else {
            ReadObserver::disabled()
        };
        let initial: Vec<u8> = match &ticket.initial {
            Some(s) => s.clone(),
            None => (0..cqm_width)
                .map(|_| u8::from(rng.random::<bool>()))
                .collect(),
        };
        let mut ev = CqmEvaluator::with_state(Arc::clone(compiled), &initial);
        if !ev.is_feasible() {
            let out = repair(&mut ev, self.repair_steps, &mut rng);
            obs.repair(out.steps as u64);
        }
        let scale = {
            let mut probe = ev.clone();
            estimate_delta_scale(&mut probe, &mut rng, 128)
        };
        (ev, rng, obs, scale)
    }

    /// Runs one SA or tabu lane group: each surviving read is one lane of a
    /// single [`BatchedEvaluator`], so the whole group shares each CSR
    /// traversal. After the kernel, the group is polished by the batched
    /// descent; a lane that ends infeasible drops back to scalar
    /// repair-and-polish on its own stream.
    fn run_lane_group(
        &self,
        cqm_width: usize,
        compiled: &Arc<CompiledCqm>,
        kind: SamplerKind,
        tickets: Vec<LaneTicket>,
        tracing: bool,
    ) -> Vec<(usize, Result<ReadOutcome, FailedReadRecord>)> {
        let lanes = tickets.len();
        let n = compiled.active_vars().len() as u64;
        let mut bev = BatchedEvaluator::new(Arc::clone(compiled), lanes);
        let mut lane_rngs: Vec<CounterRng> = Vec::with_capacity(lanes);
        let mut observers: Vec<ReadObserver> = Vec::with_capacity(lanes);
        let mut schedules: Vec<BetaSchedule> = Vec::with_capacity(lanes);
        let mut initial_energy = vec![0.0f64; lanes];
        for (l, t) in tickets.iter().enumerate() {
            let (ev, rng, obs, scale) = self.prepare_lane(cqm_width, compiled, t, tracing);
            bev.set_lane_state(l, ev.state());
            initial_energy[l] = ev.energy();
            schedules.push(auto_geometric(scale));
            lane_rngs.push(rng);
            observers.push(obs);
        }
        // Group-shared streams (visit order, polish order) are keyed off
        // the master seed and the group's first read, so distinct groups —
        // and distinct waves — draw distinct orders deterministically.
        let group_key = tickets[0].read as u64;
        let sampler_name = kind.to_string();
        match kind {
            SamplerKind::Tabu => {
                let params = TabuParams {
                    tenure: 0,
                    max_iters: self.sweeps * 2,
                    stall_limit: (self.sweeps / 2).max(100),
                };
                let out = batched_tabu(&mut bev, &params, &mut lane_rngs);
                for (l, o) in out.into_iter().enumerate() {
                    observers[l].anneal(
                        &sampler_name,
                        initial_energy[l],
                        o.energy,
                        o.iterations,
                        o.iterations * n,
                        o.iterations,
                    );
                    bev.set_lane_state(l, &o.state);
                }
            }
            _ => {
                let mut order_rng = CounterRng::stream(self.seed ^ BATCH_ORDER_SALT, group_key);
                let out = batched_annealing(
                    &mut bev,
                    &schedules,
                    self.sweeps,
                    256,
                    &mut order_rng,
                    &mut lane_rngs,
                );
                for (l, o) in out.into_iter().enumerate() {
                    observers[l].anneal(
                        &sampler_name,
                        initial_energy[l],
                        o.energy,
                        self.sweeps as u64,
                        self.sweeps as u64 * n,
                        o.accepted,
                    );
                    bev.set_lane_state(l, &o.state);
                }
            }
        }
        let pre_polish = bev.energies().to_vec();
        let mut polish_rng = CounterRng::stream(self.seed ^ BATCH_POLISH_SALT, group_key);
        let flips = batched_descent(&mut bev, self.polish_sweeps, &mut polish_rng);
        let mut out = Vec::with_capacity(lanes);
        for (l, (ticket, mut obs)) in tickets.into_iter().zip(observers).enumerate() {
            obs.polish(flips[l], pre_polish[l] - bev.energy(l));
            let (state, energy) = if bev.is_feasible(l) {
                (bev.lane_state(l), bev.energy(l))
            } else {
                let mut ev = CqmEvaluator::with_state(Arc::clone(compiled), &bev.lane_state(l));
                let rep = repair(&mut ev, self.repair_steps, &mut lane_rngs[l]);
                obs.repair(rep.steps as u64);
                let pre = ev.energy();
                let polish_flips = greedy_descent(&mut ev, self.polish_sweeps, &mut lane_rngs[l]);
                obs.polish(polish_flips, pre - ev.energy());
                (ev.state().to_vec(), ev.energy())
            };
            let backend = self.pool.member(ticket.grant.backend).id().to_string();
            out.push((
                ticket.slot,
                Ok(finish_outcome(
                    obs,
                    ticket.grant,
                    backend,
                    state,
                    energy,
                    kind,
                )),
            ));
        }
        out
    }

    /// Runs one batched SQA read: the Trotter replica ring occupies the
    /// lane dimension, so all `P` replicas advance per CSR traversal
    /// instead of `P` traversals per sweep — the big win over the scalar
    /// SQA kernel. Budgets mirror [`SamplerRun::for_portfolio`].
    fn run_sqa_lane(
        &self,
        cqm_width: usize,
        compiled: &Arc<CompiledCqm>,
        ticket: LaneTicket,
        tracing: bool,
    ) -> (usize, Result<ReadOutcome, FailedReadRecord>) {
        let (mut ev, mut rng, mut obs, scale) =
            self.prepare_lane(cqm_width, compiled, &ticket, tracing);
        let p = self.sqa_replicas.max(2);
        let mut bev = BatchedEvaluator::new(Arc::clone(compiled), p);
        for lane in 0..p {
            bev.set_lane_state(lane, ev.state());
        }
        let params = BatchedSqaParams {
            sweeps: (self.sweeps / 4).max(50),
            beta: 30.0 / scale,
            transverse: TransverseSchedule {
                gamma0: 3.0 * scale,
                gamma1: 1e-3 * scale,
            },
            global_move_fraction: 0.1,
            resync_interval: 128,
        };
        let initial_energy = ev.energy();
        let best = batched_sqa(&mut bev, &params, &mut rng);
        let n = compiled.active_vars().len() as u64;
        let global_per_sweep = (n as f64 * params.global_move_fraction) as u64;
        obs.anneal(
            &SamplerKind::Sqa.to_string(),
            initial_energy,
            best.energy,
            params.sweeps as u64,
            params.sweeps as u64 * (n * p as u64 + global_per_sweep),
            best.accepted,
        );
        ev.set_state(&best.state);
        let pre_polish = ev.energy();
        let flips = greedy_descent(&mut ev, self.polish_sweeps, &mut rng);
        obs.polish(flips, pre_polish - ev.energy());
        if !ev.is_feasible() {
            let rep = repair(&mut ev, self.repair_steps, &mut rng);
            obs.repair(rep.steps as u64);
            let pre_polish = ev.energy();
            let flips = greedy_descent(&mut ev, self.polish_sweeps, &mut rng);
            obs.polish(flips, pre_polish - ev.energy());
        }
        let energy = ev.energy();
        let state = ev.state().to_vec();
        let backend = self.pool.member(ticket.grant.backend).id().to_string();
        (
            ticket.slot,
            Ok(finish_outcome(
                obs,
                ticket.grant,
                backend,
                state,
                energy,
                SamplerKind::Sqa,
            )),
        )
    }

    /// PT has no batched kernel: the granted attempt re-runs through the
    /// scalar path. The shipped backends' `submit` verdict matches the
    /// `decide` grant, so the attempt cannot fail here; a custom backend
    /// that disagrees with its own `decide` fails the read.
    fn run_pt_lane(
        &self,
        cqm_width: usize,
        compiled: &Arc<CompiledCqm>,
        ticket: LaneTicket,
        tracing: bool,
    ) -> (usize, Result<ReadOutcome, FailedReadRecord>) {
        let LaneTicket {
            slot,
            read,
            initial,
            grant,
        } = ticket;
        let backend = self.pool.member(grant.backend);
        match self.attempt_read(
            cqm_width,
            compiled,
            read,
            grant.attempt,
            grant.attempt_seed,
            SamplerKind::Pt,
            backend,
            initial.as_deref(),
            tracing,
        ) {
            Ok(mut outcome) => {
                if let Some(rec) = &mut outcome.record {
                    rec.attempts = grant.attempt + 1;
                    rec.backoff_proposals = grant.backoff_proposals;
                    rec.faults = grant.faults;
                    rec.backend = backend.id().to_string();
                    rec.speculated = grant.speculated;
                    rec.cancelled_backend = grant.cancelled;
                }
                (slot, Ok(outcome))
            }
            Err(e) => {
                let mut faults = grant.faults;
                faults.push(FaultRecord {
                    attempt: grant.attempt,
                    backend: backend.id().to_string(),
                    error: e.to_string(),
                });
                (
                    slot,
                    Err(FailedReadRecord {
                        read,
                        sampler: SamplerKind::Pt.to_string(),
                        backend: backend.id().to_string(),
                        faults,
                    }),
                )
            }
        }
    }
}

/// Backoff before the first retry, in proposal units of the virtual clock;
/// doubles with every further retry (capped at `2^20` multiples).
const BACKOFF_BASE_PROPOSALS: u64 = 1024;

/// Salt deriving retry RNG streams from the read seed (the 64-bit golden
/// ratio, as used for Fibonacci hashing); attempt 0 keeps the unsalted
/// legacy stream.
const RETRY_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// What the adaptive wave loop hands back to `solve_impl`: the collected
/// samples (with their trace records when a sink is attached), the
/// per-wave records, why the loop stopped, and the reads that exhausted
/// their retry budgets.
type ScheduledRun = (
    Vec<(Sample, Option<ReadRecord>)>,
    Vec<WaveRecord>,
    TerminationReason,
    Vec<FailedReadRecord>,
);

/// What one read hands back to the wave loop: the (not yet rescored)
/// sample, its final penalized energy — the scheduler's incumbent signal —
/// and the trace record if one was collected.
struct ReadOutcome {
    sample: Sample,
    energy: f64,
    record: Option<ReadRecord>,
}

/// One slot of a wave: which read runs, with which portfolio sampler, on
/// which pool member (an index into the solver's [`BackendPool`]), from
/// which warm-start (a caller seed or an elite cross-seed).
struct WaveSlot {
    read: usize,
    sampler: SamplerKind,
    backend: usize,
    initial: Option<Vec<u8>>,
}

/// A read that survived fault arbitration and may join a lane group.
struct LaneTicket {
    /// Position in the wave's slot vector (outcomes restore this order).
    slot: usize,
    read: usize,
    initial: Option<Vec<u8>>,
    grant: LaneGrant,
}

/// The attempt [`HybridCqmSolver::decide_read`] granted: its index, its
/// derived RNG seed, the backoff/fault history preceding it, and which
/// pool member won it — including whether it was won by a speculative
/// hedge and, if so, which straggler was cancelled.
struct LaneGrant {
    attempt: u32,
    attempt_seed: u64,
    backoff_proposals: u64,
    faults: Vec<FaultRecord>,
    /// Index into the solver's [`BackendPool`] of the member that serves
    /// the granted attempt.
    backend: usize,
    /// Whether a speculative duplicate was raced for this attempt.
    speculated: bool,
    /// Id of the straggling backend whose in-flight attempt was cancelled
    /// (charged nothing) when the hedge won the race.
    cancelled: Option<String>,
}

/// One parallel unit of a batched wave.
enum BatchWork {
    /// An SA or tabu lane group (lane-per-read, up to [`MAX_LANES`]).
    Group(SamplerKind, Vec<LaneTicket>),
    /// A single-read unit: SQA (lane-per-replica) or PT (scalar fallback).
    Lane(SamplerKind, Box<LaneTicket>),
}

/// Salt deriving the batched groups' shared visit-order streams from the
/// master seed.
const BATCH_ORDER_SALT: u64 = 0x6f72_6465_7260_b8d1;

/// Salt deriving the batched groups' shared polish streams from the master
/// seed.
const BATCH_POLISH_SALT: u64 = 0x706f_6c69_7368_42e7;

/// Stamps the retry bookkeeping of a granted attempt into a finished
/// lane's record and wraps it as a [`ReadOutcome`] — the batched analogue
/// of the record patching in [`HybridCqmSolver::run_read`].
fn finish_outcome(
    mut obs: ReadObserver,
    grant: LaneGrant,
    backend: String,
    state: Vec<u8>,
    energy: f64,
    sampler: SamplerKind,
) -> ReadOutcome {
    let mut record = obs.finish(energy);
    if let Some(rec) = &mut record {
        rec.attempts = grant.attempt + 1;
        rec.backoff_proposals = grant.backoff_proposals;
        rec.faults = grant.faults;
        rec.backend = backend;
        rec.speculated = grant.speculated;
        rec.cancelled_backend = grant.cancelled;
    }
    ReadOutcome {
        sample: Sample {
            objective: 0.0, // rescored by `solve`
            violation: 0.0,
            feasible: false,
            state,
            sampler,
        },
        energy,
        record,
    }
}

/// Aggregates a wave's per-read sampler kinds into the per-member split
/// recorded in [`WaveRecord::allocation`], preserving first-seen order.
fn allocation_of(kinds: impl Iterator<Item = SamplerKind>) -> Vec<WaveAllocation> {
    let mut alloc: Vec<(String, usize)> = Vec::new();
    for kind in kinds {
        let name = kind.to_string();
        match alloc.iter_mut().find(|(n, _)| *n == name) {
            Some((_, count)) => *count += 1,
            None => alloc.push((name, 1)),
        }
    }
    alloc
        .into_iter()
        .map(|(sampler, reads)| WaveAllocation { sampler, reads })
        .collect()
}

/// Converts the internal [`SolverTiming`] into the serializable
/// millisecond-based [`TimingRecord`].
fn timing_record(timing: &SolverTiming) -> TimingRecord {
    TimingRecord {
        cpu_ms: timing.cpu.as_secs_f64() * 1e3,
        qpu_ms: timing.qpu.as_secs_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use qlrb_model::cqm::Sense;
    use qlrb_model::expr::{LinearExpr, Var};
    use qlrb_telemetry::MemorySink;

    /// A small partition problem: split weights {3,1,1,2,2,1} into two halves
    /// of equal sum (x_i = 1 ⇒ item i in part A), with exactly 3 items in A.
    fn partition_cqm() -> Cqm {
        let w = [3.0, 1.0, 1.0, 2.0, 2.0, 1.0];
        let total: f64 = w.iter().sum();
        let mut cqm = Cqm::new(w.len());
        let mut sum = LinearExpr::new();
        for (i, &wi) in w.iter().enumerate() {
            sum.add_term(Var(i as u32), wi);
        }
        cqm.add_squared_term(sum, total / 2.0, 1.0);
        let mut card = LinearExpr::new();
        for i in 0..w.len() {
            card.add_term(Var(i as u32), 1.0);
        }
        cqm.add_constraint(card, Sense::Le, 3.0, "at_most_3");
        cqm
    }

    #[test]
    fn finds_feasible_optimum() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver::builder()
            .num_reads(6)
            .sweeps(300)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        let best = set.best_feasible().expect("a feasible sample");
        assert_eq!(
            best.objective, 0.0,
            "perfect split exists: e.g. {{3,2}} vs rest"
        );
        assert!(set.timing.cpu > Duration::ZERO);
        assert!(
            set.timing.qpu > Duration::ZERO,
            "portfolio includes SQA reads"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver::builder()
            .num_reads(4)
            .sweeps(100)
            .seed(77)
            .build()
            .unwrap();
        let a = solver.solve(&cqm, &[]);
        let b = solver.solve(&cqm, &[]);
        let states_a: Vec<_> = a.samples.iter().map(|s| s.state.clone()).collect();
        let states_b: Vec<_> = b.samples.iter().map(|s| s.state.clone()).collect();
        assert_eq!(states_a, states_b);
    }

    #[test]
    fn seeded_read_keeps_good_seed() {
        let cqm = partition_cqm();
        // Hand the solver the known optimum as a seed; it must not come back
        // with anything worse.
        let seed_state = vec![1u8, 0, 0, 1, 0, 0]; // {3,2} = 5 = total/2
        assert!(cqm.is_feasible(&seed_state));
        assert_eq!(cqm.objective(&seed_state), 0.0);
        let solver = HybridCqmSolver::builder()
            .num_reads(2)
            .sweeps(50)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[seed_state]);
        assert_eq!(set.best_feasible().unwrap().objective, 0.0);
    }

    #[test]
    fn portfolio_rotates_through_all_samplers() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver::builder()
            .num_reads(6)
            .sweeps(50)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        for kind in [SamplerKind::Sa, SamplerKind::Sqa, SamplerKind::Tabu] {
            assert!(
                set.samples.iter().any(|s| s.sampler == kind),
                "{kind} never ran"
            );
        }
    }

    #[test]
    fn tabu_falls_back_to_sa_on_wide_models() {
        let cqm = partition_cqm();
        // A mixed portfolio with a 1-variable width guard: every tabu read
        // must downgrade to SA at run time (the builder rejects only the
        // tabu-*only* contradiction).
        let solver = HybridCqmSolver::builder()
            .num_reads(4)
            .sweeps(50)
            .tabu_max_vars(1)
            .samplers(vec![SamplerKind::Tabu, SamplerKind::Sqa])
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        assert!(
            set.samples.iter().all(|s| s.sampler != SamplerKind::Tabu),
            "every tabu read must have downgraded"
        );
        assert!(
            set.samples.iter().any(|s| s.sampler == SamplerKind::Sa),
            "downgraded reads run SA"
        );
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert_eq!(
            HybridCqmSolver::builder().num_reads(0).build().unwrap_err(),
            SolverBuildError::ZeroReads
        );
        assert_eq!(
            HybridCqmSolver::builder().sweeps(0).build().unwrap_err(),
            SolverBuildError::ZeroSweeps
        );
        assert_eq!(
            HybridCqmSolver::builder()
                .samplers(vec![])
                .build()
                .unwrap_err(),
            SolverBuildError::EmptyPortfolio
        );
        assert_eq!(
            HybridCqmSolver::builder()
                .samplers(vec![SamplerKind::Tabu])
                .tabu_max_vars(0)
                .build()
                .unwrap_err(),
            SolverBuildError::TabuOnlyOverflow
        );
        // The same portfolio with a sane width guard is fine.
        assert!(HybridCqmSolver::builder()
            .samplers(vec![SamplerKind::Tabu])
            .build()
            .is_ok());
    }

    #[test]
    fn empty_samplers_still_degrades_to_sa_at_runtime() {
        // The builder rejects empty portfolios, but the runtime guard stays
        // as defence in depth for in-crate construction.
        let cqm = partition_cqm();
        let solver = HybridCqmSolver {
            num_reads: 3,
            sweeps: 50,
            samplers: vec![],
            ..Default::default()
        };
        let set = solver.solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 3);
        assert!(
            set.samples.iter().all(|s| s.sampler == SamplerKind::Sa),
            "every read of an empty portfolio degrades to SA"
        );
        assert!(set.best_feasible().is_some());
    }

    #[test]
    fn to_builder_round_trips_and_overrides() {
        let solver = HybridCqmSolver::fast();
        let tweaked = solver.to_builder().seed(123).build().unwrap();
        assert_eq!(tweaked.num_reads(), solver.num_reads());
        assert_eq!(tweaked.sweeps(), solver.sweeps());
        assert_eq!(tweaked.seed(), 123);
    }

    #[test]
    fn config_snapshot_reflects_fields() {
        let solver = HybridCqmSolver::builder()
            .num_reads(3)
            .sweeps(77)
            .time_limit(Duration::from_millis(250))
            .build()
            .unwrap();
        let cfg = solver.config();
        assert_eq!(cfg.num_reads, 3);
        assert_eq!(cfg.sweeps, 77);
        assert_eq!(cfg.samplers, vec!["SA", "SQA", "TABU"]);
        assert_eq!(cfg.style, "ViolationQuadratic");
        assert_eq!(cfg.time_limit_ms, Some(250.0));
        assert_eq!(cfg.lint, "Warn");
    }

    /// A model the linter must refuse: its only constraint is unsatisfiable.
    fn broken_cqm() -> Cqm {
        let mut cqm = partition_cqm();
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 1.0);
        cqm.add_constraint(e, Sense::Le, -1.0, "impossible");
        cqm
    }

    #[test]
    fn deny_mode_refuses_broken_models() {
        let solver = HybridCqmSolver::builder()
            .num_reads(2)
            .sweeps(50)
            .lint(LintMode::Deny)
            .build()
            .unwrap();
        let err = solver.solve_checked(&broken_cqm(), &[]).unwrap_err();
        assert!(err.to_string().contains("infeasible-bound"));
        let SolveError::Rejected(err) = err else {
            panic!("expected a lint rejection, got {err:?}");
        };
        assert!(err.report.has_errors());
        // A clean model sails through the same solver.
        let set = solver.solve_checked(&partition_cqm(), &[]).unwrap();
        assert!(set.best_feasible().is_some());
    }

    #[test]
    fn warn_mode_always_solves() {
        let solver = HybridCqmSolver::builder()
            .num_reads(2)
            .sweeps(50)
            .lint(LintMode::Warn)
            .build()
            .unwrap();
        let set = solver.solve_checked(&broken_cqm(), &[]).unwrap();
        assert!(!set.samples.is_empty());
        // `solve` never refuses, even under Deny.
        let deny = solver.to_builder().lint(LintMode::Deny).build().unwrap();
        assert!(!deny.solve(&broken_cqm(), &[]).samples.is_empty());
    }

    #[test]
    fn lint_findings_reach_the_sink() {
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(2)
            .sweeps(50)
            .lint(LintMode::Deny)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        assert!(solver.solve_checked(&broken_cqm(), &[]).is_err());
        let lints = sink.take_lints();
        assert_eq!(lints.len(), 1);
        assert!(lints[0].denied);
        assert!(lints[0].errors > 0);
        assert!(lints[0]
            .diagnostics
            .iter()
            .any(|d| d.rule == "infeasible-bound"));
        assert!(
            sink.take().is_empty(),
            "denied model never produced a solve"
        );

        // A clean solve records a clean lint verdict alongside its trace.
        let set = solver.solve_checked(&partition_cqm(), &[]).unwrap();
        let lints = sink.take_lints();
        assert_eq!(lints.len(), 1);
        assert!(!lints[0].denied);
        assert_eq!(lints[0].errors + lints[0].warnings, 0);
        assert_eq!(sink.take().len(), 1);
        assert!(set.best_feasible().is_some());
    }

    #[test]
    fn lint_off_skips_the_pass_entirely() {
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(2)
            .sweeps(50)
            .lint(LintMode::Off)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let _ = solver.solve_checked(&broken_cqm(), &[]).unwrap();
        assert!(sink.take_lints().is_empty());
    }

    #[test]
    fn time_limit_truncates_reads_but_still_solves() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver::builder()
            .num_reads(64)
            .sweeps(200)
            .time_limit(Duration::from_millis(1))
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        // At least one wave ran; with a 1 ms budget on 64 requested reads
        // we almost certainly stopped early, but the contract is only
        // "some samples, best feasible first".
        assert!(!set.samples.is_empty());
        assert!(set.samples.len() <= 64);
        assert!(set.best_feasible().is_some());
    }

    #[test]
    fn empty_model_returns_trivial_sample() {
        let cqm = Cqm::new(0);
        let set = HybridCqmSolver::default().solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 1);
        assert!(set.samples[0].feasible);
    }

    #[test]
    fn unbalanced_style_also_solves() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver::builder()
            .num_reads(6)
            .sweeps(300)
            .style(PenaltyStyle::Unbalanced {
                l1: 0.96,
                l2: 0.0331,
            })
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        assert!(set.best_feasible().is_some());
    }

    #[test]
    fn slack_style_strips_slack_bits() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver::builder()
            .num_reads(4)
            .sweeps(300)
            .style(PenaltyStyle::Slack)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        for s in &set.samples {
            assert_eq!(s.state.len(), cqm.num_vars());
        }
        assert!(set.best_feasible().is_some());
    }

    #[test]
    fn recording_sink_captures_full_solve_trace() {
        let cqm = partition_cqm();
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(6)
            .sweeps(60)
            .seed(5)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[vec![1, 0, 0, 1, 0, 0]]);

        let mut records = sink.take();
        assert_eq!(records.len(), 1);
        let rec = records.pop().unwrap();
        assert_eq!(rec.num_vars, cqm.num_vars());
        assert_eq!(rec.requested_reads, 6);
        assert_eq!(rec.reads.len(), 6, "one record per read");
        assert_eq!(rec.waves.len(), 1, "unbudgeted solve is a single wave");
        assert_eq!(rec.waves[0].reads, 6);
        assert_eq!(rec.summary.num_samples, set.samples.len());
        assert_eq!(rec.summary.num_feasible, set.num_feasible());
        assert!(rec.timing.cpu_ms > 0.0);

        // Reads arrive in read order and rotate through the portfolio.
        for (i, r) in rec.reads.iter().enumerate() {
            assert_eq!(r.read, i);
            assert!(r.proposals > 0);
            assert!(r.wall_ms >= 0.0);
            assert!((0.0..=1.0).contains(&r.acceptance_rate));
        }
        assert!(rec.reads[0].seeded, "first read took the provided seed");
        assert!(!rec.reads[5].seeded);
        for kind in ["SA", "SQA", "TABU"] {
            assert!(
                rec.reads.iter().any(|r| r.sampler == kind),
                "{kind} missing from trace"
            );
        }
        // Rescored verdicts must agree between trace and sample set.
        let feasible_reads = rec.reads.iter().filter(|r| r.feasible).count();
        assert_eq!(feasible_reads, set.num_feasible());
    }

    #[test]
    fn recording_sink_does_not_perturb_samples() {
        let cqm = partition_cqm();
        let plain = HybridCqmSolver::builder()
            .num_reads(5)
            .sweeps(80)
            .seed(9)
            .build()
            .unwrap();
        let sink = Arc::new(MemorySink::new());
        let traced = plain
            .to_builder()
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();

        let a = plain.solve(&cqm, &[]);
        let b = traced.solve(&cqm, &[]);
        let states_a: Vec<_> = a.samples.iter().map(|s| s.state.clone()).collect();
        let states_b: Vec<_> = b.samples.iter().map(|s| s.state.clone()).collect();
        assert_eq!(states_a, states_b, "telemetry must not perturb the solve");
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn builder_rejects_scheduler_degeneracies() {
        assert_eq!(
            HybridCqmSolver::builder()
                .plateau_window(0)
                .build()
                .unwrap_err(),
            SolverBuildError::ZeroPlateauWindow
        );
        assert_eq!(
            HybridCqmSolver::builder()
                .elite_fraction(1.5)
                .build()
                .unwrap_err(),
            SolverBuildError::EliteFractionOutOfRange
        );
        assert_eq!(
            HybridCqmSolver::builder()
                .elite_fraction(-0.1)
                .build()
                .unwrap_err(),
            SolverBuildError::EliteFractionOutOfRange
        );
        assert_eq!(
            HybridCqmSolver::builder()
                .elite_fraction(f64::NAN)
                .build()
                .unwrap_err(),
            SolverBuildError::EliteFractionOutOfRange
        );
        // The boundary values are legal.
        assert!(HybridCqmSolver::builder()
            .plateau_window(1)
            .elite_fraction(1.0)
            .adaptive(true)
            .early_stop(true)
            .build()
            .is_ok());
    }

    #[test]
    fn adaptive_solve_is_deterministic() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver::builder()
            .num_reads(12)
            .sweeps(80)
            .seed(3)
            .adaptive(true)
            .early_stop(true)
            .plateau_window(2)
            .build()
            .unwrap();
        let a = solver.solve(&cqm, &[]);
        let b = solver.solve(&cqm, &[]);
        let states_a: Vec<_> = a.samples.iter().map(|s| s.state.clone()).collect();
        let states_b: Vec<_> = b.samples.iter().map(|s| s.state.clone()).collect();
        assert_eq!(
            states_a, states_b,
            "adaptive scheduling must stay deterministic"
        );
        assert_eq!(a.samples.len(), b.samples.len());
    }

    /// A model whose optimum (0.25) sits strictly above the provable
    /// objective lower bound (0), so the lower-bound fast exit can never
    /// fire and plateau behaviour can be tested in isolation.
    fn above_bound_cqm() -> Cqm {
        let mut cqm = Cqm::new(4);
        let mut sum = LinearExpr::new();
        for v in 0..4 {
            sum.add_term(Var(v), 1.0);
        }
        cqm.add_squared_term(sum, 2.5, 1.0);
        cqm
    }

    #[test]
    fn early_stop_never_fires_before_first_wave() {
        let cqm = above_bound_cqm();
        let sink = Arc::new(MemorySink::new());
        // An absurd tolerance makes every wave count as non-improving, so
        // the earliest legal stop — after exactly one wave — must happen.
        let solver = HybridCqmSolver::builder()
            .num_reads(12)
            .sweeps(60)
            .early_stop(true)
            .plateau_window(1)
            .plateau_tolerance(1e12)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        let rec = sink.take().pop().unwrap();
        // Wave 1 establishes the incumbent (that counts as progress, so a
        // stop after it alone is impossible); wave 2 is the first that can
        // register as stagnant. The earliest legal stop is therefore after
        // two waves — never zero or one.
        assert_eq!(rec.waves.len(), 2, "earliest plateau stop is wave 2");
        assert_eq!(rec.termination, "plateau");
        assert!(!set.samples.is_empty(), "at least one wave of samples");
        assert!(set.samples.len() < 12, "early stop must truncate the reads");
        assert_eq!(rec.reads.len(), set.samples.len());
    }

    #[test]
    fn adaptive_trace_records_allocation_and_termination() {
        let cqm = partition_cqm();
        let sink = Arc::new(MemorySink::new());
        // Adaptive without early_stop: the scheduler runs all reads, so
        // every wave (rotation wave 0 plus bandit-planned later waves) is
        // recorded and termination reads "exhausted".
        let solver = HybridCqmSolver::builder()
            .num_reads(9)
            .sweeps(60)
            .seed(11)
            .adaptive(true)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 9);
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.termination, "exhausted");
        assert_eq!(rec.waves.len(), 3, "9 reads / wave of 3 members");
        assert_eq!(rec.waves[0].elite_seeded, 0, "wave 0 has no elites yet");
        for w in &rec.waves {
            let alloc: usize = w.allocation.iter().map(|a| a.reads).sum();
            assert_eq!(alloc, w.reads, "allocation must cover the wave");
        }
        // Later waves draw from the elite pool (fraction 0.5 of 3 ⇒ ≥ 1).
        assert!(rec.waves[1..].iter().any(|w| w.elite_seeded > 0));
    }

    #[test]
    fn fast_exit_on_presolve_trivial_model() {
        // x0 + x1 + x2 ≤ 0 forces every variable to 0: presolve fixes the
        // whole model and the compiled active set is empty.
        let mut cqm = Cqm::new(3);
        let mut sum = LinearExpr::new();
        for v in 0..3 {
            sum.add_term(Var(v), 1.0);
        }
        cqm.add_squared_term(sum.clone(), 0.0, 1.0);
        cqm.add_constraint(sum, Sense::Le, 0.0, "all_zero");
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(12)
            .sweeps(60)
            .early_stop(true)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.termination, "fast-exit");
        assert_eq!(rec.waves.len(), 1, "one mandatory wave, then fast exit");
        assert!(set.samples.len() < 12);
        let best = set.best_feasible().unwrap();
        assert_eq!(best.objective, 0.0);
        assert_eq!(best.state, vec![0, 0, 0]);
    }

    #[test]
    fn time_limited_trace_records_waves() {
        let cqm = partition_cqm();
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(64)
            .sweeps(100)
            .time_limit(Duration::from_millis(1))
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.reads.len(), set.samples.len());
        assert!(!rec.waves.is_empty());
        let wave_reads: usize = rec.waves.iter().map(|w| w.reads).sum();
        assert_eq!(wave_reads, set.samples.len());
        for (i, w) in rec.waves.iter().enumerate() {
            assert_eq!(w.wave, i);
        }
    }

    #[test]
    fn time_limit_zero_still_runs_exactly_one_wave() {
        // The at-least-one-wave guarantee at its extreme: a zero budget is
        // exhausted before the solve starts, yet the first wave must run.
        let cqm = partition_cqm();
        let sink = Arc::new(MemorySink::new());
        let requested = 2048;
        let solver = HybridCqmSolver::builder()
            .num_reads(requested)
            .sweeps(10)
            .time_limit(Duration::ZERO)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.termination, "time-limit");
        assert_eq!(
            rec.waves.len(),
            1,
            "zero budget allows only the mandatory wave"
        );
        assert!(!set.samples.is_empty(), "at least one genuine sample");
        assert!(
            set.samples.len() <= requested,
            "reads must never exceed num_reads"
        );
        assert!(
            set.samples.len() < requested,
            "one wave is a thread-count batch, far below 2048 reads"
        );
        assert_eq!(rec.reads.len(), set.samples.len());
        assert!(rec.reads.len() <= rec.requested_reads);
    }

    #[test]
    fn time_limit_termination_is_recorded_in_a_valid_manifest() {
        use qlrb_telemetry::{CaseTrace, ConfigSnapshot, MethodTrace, RunManifest};
        let cqm = partition_cqm();
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(64)
            .sweeps(10)
            .time_limit(Duration::ZERO)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        solver.solve(&cqm, &[]);
        let rec = sink.take().pop().unwrap();
        let mut manifest = RunManifest::new(
            "hybrid-test",
            ConfigSnapshot {
                solver: Some(solver.config()),
                ..Default::default()
            },
        );
        manifest.cases.push(CaseTrace {
            label: "partition".into(),
            methods: vec![MethodTrace {
                method: "Q_CQM1".into(),
                solve: rec,
            }],
            sim: None,
        });
        manifest.finalize();
        manifest
            .validate()
            .expect("time-limited trace is well-formed");
        let json = manifest.to_json_pretty();
        assert!(json.contains("\"time-limit\""));
        let back = RunManifest::from_json(&json).unwrap();
        assert_eq!(back.cases[0].methods[0].solve.termination, "time-limit");
    }

    #[test]
    fn fault_free_solves_are_byte_identical_to_legacy() {
        // The acceptance criterion: the backend abstraction, an inert fault
        // plan, and any retry budget must not perturb the sample stream of
        // a solve whose first attempts all succeed.
        let cqm = partition_cqm();
        let base = HybridCqmSolver::builder()
            .num_reads(6)
            .sweeps(100)
            .seed(77)
            .build()
            .unwrap();
        let empty_plan = base
            .to_builder()
            .fault_plan(FaultPlan::default())
            .build()
            .unwrap();
        let big_budget = base
            .to_builder()
            .max_retries(9)
            .read_deadline_proposals(1_000_000)
            .build()
            .unwrap();
        let fingerprint = |set: &SampleSet| {
            set.samples
                .iter()
                .map(|s| (s.state.clone(), s.objective.to_bits(), s.feasible))
                .collect::<Vec<_>>()
        };
        let reference = fingerprint(&base.solve(&cqm, &[]));
        assert_eq!(reference, fingerprint(&empty_plan.solve(&cqm, &[])));
        assert_eq!(reference, fingerprint(&big_budget.solve(&cqm, &[])));
    }

    #[test]
    fn transient_fault_recovers_with_retry() {
        let cqm = partition_cqm();
        let plan = FaultPlan::from_json(r#"[{"fail_attempts": 1, "kind": "transient"}]"#).unwrap();
        let build = || {
            let sink = Arc::new(MemorySink::new());
            let solver = HybridCqmSolver::builder()
                .num_reads(4)
                .sweeps(80)
                .seed(9)
                .fault_plan(plan.clone())
                .max_retries(2)
                .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
                .build()
                .unwrap();
            (solver, sink)
        };
        let (solver, sink) = build();
        let set = solver.solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 4, "every read recovers on retry");
        let rec = sink.take().pop().unwrap();
        assert!(rec.failed_reads.is_empty());
        assert_eq!(rec.termination, "exhausted");
        for r in &rec.reads {
            assert_eq!(r.attempts, 2, "first attempt faults, second succeeds");
            assert_eq!(r.faults.len(), 1);
            assert_eq!(r.faults[0].attempt, 0);
            assert!(r.faults[0].error.contains("transient"));
            assert!(r.backoff_proposals > 0, "retry charged a backoff");
        }
        // Determinism under faults: an identical faulty run reproduces the
        // exact sample states.
        let (again, _) = build();
        let states = |s: &SampleSet| {
            s.samples
                .iter()
                .map(|x| x.state.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(states(&set), states(&again.solve(&cqm, &[])));
    }

    #[test]
    fn all_crash_plan_returns_seed_incumbent_with_backend_exhausted() {
        let cqm = partition_cqm();
        let seed_state = vec![1u8, 0, 0, 1, 0, 0]; // optimum: {3,2} vs rest
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(4)
            .sweeps(60)
            .seed(3)
            .fault_plan(FaultPlan::permanent(FaultKind::Crash))
            .max_retries(1)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, std::slice::from_ref(&seed_state));
        let best = set.best_feasible().expect("the seed incumbent survives");
        assert_eq!(best.state, seed_state);
        assert_eq!(best.objective, 0.0);
        assert_eq!(
            set.timing.qpu,
            Duration::ZERO,
            "no sampler ran, no QPU charge"
        );
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.termination, "backend-exhausted");
        assert!(rec.reads.is_empty(), "no read completed");
        assert_eq!(
            rec.failed_reads.len(),
            4,
            "every read exhausted its retries"
        );
        for f in &rec.failed_reads {
            assert_eq!(f.faults.len(), 2, "initial attempt + one retry");
            assert!(f.faults.iter().all(|x| x.error.contains("crashed")));
        }
    }

    #[test]
    fn all_crash_without_seeds_still_returns_a_sample() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver::builder()
            .num_reads(3)
            .sweeps(60)
            .fault_plan(FaultPlan::permanent(FaultKind::Malformed))
            .max_retries(0)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        assert!(
            !set.samples.is_empty(),
            "degradation must not return nothing"
        );
        assert_eq!(set.samples[0].state.len(), cqm.num_vars());
        // The zero state is rescored honestly against the original CQM.
        assert_eq!(
            set.samples[0].objective,
            cqm.objective(&set.samples[0].state)
        );
    }

    #[test]
    fn adaptive_all_crash_stops_waves_early() {
        let cqm = partition_cqm();
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(12)
            .sweeps(60)
            .adaptive(true)
            .fault_plan(FaultPlan::permanent(FaultKind::Crash))
            .max_retries(0)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        assert!(!set.samples.is_empty(), "fallback sample still returned");
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.termination, "backend-exhausted");
        assert!(
            rec.failed_reads.len() < 12,
            "the scheduler must stop before burning the whole read budget, \
             failed {}",
            rec.failed_reads.len()
        );
        assert_eq!(
            rec.failed_reads.len(),
            6,
            "two three-member waves kill the portfolio"
        );
    }

    #[test]
    fn dead_sampler_reads_are_reapportioned_to_survivors() {
        let cqm = partition_cqm();
        let plan = FaultPlan::from_json(r#"[{"sampler": "SQA", "kind": "crash"}]"#).unwrap();
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(12)
            .sweeps(60)
            .seed(3)
            .adaptive(true)
            .fault_plan(plan)
            .max_retries(0)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        assert!(set.best_feasible().is_some(), "survivors still solve it");
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.termination, "exhausted", "the solve runs to completion");
        assert!(
            rec.failed_reads.iter().all(|f| f.sampler == "SQA"),
            "only the faulty member fails"
        );
        assert!(
            !rec.failed_reads.is_empty() && rec.failed_reads.len() <= 4,
            "SQA dies after two consecutive failed waves, got {} failures",
            rec.failed_reads.len()
        );
        assert!(
            rec.reads.iter().all(|r| r.sampler != "SQA"),
            "no SQA read can complete under this plan"
        );
        // Once dead, later waves allocate nothing to SQA.
        let last = rec.waves.last().unwrap();
        assert!(last.allocation.iter().all(|a| a.sampler != "SQA"));
        // Launched reads (completed + failed) still respect the budget.
        assert!(rec.reads.len() + rec.failed_reads.len() <= 12);
        assert_eq!(set.samples.len(), rec.reads.len());
    }

    #[test]
    fn read_deadline_cuts_retries_short() {
        let cqm = partition_cqm();
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(2)
            .sweeps(60)
            .fault_plan(FaultPlan::permanent(FaultKind::Timeout))
            .max_retries(5)
            // One proposal of budget: the first attempt always runs, but no
            // retry (backoff + attempt cost) can ever fit.
            .read_deadline_proposals(1)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        solver.solve(&cqm, &[]);
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.termination, "backend-exhausted");
        for f in &rec.failed_reads {
            assert_eq!(
                f.faults.len(),
                1,
                "deadline admits only the mandatory first attempt"
            );
            assert!(f.faults[0].error.contains("timed out"));
        }
    }

    #[test]
    fn per_read_fault_only_fails_that_read() {
        let cqm = partition_cqm();
        let plan = FaultPlan::from_json(r#"[{"read": 0, "kind": "timeout"}]"#).unwrap();
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(4)
            .sweeps(60)
            .fault_plan(plan)
            .max_retries(1)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 3);
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.failed_reads.len(), 1);
        assert_eq!(rec.failed_reads[0].read, 0);
        assert_eq!(rec.termination, "exhausted");
        assert!(rec.reads.iter().all(|r| r.read != 0));
        assert!(rec
            .reads
            .iter()
            .all(|r| r.attempts == 1 && r.faults.is_empty()));
    }

    #[test]
    fn config_snapshot_records_fault_tolerance_fields() {
        let solver = HybridCqmSolver::builder()
            .fault_plan(FaultPlan::default())
            .max_retries(7)
            .read_deadline_proposals(42)
            .build()
            .unwrap();
        let cfg = solver.config();
        assert_eq!(cfg.max_retries, 7);
        assert_eq!(cfg.read_deadline_proposals, Some(42));
        assert_eq!(cfg.backend, "fault-injection");
        assert_eq!(HybridCqmSolver::default().config().backend, "in-process");
    }

    #[test]
    fn config_snapshot_records_batched_kernel_fields() {
        let scalar = HybridCqmSolver::default().config();
        assert!(!scalar.batched);
        assert_eq!(scalar.batch_width, 1);
        assert_eq!(scalar.kernel, "scalar");
        let batched = HybridCqmSolver::builder()
            .batched(true)
            .build()
            .unwrap()
            .config();
        assert!(batched.batched);
        assert_eq!(batched.batch_width, MAX_LANES);
        assert_eq!(batched.kernel, "batched");
    }

    #[test]
    fn builder_rejects_a_zero_read_deadline() {
        // A zero deadline is already expired: every retry would be skipped
        // (dead-on-arrival reads) and speculation would race a duplicate of
        // every read. `None` is the supported "no deadline" spelling.
        let err = HybridCqmSolver::builder()
            .read_deadline_proposals(0)
            .build()
            .unwrap_err();
        assert_eq!(err, SolverBuildError::ZeroReadDeadline);
        assert!(err.to_string().contains("at least 1"));
        assert!(HybridCqmSolver::builder()
            .read_deadline_proposals(1)
            .build()
            .is_ok());
        assert!(HybridCqmSolver::builder()
            .read_deadline_proposals(None)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_batched_replicas_over_lane_count() {
        let err = HybridCqmSolver::builder()
            .batched(true)
            .sqa_replicas(65)
            .build()
            .unwrap_err();
        assert_eq!(err, SolverBuildError::BatchedReplicasExceedLanes);
        assert!(err.to_string().contains("64"));
        // The same replica count is fine on the scalar path.
        assert!(HybridCqmSolver::builder().sqa_replicas(65).build().is_ok());
    }

    #[test]
    fn batched_solve_finds_feasible_optimum() {
        let cqm = partition_cqm();
        let solver = HybridCqmSolver::builder()
            .num_reads(6)
            .sweeps(300)
            .batched(true)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        let best = set.best_feasible().expect("a feasible sample");
        assert_eq!(best.objective, 0.0, "perfect split exists");
        assert!(
            set.timing.qpu > Duration::ZERO,
            "portfolio includes SQA reads"
        );
    }

    #[test]
    fn batched_solve_is_deterministic_across_repeats() {
        let cqm = partition_cqm();
        let build = || {
            HybridCqmSolver::builder()
                .num_reads(8)
                .sweeps(120)
                .seed(41)
                .batched(true)
                .build()
                .unwrap()
        };
        let fingerprint = |set: &SampleSet| {
            set.samples
                .iter()
                .map(|s| (s.state.clone(), s.objective.to_bits(), s.feasible))
                .collect::<Vec<_>>()
        };
        let a = fingerprint(&build().solve(&cqm, &[]));
        let b = fingerprint(&build().solve(&cqm, &[]));
        assert_eq!(a, b, "batched solves must be byte-for-byte reproducible");
    }

    #[test]
    fn batched_solve_is_deterministic_under_fault_plans() {
        let cqm = partition_cqm();
        let plan = FaultPlan::from_json(r#"[{"fail_attempts": 1, "kind": "transient"}]"#).unwrap();
        let build = || {
            let sink = Arc::new(MemorySink::new());
            let solver = HybridCqmSolver::builder()
                .num_reads(4)
                .sweeps(80)
                .seed(9)
                .batched(true)
                .fault_plan(plan.clone())
                .max_retries(2)
                .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
                .build()
                .unwrap();
            (solver, sink)
        };
        let (solver, sink) = build();
        let set = solver.solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 4, "every read recovers on retry");
        let rec = sink.take().pop().unwrap();
        assert!(rec.failed_reads.is_empty());
        for r in &rec.reads {
            assert_eq!(r.attempts, 2, "first attempt faults, second succeeds");
            assert_eq!(r.faults.len(), 1);
            assert_eq!(r.faults[0].attempt, 0);
            assert!(r.backoff_proposals > 0, "retry charged a backoff");
        }
        let (again, _) = build();
        let states = |s: &SampleSet| {
            s.samples
                .iter()
                .map(|x| x.state.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(states(&set), states(&again.solve(&cqm, &[])));
    }

    #[test]
    fn batched_crash_plan_exhausts_reads_like_scalar() {
        let cqm = partition_cqm();
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(4)
            .sweeps(60)
            .seed(3)
            .batched(true)
            .fault_plan(FaultPlan::permanent(FaultKind::Crash))
            .max_retries(1)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let seed_state = vec![1u8, 0, 0, 1, 0, 0];
        let set = solver.solve(&cqm, std::slice::from_ref(&seed_state));
        assert_eq!(set.best_feasible().unwrap().state, seed_state);
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.termination, "backend-exhausted");
        assert_eq!(rec.failed_reads.len(), 4);
        for f in &rec.failed_reads {
            assert_eq!(f.faults.len(), 2, "initial attempt + one retry");
        }
    }

    #[test]
    fn batched_seeded_read_keeps_good_seed() {
        let cqm = partition_cqm();
        let seed_state = vec![1u8, 0, 0, 1, 0, 0];
        let solver = HybridCqmSolver::builder()
            .num_reads(2)
            .sweeps(50)
            .batched(true)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, std::slice::from_ref(&seed_state));
        assert_eq!(set.best_feasible().unwrap().objective, 0.0);
    }

    #[test]
    fn batched_adaptive_solve_converges_and_records_waves() {
        let cqm = partition_cqm();
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(12)
            .sweeps(120)
            .seed(5)
            .batched(true)
            .adaptive(true)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        assert_eq!(set.best_feasible().unwrap().objective, 0.0);
        let rec = sink.take().pop().unwrap();
        assert!(!rec.waves.is_empty(), "adaptive path records waves");
        assert!(!rec.reads.is_empty());
    }

    // ---- backend federation ------------------------------------------------

    use crate::backend::{BackendId, BackendPool, BackendProfile, ReliabilityClass};
    use crate::backend::{InProcessBackend, ProfiledBackend};

    /// A fast/strong/qpu pool; `qpu_plan` drives the flaky member's inner
    /// fault injection (an empty plan makes it healthy).
    fn heterogeneous_pool(qpu_plan: FaultPlan) -> BackendPool {
        let fast = ProfiledBackend::new(
            BackendId::from_static("fast"),
            BackendProfile::default(),
            Arc::new(InProcessBackend),
        );
        let strong = ProfiledBackend::new(
            BackendId::from_static("strong"),
            BackendProfile {
                latency_per_proposal: 4,
                cost_per_read: 3.0,
                reliability: ReliabilityClass::BestEffort,
                deadline_proposals: None,
            },
            Arc::new(InProcessBackend),
        );
        let qpu = ProfiledBackend::new(
            BackendId::from_static("qpu"),
            BackendProfile {
                latency_per_proposal: 2,
                cost_per_read: 5.0,
                reliability: ReliabilityClass::Flaky,
                deadline_proposals: None,
            },
            Arc::new(FaultInjectingBackend::new(qpu_plan)),
        );
        BackendPool::new(vec![Arc::new(fast), Arc::new(strong), Arc::new(qpu)])
    }

    #[test]
    fn builder_rejects_empty_pool_and_duplicate_ids() {
        let err = HybridCqmSolver::builder()
            .backends(BackendPool::new(Vec::new()))
            .build()
            .unwrap_err();
        assert_eq!(err, SolverBuildError::EmptyBackendPool);
        assert!(err.to_string().contains("at least one member"));
        let twins = BackendPool::new(vec![
            Arc::new(InProcessBackend) as Arc<dyn Backend>,
            Arc::new(InProcessBackend) as Arc<dyn Backend>,
        ]);
        let err = HybridCqmSolver::builder()
            .backends(twins)
            .build()
            .unwrap_err();
        assert_eq!(err, SolverBuildError::DuplicateBackendId);
        assert!(err.to_string().contains("distinct ids"));
    }

    #[test]
    fn single_backend_shim_and_one_member_pool_stay_byte_identical() {
        // The `backend(...)` shim and an explicit one-member `backends(...)`
        // pool (even with speculation requested — a no-op without a second
        // member) must reproduce the default solver's sample stream exactly.
        let cqm = partition_cqm();
        let base = HybridCqmSolver::builder()
            .num_reads(6)
            .sweeps(100)
            .seed(77)
            .build()
            .unwrap();
        let shim = base
            .to_builder()
            .backend(Arc::new(InProcessBackend))
            .build()
            .unwrap();
        let pooled = base
            .to_builder()
            .backends(BackendPool::single(Arc::new(InProcessBackend)))
            .speculate(true)
            .build()
            .unwrap();
        let fingerprint = |set: &SampleSet| {
            set.samples
                .iter()
                .map(|s| (s.state.clone(), s.objective.to_bits(), s.feasible))
                .collect::<Vec<_>>()
        };
        let reference = fingerprint(&base.solve(&cqm, &[]));
        assert_eq!(reference, fingerprint(&shim.solve(&cqm, &[])));
        assert_eq!(reference, fingerprint(&pooled.solve(&cqm, &[])));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        #[test]
        fn one_member_pool_matches_legacy_across_seeds(
            seed in proptest::prelude::any::<u64>(),
            reads in 1usize..5,
        ) {
            let cqm = partition_cqm();
            let legacy = HybridCqmSolver::builder()
                .num_reads(reads)
                .sweeps(40)
                .seed(seed)
                .build()
                .unwrap();
            let pooled = legacy
                .to_builder()
                .backends(BackendPool::single(Arc::new(InProcessBackend)))
                .build()
                .unwrap();
            let fingerprint = |set: &SampleSet| {
                set.samples
                    .iter()
                    .map(|s| (s.state.clone(), s.objective.to_bits(), s.feasible))
                    .collect::<Vec<_>>()
            };
            proptest::prop_assert_eq!(
                fingerprint(&legacy.solve(&cqm, &[])),
                fingerprint(&pooled.solve(&cqm, &[]))
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// `config()` → `to_builder()` → `build()` → `config()` must be the
        /// identity for every schema-v7/v8 field — the server snapshots a
        /// request's configuration this way, so a field the round trip drops
        /// would silently vanish from every service-side manifest.
        #[test]
        fn config_snapshot_round_trips_every_builder_field(
            num_reads in 1usize..9,
            sweeps in 1usize..500,
            sqa_replicas in 2usize..16,
            seed in proptest::prelude::any::<u64>(),
            penalty_factor in 1.0f64..8.0,
            style_unbalanced in proptest::prelude::any::<bool>(),
            sampler_mask in 1usize..16,
            tabu_max_vars in 1usize..40_000,
            polish_sweeps in 0usize..100,
            repair_steps in 0usize..10_000,
            time_limit_ms in proptest::option::of(1u64..60_000),
            lint_idx in 0usize..3,
            adaptive in proptest::prelude::any::<bool>(),
            early_stop in proptest::prelude::any::<bool>(),
            wave_size in 0usize..8,
            plateau_window in 1usize..6,
            plateau_tolerance in 0.0f64..0.2,
            elite_capacity in 0usize..16,
            elite_fraction in 0.0f64..1.0,
            max_retries in 0u32..5,
            read_deadline in proptest::option::of(1u64..100_000),
            speculate in proptest::prelude::any::<bool>(),
            batched in proptest::prelude::any::<bool>(),
            decompose in proptest::prelude::any::<bool>(),
            pool_size in 1usize..4,
        ) {
            let all = [SamplerKind::Sa, SamplerKind::Sqa, SamplerKind::Tabu, SamplerKind::Pt];
            let samplers: Vec<SamplerKind> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| sampler_mask & (1 << i) != 0)
                .map(|(_, &s)| s)
                .collect();
            let style = if style_unbalanced {
                PenaltyStyle::Unbalanced { l1: 0.5, l2: 1.5 }
            } else {
                PenaltyStyle::ViolationQuadratic
            };
            let lint = [LintMode::Deny, LintMode::Warn, LintMode::Off][lint_idx];
            let members: Vec<Arc<dyn Backend>> = ["fast", "strong", "qpu"][..pool_size]
                .iter()
                .map(|name| {
                    Arc::new(ProfiledBackend::new(
                        BackendId::new(name),
                        BackendProfile::default(),
                        Arc::new(InProcessBackend),
                    )) as Arc<dyn Backend>
                })
                .collect();
            let solver = HybridCqmSolver::builder()
                .num_reads(num_reads)
                .sweeps(sweeps)
                .sqa_replicas(sqa_replicas)
                .seed(seed)
                .penalty_factor(penalty_factor)
                .style(style)
                .samplers(samplers.clone())
                .tabu_max_vars(tabu_max_vars)
                .polish_sweeps(polish_sweeps)
                .repair_steps(repair_steps)
                .time_limit(time_limit_ms.map(Duration::from_millis))
                .lint(lint)
                .adaptive(adaptive)
                .early_stop(early_stop)
                .wave_size(wave_size)
                .plateau_window(plateau_window)
                .plateau_tolerance(plateau_tolerance)
                .elite_capacity(elite_capacity)
                .elite_fraction(elite_fraction)
                .max_retries(max_retries)
                .read_deadline_proposals(read_deadline)
                .speculate(speculate)
                .batched(batched)
                .decompose(decompose)
                .backends(BackendPool::new(members))
                .build()
                .unwrap();

            // Every builder input must surface in the snapshot...
            let cfg = solver.config();
            proptest::prop_assert_eq!(cfg.num_reads, num_reads);
            proptest::prop_assert_eq!(cfg.sweeps, sweeps);
            proptest::prop_assert_eq!(cfg.sqa_replicas, sqa_replicas);
            proptest::prop_assert_eq!(cfg.seed, seed);
            proptest::prop_assert_eq!(cfg.penalty_factor, penalty_factor);
            proptest::prop_assert_eq!(&cfg.style, &format!("{style:?}"));
            proptest::prop_assert_eq!(
                &cfg.samplers,
                &samplers.iter().map(|s| s.to_string()).collect::<Vec<_>>()
            );
            proptest::prop_assert_eq!(cfg.tabu_max_vars, tabu_max_vars);
            proptest::prop_assert_eq!(cfg.polish_sweeps, polish_sweeps);
            proptest::prop_assert_eq!(cfg.repair_steps, repair_steps);
            proptest::prop_assert_eq!(
                cfg.time_limit_ms,
                time_limit_ms.map(|ms| ms as f64)
            );
            proptest::prop_assert_eq!(&cfg.lint, &lint.to_string());
            proptest::prop_assert_eq!(cfg.adaptive, adaptive);
            proptest::prop_assert_eq!(cfg.early_stop, early_stop);
            proptest::prop_assert_eq!(cfg.wave_size, wave_size);
            proptest::prop_assert_eq!(cfg.plateau_window, plateau_window);
            proptest::prop_assert_eq!(cfg.plateau_tolerance, plateau_tolerance);
            proptest::prop_assert_eq!(cfg.elite_capacity, elite_capacity);
            proptest::prop_assert_eq!(cfg.elite_fraction, elite_fraction);
            proptest::prop_assert_eq!(cfg.max_retries, max_retries);
            proptest::prop_assert_eq!(cfg.read_deadline_proposals, read_deadline);
            proptest::prop_assert_eq!(&cfg.backend, "fast");
            proptest::prop_assert_eq!(
                &cfg.backends,
                &["fast", "strong", "qpu"][..pool_size]
            );
            proptest::prop_assert_eq!(cfg.speculate, speculate);
            proptest::prop_assert_eq!(cfg.batched, batched);
            proptest::prop_assert_eq!(cfg.decompose, decompose);
            proptest::prop_assert_eq!(cfg.batch_width, solver.batch_width());
            proptest::prop_assert_eq!(
                &cfg.kernel,
                if batched { "batched" } else { "scalar" }
            );

            // ...and survive the snapshot → builder → snapshot round trip
            // byte-for-byte (the server's config-echo path).
            let rebuilt = solver.to_builder().build().unwrap();
            proptest::prop_assert_eq!(rebuilt.config(), solver.config());
        }
    }

    #[test]
    fn federated_pool_round_robins_reads_and_accounts_per_backend() {
        let cqm = partition_cqm();
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(9)
            .sweeps(60)
            .seed(11)
            .backends(heterogeneous_pool(FaultPlan::default()))
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let cfg = solver.config();
        assert_eq!(
            cfg.backend, "fast",
            "first member doubles as the legacy field"
        );
        assert_eq!(cfg.backends, vec!["fast", "strong", "qpu"]);
        assert!(!cfg.speculate);
        let set = solver.solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 9);
        let rec = sink.take().pop().unwrap();
        assert_eq!(rec.backend_usage.len(), 3);
        let total: usize = rec.backend_usage.iter().map(|u| u.reads).sum();
        assert_eq!(total, rec.reads.len());
        for u in &rec.backend_usage {
            // 3 samplers × 3 backends: the rotation hands each member 3
            // reads, exactly one of which is SQA.
            assert_eq!(u.reads, 3, "{} got an uneven share", u.backend);
            assert_eq!(u.failed_attempts, 0);
            assert_eq!(u.speculative, 0);
            assert_eq!(u.cancelled, 0);
            assert_eq!(u.qpu_ms, 4.0, "{} serves one SQA read", u.backend);
        }
        let cost_of = |name: &str| {
            rec.backend_usage
                .iter()
                .find(|u| u.backend == name)
                .map(|u| u.cost)
                .unwrap()
        };
        assert_eq!(cost_of("fast"), 3.0, "3 reads × unit cost");
        assert_eq!(cost_of("strong"), 9.0, "3 reads × cost 3");
        assert_eq!(cost_of("qpu"), 15.0, "3 reads × cost 5");
    }

    #[test]
    fn retries_rotate_to_the_next_pool_member() {
        let cqm = partition_cqm();
        let plan = FaultPlan::from_json(r#"[{"backend": "flaky", "kind": "crash"}]"#).unwrap();
        let flaky = ProfiledBackend::new(
            BackendId::from_static("flaky"),
            BackendProfile::default(),
            Arc::new(FaultInjectingBackend::new(plan)),
        );
        let good = ProfiledBackend::new(
            BackendId::from_static("good"),
            BackendProfile::default(),
            Arc::new(InProcessBackend),
        );
        let sink = Arc::new(MemorySink::new());
        let solver = HybridCqmSolver::builder()
            .num_reads(6)
            .sweeps(60)
            .seed(5)
            .backends(BackendPool::new(vec![Arc::new(good), Arc::new(flaky)]))
            .max_retries(1)
            .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build()
            .unwrap();
        let set = solver.solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 6, "every flaky-first read recovers");
        let rec = sink.take().pop().unwrap();
        assert!(rec.failed_reads.is_empty());
        // 3 samplers × 2 backends: reads 3..6 start on the permanently
        // crashing member and must recover on `good` at attempt 1.
        let recovered: Vec<_> = rec.reads.iter().filter(|r| r.attempts == 2).collect();
        assert_eq!(recovered.len(), 3);
        for r in &recovered {
            assert_eq!(r.backend, "good");
            assert_eq!(r.faults.len(), 1);
            assert_eq!(r.faults[0].backend, "flaky");
            assert!(r.faults[0].error.contains("crashed"));
        }
        let usage_of = |name: &str| {
            rec.backend_usage
                .iter()
                .find(|u| u.backend == name)
                .cloned()
                .unwrap()
        };
        assert_eq!(usage_of("good").reads, 6);
        assert_eq!(usage_of("flaky").reads, 0);
        assert_eq!(usage_of("flaky").failed_attempts, 3);
        assert_eq!(
            usage_of("flaky").cost,
            0.0,
            "failed attempts charge nothing"
        );
    }

    #[test]
    fn speculative_racing_is_deterministic_and_charges_only_the_winner() {
        let cqm = partition_cqm();
        let plan = FaultPlan::from_json(r#"[{"backend": "qpu", "kind": "timeout"}]"#).unwrap();
        let build = || {
            let sink = Arc::new(MemorySink::new());
            let solver = HybridCqmSolver::builder()
                .num_reads(9)
                .sweeps(60)
                .seed(21)
                .backends(heterogeneous_pool(plan.clone()))
                .speculate(true)
                .sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
                .build()
                .unwrap();
            (solver, sink)
        };
        let (solver, sink) = build();
        assert!(solver.config().speculate);
        let set = solver.solve(&cqm, &[]);
        assert_eq!(set.samples.len(), 9, "stragglers recover via speculation");
        let rec = sink.take().pop().unwrap();
        assert!(rec.failed_reads.is_empty());
        // Reads whose primary is the timing-out `qpu` member are hedged on
        // the next member (`fast`) at the same attempt: no retry, one
        // recorded timeout fault, the loser cancelled.
        let hedged: Vec<_> = rec.reads.iter().filter(|r| r.speculated).collect();
        assert_eq!(hedged.len(), 3);
        for r in &hedged {
            assert_eq!(r.backend, "fast");
            assert_eq!(r.attempts, 1, "the hedge races the same attempt");
            assert_eq!(r.cancelled_backend.as_deref(), Some("qpu"));
            assert_eq!(r.faults.len(), 1);
            assert_eq!(r.faults[0].backend, "qpu");
            assert!(r.faults[0].error.contains("timed out"));
        }
        let usage_of = |name: &str| {
            rec.backend_usage
                .iter()
                .find(|u| u.backend == name)
                .cloned()
                .unwrap()
        };
        let qpu = usage_of("qpu");
        assert_eq!(qpu.reads, 0, "every qpu attempt was cancelled");
        assert_eq!(qpu.cancelled, 3);
        assert_eq!(qpu.failed_attempts, 3);
        assert_eq!(qpu.cost, 0.0, "no phantom charge for cancelled attempts");
        assert_eq!(qpu.qpu_ms, 0.0);
        let fast = usage_of("fast");
        assert_eq!(fast.reads, 6, "3 rotation reads + 3 speculative wins");
        assert_eq!(fast.speculative, 3);
        assert!(fast.cost > 0.0);
        // Byte-determinism across repeats, including the dispatch metadata.
        let (again, sink2) = build();
        let set2 = again.solve(&cqm, &[]);
        let states = |s: &SampleSet| {
            s.samples
                .iter()
                .map(|x| x.state.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(states(&set), states(&set2));
        let rec2 = sink2.take().pop().unwrap();
        let dispatch = |r: &SolveRecord| {
            r.reads
                .iter()
                .map(|x| {
                    (
                        x.read,
                        x.backend.clone(),
                        x.speculated,
                        x.cancelled_backend.clone(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(dispatch(&rec), dispatch(&rec2));
    }
}
