//! Simulated quantum annealing (path-integral Monte Carlo).
//!
//! Quantum annealing hardware evolves the transverse-field Ising Hamiltonian
//! `H(t) = −Γ(t)·Σ σᵢˣ + H_problem`. Its standard classical simulation is
//! path-integral Monte Carlo over the Suzuki–Trotter decomposition: `P`
//! replicas ("imaginary-time slices") of the classical state, each feeling
//! `H_problem / P`, with neighbouring slices ferromagnetically coupled by
//!
//! ```text
//! J⊥(Γ) = −(P·T / 2) · ln tanh( Γ / (P·T) )       (T = 1/β)
//! ```
//!
//! As `Γ` decays the coupling stiffens and the replicas collapse onto a
//! single classical configuration; quantum tunnelling shows up as replicas
//! disagreeing mid-anneal. The routine works over any cloneable
//! [`Evaluator`], so it anneals the structured CQM energy directly without
//! materializing a QUBO.
//!
//! # Parallel sweep structure
//!
//! Replica sweeps run in parallel over rayon using a checkerboard (parity)
//! decomposition of the Trotter ring: even-index slices only couple to
//! odd-index neighbours and vice versa, so each parity class updates
//! concurrently against a snapshot of its neighbours' spins taken at phase
//! start (for odd `P` the last slice forms a third, singleton phase to keep
//! the ring conflict-free). Each slice owns a private `ChaCha8` stream
//! derived from the caller's RNG, so the result is identical for a given
//! seed regardless of thread count or scheduling. Initial-state
//! perturbation, the transverse-field schedule, and global (all-replica)
//! moves remain on the caller's RNG, serially.

use qlrb_model::eval::Evaluator;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::sa::AnnealResult;
use crate::schedule::TransverseSchedule;

/// SQA parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqaParams {
    /// Number of Trotter replicas `P` (≥ 2).
    pub replicas: usize,
    /// Monte-Carlo sweeps (each proposes every (variable, replica) pair).
    pub sweeps: usize,
    /// Fixed inverse temperature `β` of the quantum bath.
    pub beta: f64,
    /// Transverse-field schedule (strong → weak).
    pub transverse: TransverseSchedule,
    /// Fraction of variables tried as *global* (all-replica) moves per sweep;
    /// global moves cross energy barriers that single-slice moves cannot.
    pub global_move_fraction: f64,
    /// Replica caches resync every this many sweeps.
    pub resync_interval: usize,
}

impl Default for SqaParams {
    fn default() -> Self {
        Self {
            replicas: 12,
            sweeps: 500,
            beta: 10.0,
            transverse: TransverseSchedule {
                gamma0: 3.0,
                gamma1: 1e-3,
            },
            global_move_fraction: 0.1,
            resync_interval: 128,
        }
    }
}

#[inline]
fn spin(x: u8) -> f64 {
    if x != 0 {
        1.0
    } else {
        -1.0
    }
}

/// Runs SQA starting every replica from `proto`'s current state (replicas
/// beyond the first receive a small random perturbation to decorrelate the
/// initial world lines).
///
/// Returns the best *classical* (single-replica) state encountered, judged by
/// the evaluator's full energy.
pub fn simulated_quantum_annealing<E: Evaluator + Clone>(
    proto: &E,
    params: &SqaParams,
    rng: &mut impl Rng,
) -> AnnealResult {
    let n = proto.num_vars();
    let p = params.replicas.max(2);
    let mut best_state = proto.state().to_vec();
    let mut best_energy = proto.energy();
    let mut accepted = 0u64;
    if n == 0 || params.sweeps == 0 {
        return AnnealResult {
            state: best_state,
            energy: best_energy,
            accepted,
        };
    }

    // One worker per Trotter slice: the evaluator, a private RNG stream,
    // and a local acceptance counter.
    struct Slice<E> {
        ev: E,
        rng: ChaCha8Rng,
        accepted: u64,
    }

    // Proposals (sweep order, perturbations, global moves) draw from the
    // active set only: presolve-fixed variables carry zero incidence and
    // would burn sweep moves without ever moving the energy.
    let active: Vec<usize> = match proto.active_vars() {
        Some(active) => active.to_vec(),
        None => (0..n).collect(),
    };
    if active.is_empty() {
        return AnnealResult {
            state: best_state,
            energy: best_energy,
            accepted,
        };
    }
    let na = active.len();

    let stream_base = rng.next_u64();
    let mut slices: Vec<Slice<E>> = (0..p)
        .map(|k| Slice {
            ev: proto.clone(),
            rng: ChaCha8Rng::seed_from_u64(
                stream_base ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            accepted: 0,
        })
        .collect();
    for (k, s) in slices.iter_mut().enumerate().skip(1) {
        // ~2% perturbation, at least one flip, per extra replica.
        let flips = (na / 50).max(1).min(na);
        for _ in 0..(flips * k).min(na) {
            let v = active[rng.random_range(0..na)];
            s.ev.flip(v);
        }
    }

    // Checkerboard phases over the Trotter ring: slices within one phase
    // share no ring edge, so they sweep concurrently against neighbour
    // spins frozen at phase start. Even P → {evens, odds}; odd P → the
    // last slice (adjacent to slice 0, also even) gets its own phase.
    let mut phase_of = vec![0u8; p];
    let num_phases: u8 = if p.is_multiple_of(2) { 2 } else { 3 };
    for (k, ph) in phase_of.iter_mut().enumerate() {
        *ph = if !p.is_multiple_of(2) && k == p - 1 {
            2
        } else {
            (k % 2) as u8
        };
    }

    let pf = p as f64;
    let denom = (params.sweeps.saturating_sub(1)).max(1) as f64;
    let mut order: Vec<usize> = active.clone();
    let mut spins: Vec<Vec<u8>> = vec![vec![0u8; n]; p];
    let mut deltas = vec![0.0f64; p];
    for sweep in 0..params.sweeps {
        let t = sweep as f64 / denom;
        let gamma = params.transverse.gamma(t);
        // J⊥ = −(P/(2β)) ln tanh(βΓ/P); clamp the argument away from 0/1.
        let arg = (params.beta * gamma / pf).clamp(1e-12, 30.0);
        let jperp = -(pf / (2.0 * params.beta)) * arg.tanh().ln();

        order.shuffle(rng);
        for phase in 0..num_phases {
            for (snap, s) in spins.iter_mut().zip(&slices) {
                snap.copy_from_slice(s.ev.state());
            }
            let order = &order;
            let spins = &spins;
            slices
                .par_iter_mut()
                .enumerate()
                .filter(|&(k, _)| phase_of[k] == phase)
                .for_each(|(k, slice)| {
                    let prev = &spins[(k + p - 1) % p];
                    let next = &spins[(k + 1) % p];
                    for &v in order {
                        let delta_cl = slice.ev.flip_delta(v);
                        let s = spin(slice.ev.state()[v]);
                        // Coupling energy is −J⊥·s·(s_prev + s_next);
                        // flipping s changes it by +2·J⊥·s·(s_prev + s_next).
                        let delta =
                            delta_cl / pf + 2.0 * jperp * s * (spin(prev[v]) + spin(next[v]));
                        let accept = delta <= 0.0 || {
                            let x = -params.beta * delta;
                            x > -60.0 && slice.rng.random::<f64>() < x.exp()
                        };
                        if accept {
                            slice.ev.flip_known(v, delta_cl);
                            slice.accepted += 1;
                        }
                    }
                });
        }

        // Global (all-replica) moves: coupling-invariant barrier hops.
        let global_moves = ((na as f64) * params.global_move_fraction) as usize;
        for _ in 0..global_moves {
            let v = active[rng.random_range(0..na)];
            for (d, s) in deltas.iter_mut().zip(&slices) {
                *d = s.ev.flip_delta(v);
            }
            let delta: f64 = deltas.iter().sum::<f64>() / pf;
            let accept = delta <= 0.0 || {
                let x = -params.beta * delta;
                x > -60.0 && rng.random::<f64>() < x.exp()
            };
            if accept {
                for (s, &d) in slices.iter_mut().zip(&deltas) {
                    s.ev.flip_known(v, d);
                }
                accepted += 1;
            }
        }

        if params.resync_interval > 0 && (sweep + 1) % params.resync_interval == 0 {
            slices.par_iter_mut().for_each(|s| s.ev.resync());
        }
        for s in &slices {
            if s.ev.energy() < best_energy {
                best_energy = s.ev.energy();
                best_state.clear();
                best_state.extend_from_slice(s.ev.state());
            }
        }
    }
    for s in &mut slices {
        s.ev.resync();
        if s.ev.energy() < best_energy {
            best_energy = s.ev.energy();
            best_state.clear();
            best_state.extend_from_slice(s.ev.state());
        }
    }
    accepted += slices.iter().map(|s| s.accepted).sum::<u64>();
    AnnealResult {
        state: best_state,
        energy: best_energy,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_model::bqm::BinaryQuadraticModel;
    use qlrb_model::eval::BqmEvaluator;
    use qlrb_model::Var;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn frustrated() -> (BinaryQuadraticModel, Vec<u8>) {
        // Deep minimum at all-ones behind a barrier (cf. tabu tests).
        let mut bqm = BinaryQuadraticModel::new(6);
        for i in 0..6u32 {
            bqm.add_linear(Var(i), 1.0);
        }
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                bqm.add_quadratic(Var(i), Var(j), -1.0);
            }
        }
        // E(0…0)=0; E(1…1)=6 − 15 = −9; single flip from zeros costs +1.
        (bqm, vec![1; 6])
    }

    #[test]
    fn tunnels_through_barrier() {
        let (bqm, ground) = frustrated();
        let ground_e = bqm.energy(&ground);
        let ev = BqmEvaluator::new(Arc::new(bqm));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        // Each slice feels H/P, so β must scale with P for the slices to
        // freeze: β = 16 with P = 8 gives an effective classical β of 2.
        let params = SqaParams {
            replicas: 8,
            sweeps: 600,
            beta: 16.0,
            transverse: TransverseSchedule {
                gamma0: 2.0,
                gamma1: 1e-3,
            },
            global_move_fraction: 0.5,
            ..Default::default()
        };
        let res = simulated_quantum_annealing(&ev, &params, &mut rng);
        assert_eq!(res.state, ground);
        assert!((res.energy - ground_e).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let (bqm, _) = frustrated();
        let model = Arc::new(bqm);
        let run = || {
            let ev = BqmEvaluator::new(Arc::clone(&model));
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
            simulated_quantum_annealing(&ev, &SqaParams::default(), &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a.state, b.state);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn zero_sweeps_returns_start() {
        let (bqm, _) = frustrated();
        let ev = BqmEvaluator::new(Arc::new(bqm));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let res = simulated_quantum_annealing(
            &ev,
            &SqaParams {
                sweeps: 0,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(res.state, vec![0; 6]);
    }

    #[test]
    fn result_energy_is_true_energy() {
        let (bqm, _) = frustrated();
        let model = Arc::new(bqm);
        let ev = BqmEvaluator::new(Arc::clone(&model));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(33);
        let res = simulated_quantum_annealing(&ev, &SqaParams::default(), &mut rng);
        assert!((model.energy(&res.state) - res.energy).abs() < 1e-9);
    }
}
