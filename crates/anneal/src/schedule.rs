//! Temperature and transverse-field schedules.

use qlrb_model::eval::Evaluator;
use rand::Rng;

/// An inverse-temperature schedule over normalized time `t ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BetaSchedule {
    /// `β(t) = β₀ · (β₁/β₀)^t` — the standard annealing default.
    Geometric {
        /// Starting (hot) inverse temperature.
        beta0: f64,
        /// Final (cold) inverse temperature.
        beta1: f64,
    },
    /// `β(t) = β₀ + (β₁ − β₀)·t`.
    Linear {
        /// Starting inverse temperature.
        beta0: f64,
        /// Final inverse temperature.
        beta1: f64,
    },
    /// Constant temperature (used for fixed-β SQA sweeps).
    Constant {
        /// The inverse temperature.
        beta: f64,
    },
}

impl BetaSchedule {
    /// Inverse temperature at normalized time `t ∈ [0, 1]`.
    pub fn beta(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        match *self {
            BetaSchedule::Geometric { beta0, beta1 } => beta0 * (beta1 / beta0).powf(t),
            BetaSchedule::Linear { beta0, beta1 } => beta0 + (beta1 - beta0) * t,
            BetaSchedule::Constant { beta } => beta,
        }
    }

    /// Final inverse temperature.
    pub fn final_beta(&self) -> f64 {
        self.beta(1.0)
    }
}

/// Linearly decaying transverse field `Γ(t) = Γ₀ + (Γ₁ − Γ₀)·t` for SQA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransverseSchedule {
    /// Initial (strong) transverse field.
    pub gamma0: f64,
    /// Final (weak) transverse field; must stay > 0 so `ln tanh` is finite.
    pub gamma1: f64,
}

impl TransverseSchedule {
    /// Field strength at normalized time `t ∈ [0, 1]`.
    pub fn gamma(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        (self.gamma0 + (self.gamma1 - self.gamma0) * t).max(1e-12)
    }
}

/// Estimates the typical magnitude of a single-flip energy delta by probing
/// random flips from random states. Used to auto-scale β so schedules are
/// problem-size independent (LRP energies grow like `(n·w)²`).
///
/// Returns a strictly positive scale (1.0 for a totally flat landscape).
pub fn estimate_delta_scale<E: Evaluator>(ev: &mut E, rng: &mut impl Rng, probes: usize) -> f64 {
    let n = ev.num_vars();
    if n == 0 {
        return 1.0;
    }
    let mut acc = 0.0;
    let mut count = 0usize;
    for _ in 0..probes.max(1) {
        let v = rng.random_range(0..n);
        let d = ev.flip_delta(v).abs();
        if d.is_finite() {
            acc += d;
            count += 1;
        }
        // Take a random step so probes see varied neighbourhoods.
        let w = rng.random_range(0..n);
        ev.flip(w);
    }
    let mean = if count > 0 { acc / count as f64 } else { 0.0 };
    if mean > 0.0 {
        mean
    } else {
        1.0
    }
}

/// A geometric schedule auto-scaled to the probed delta scale: starts around
/// 50% uphill acceptance for a typical move and ends effectively frozen.
pub fn auto_geometric(delta_scale: f64) -> BetaSchedule {
    let scale = delta_scale.max(1e-12);
    BetaSchedule::Geometric {
        beta0: std::f64::consts::LN_2 / scale,
        beta1: 60.0 / scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_interpolates_endpoints() {
        let s = BetaSchedule::Geometric {
            beta0: 0.1,
            beta1: 10.0,
        };
        assert!((s.beta(0.0) - 0.1).abs() < 1e-12);
        assert!((s.beta(1.0) - 10.0).abs() < 1e-12);
        assert!((s.beta(0.5) - 1.0).abs() < 1e-9); // geometric midpoint
    }

    #[test]
    fn linear_and_constant() {
        let l = BetaSchedule::Linear {
            beta0: 1.0,
            beta1: 3.0,
        };
        assert_eq!(l.beta(0.5), 2.0);
        let c = BetaSchedule::Constant { beta: 7.0 };
        assert_eq!(c.beta(0.3), 7.0);
        assert_eq!(c.final_beta(), 7.0);
    }

    #[test]
    fn beta_clamps_time() {
        let s = BetaSchedule::Linear {
            beta0: 1.0,
            beta1: 2.0,
        };
        assert_eq!(s.beta(-1.0), 1.0);
        assert_eq!(s.beta(2.0), 2.0);
    }

    #[test]
    fn transverse_stays_positive() {
        let t = TransverseSchedule {
            gamma0: 3.0,
            gamma1: 0.0,
        };
        assert!(t.gamma(1.0) > 0.0);
        assert_eq!(t.gamma(0.0), 3.0);
    }

    #[test]
    fn auto_geometric_orders_betas() {
        let s = auto_geometric(5.0);
        assert!(s.beta(0.0) < s.beta(1.0));
    }
}
