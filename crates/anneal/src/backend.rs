//! Fallible sampler backends: the submission boundary of the hybrid solver.
//!
//! The paper's workflow submits sampling work to a remote service (D-Wave
//! Leap) that can time out, fail transiently, crash, or return garbage.
//! [`Backend`] models that boundary: [`HybridCqmSolver`] hands each read's
//! [`SamplerRun`] to `submit()`, which either returns the sampler's
//! [`AnnealResult`] or a [`SubmitError`] the solver's retry/backoff and
//! degradation machinery reacts to.
//!
//! Since the federation redesign the solver talks to a [`BackendPool`] of
//! heterogeneous members rather than a single backend. Each member carries a
//! typed [`BackendId`] and a declared [`BackendProfile`] — latency per
//! proposal on the solver's virtual clock, cost per read, reliability class,
//! and an optional straggler deadline — which the scheduler's bandit and the
//! speculative-dispatch machinery consume. Three implementations ship:
//!
//! * [`InProcessBackend`] — the default: runs the sampler in-process and
//!   never fails. The solver's legacy behaviour is byte-identical through
//!   this path.
//! * [`FaultInjectingBackend`] — consults a deterministic [`FaultPlan`]
//!   *before* touching the RNG, so an injected fault consumes no entropy
//!   and the surviving attempts draw exactly the stream a clean run would.
//! * [`ProfiledBackend`] — an adaptor giving any inner backend its own
//!   identity and profile, the building block for heterogeneous pools
//!   (a fast-but-weak box, a slow-but-strong box, a flaky "cloud QPU").
//!
//! [`HybridCqmSolver`]: crate::hybrid::HybridCqmSolver

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use qlrb_model::eval::CqmEvaluator;
use qlrb_telemetry::ReadObserver;
use rand_chacha::ChaCha8Rng;

use crate::faults::{FaultKind, FaultPlan};
use crate::hybrid::SamplerKind;
use crate::run::SamplerRun;
use crate::sa::AnnealResult;

/// Why a submission failed. Mirrors the failure taxonomy of a cloud
/// sampler endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The submission exceeded its service-side deadline.
    Timeout,
    /// A transient service error; retrying is expected to help.
    Transient {
        /// The submission attempt (0-based) that observed the error.
        attempt: u32,
    },
    /// The backend process died.
    Crash,
    /// The backend answered with an unusable sample set.
    Malformed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => f.write_str("submission timed out"),
            Self::Transient { attempt } => {
                write!(f, "transient backend failure (attempt {attempt})")
            }
            Self::Crash => f.write_str("backend crashed"),
            Self::Malformed => f.write_str("backend returned a malformed sample set"),
        }
    }
}

impl Error for SubmitError {}

/// Typed identity of a backend: a stable, case-sensitive name the solver
/// threads through [`SubmitRequest`]s, fault plans, and telemetry instead of
/// stringly-typed `&'static str` names.
///
/// Cloning is cheap: built-in ids are static, user ids share an `Arc`.
#[derive(Debug, Clone)]
pub struct BackendId(IdRepr);

#[derive(Debug, Clone)]
enum IdRepr {
    Static(&'static str),
    Shared(Arc<str>),
}

impl BackendId {
    /// An id backed by a static name — allocation-free, usable in `const`
    /// contexts by built-in backends.
    pub const fn from_static(name: &'static str) -> Self {
        Self(IdRepr::Static(name))
    }

    /// An id owning a copy of `name` (one allocation, shared by clones).
    pub fn new(name: &str) -> Self {
        Self(IdRepr::Shared(Arc::from(name)))
    }

    /// The backend name.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            IdRepr::Static(s) => s,
            IdRepr::Shared(s) => s,
        }
    }
}

impl PartialEq for BackendId {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for BackendId {}

impl std::hash::Hash for BackendId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl PartialEq<str> for BackendId {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for BackendId {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Declared reliability of a backend, recorded for operators; the solver
/// never branches on it (fault plans are the ground truth for failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReliabilityClass {
    /// Expected to complete every submission.
    #[default]
    Reliable,
    /// May shed load; retries usually succeed.
    BestEffort,
    /// Routinely drops or delays submissions (a "cloud QPU").
    Flaky,
}

impl ReliabilityClass {
    /// Stable lowercase name for telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Reliable => "reliable",
            Self::BestEffort => "best-effort",
            Self::Flaky => "flaky",
        }
    }
}

/// A backend's declared performance/cost envelope, all on the solver's
/// deterministic virtual clock (proposal counts) — no wall time anywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendProfile {
    /// Virtual-clock ticks one proposal costs on this backend (≥ 1). The
    /// retry deadline accounting multiplies attempt cost by this factor.
    pub latency_per_proposal: u64,
    /// Monetary-ish cost of one completed read; the bandit divides member
    /// weight by it and the manifest sums it per backend.
    pub cost_per_read: f64,
    /// Declared reliability class (documentation + telemetry only).
    pub reliability: ReliabilityClass,
    /// Straggler deadline on the virtual clock: when speculation is enabled
    /// and an attempt's virtual cost (`proposals × latency`) exceeds this,
    /// the solver races a duplicate on the next pool member. `None` never
    /// triggers speculation by deadline.
    pub deadline_proposals: Option<u64>,
}

impl Default for BackendProfile {
    fn default() -> Self {
        Self {
            latency_per_proposal: 1,
            cost_per_read: 1.0,
            reliability: ReliabilityClass::Reliable,
            deadline_proposals: None,
        }
    }
}

/// Identity of one submission: which read and attempt is being sent, to
/// which portfolio member, on which backend. This is all a fault plan may
/// key on — no wall clock, no entropy — keeping faulty runs deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Read index within the solve.
    pub read: usize,
    /// Submission attempt for this read (0 = first try).
    pub attempt: u32,
    /// Portfolio member the read was assigned to.
    pub sampler: SamplerKind,
    /// Pool member the attempt is dispatched to.
    pub backend: BackendId,
}

/// The submission boundary between the hybrid solver and its samplers.
///
/// Implementations must be deterministic: given the same request and RNG
/// state, `submit` must reach the same verdict and (on success) consume the
/// RNG identically. Failures must be decided *before* drawing randomness so
/// retries of other attempts see unperturbed streams.
pub trait Backend: Send + Sync + fmt::Debug {
    /// Typed identity recorded into requests, fault plans, and telemetry.
    fn id(&self) -> BackendId;

    /// Declared performance/cost envelope. The default is the neutral
    /// profile (latency 1, cost 1.0, reliable, no deadline), under which a
    /// one-member pool is byte-identical to the pre-federation solver.
    fn profile(&self) -> BackendProfile {
        BackendProfile::default()
    }

    /// The fault verdict for one submission identity, without running
    /// anything. The batched path asks this per read *before* packing
    /// survivors into a lane group, so fault plans keep read-granularity
    /// semantics even when 64 reads share one kernel invocation, and the
    /// speculative dispatcher asks it to arbitrate races before any sampler
    /// runs.
    ///
    /// The default accepts every request; [`submit`](Self::submit)
    /// implementations must fail exactly when `decide` does.
    ///
    /// # Errors
    /// Returns the [`SubmitError`] this attempt would observe.
    fn decide(&self, req: &SubmitRequest) -> Result<(), SubmitError> {
        let _ = req;
        Ok(())
    }

    /// Runs (or refuses) one sampler submission.
    ///
    /// # Errors
    /// Returns the [`SubmitError`] the backend observed for this attempt.
    fn submit(
        &self,
        req: &SubmitRequest,
        run: &SamplerRun,
        ev: &mut CqmEvaluator,
        rng: &mut ChaCha8Rng,
        obs: &mut ReadObserver,
    ) -> Result<AnnealResult, SubmitError>;
}

/// The default backend: samplers run in-process and never fail.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcessBackend;

/// Id of the built-in [`InProcessBackend`].
pub const IN_PROCESS_BACKEND_ID: BackendId = BackendId::from_static("in-process");

/// Id of the built-in [`FaultInjectingBackend`].
pub const FAULT_INJECTION_BACKEND_ID: BackendId = BackendId::from_static("fault-injection");

impl Backend for InProcessBackend {
    fn id(&self) -> BackendId {
        IN_PROCESS_BACKEND_ID
    }

    fn submit(
        &self,
        _req: &SubmitRequest,
        run: &SamplerRun,
        ev: &mut CqmEvaluator,
        rng: &mut ChaCha8Rng,
        obs: &mut ReadObserver,
    ) -> Result<AnnealResult, SubmitError> {
        Ok(run.run(ev, rng, obs))
    }
}

/// A backend that injects the faults a [`FaultPlan`] schedules and
/// delegates everything else to the in-process samplers.
#[derive(Debug, Clone, Default)]
pub struct FaultInjectingBackend {
    plan: FaultPlan,
}

impl FaultInjectingBackend {
    /// A backend injecting `plan`'s faults.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The schedule this backend injects.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl Backend for FaultInjectingBackend {
    fn id(&self) -> BackendId {
        FAULT_INJECTION_BACKEND_ID
    }

    fn decide(&self, req: &SubmitRequest) -> Result<(), SubmitError> {
        // Keyed on the typed sampler/backend identity directly — no
        // per-decision allocation in the retry hot path.
        match self
            .plan
            .fault_for(req.sampler, &req.backend, req.read, req.attempt)
        {
            Some(kind) => Err(match kind {
                FaultKind::Timeout => SubmitError::Timeout,
                FaultKind::Transient => SubmitError::Transient {
                    attempt: req.attempt,
                },
                FaultKind::Crash => SubmitError::Crash,
                FaultKind::Malformed => SubmitError::Malformed,
            }),
            None => Ok(()),
        }
    }

    fn submit(
        &self,
        req: &SubmitRequest,
        run: &SamplerRun,
        ev: &mut CqmEvaluator,
        rng: &mut ChaCha8Rng,
        obs: &mut ReadObserver,
    ) -> Result<AnnealResult, SubmitError> {
        // Decide the fault before any RNG use: an injected failure must not
        // perturb the streams surviving attempts draw from.
        self.decide(req)?;
        Ok(run.run(ev, rng, obs))
    }
}

/// Adaptor that gives an inner backend its own identity and declared
/// profile — the building block for heterogeneous [`BackendPool`]s.
///
/// `decide`/`submit` delegate to the inner backend with the *outer* id on
/// the request, so fault plans keyed on a pool member's name reach the
/// shared fault engine underneath.
#[derive(Debug, Clone)]
pub struct ProfiledBackend {
    id: BackendId,
    profile: BackendProfile,
    inner: Arc<dyn Backend>,
}

impl ProfiledBackend {
    /// Wraps `inner` under the name `id` with the declared `profile`.
    pub fn new(id: BackendId, profile: BackendProfile, inner: Arc<dyn Backend>) -> Self {
        Self { id, profile, inner }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn Backend> {
        &self.inner
    }
}

impl Backend for ProfiledBackend {
    fn id(&self) -> BackendId {
        self.id.clone()
    }

    fn profile(&self) -> BackendProfile {
        self.profile
    }

    fn decide(&self, req: &SubmitRequest) -> Result<(), SubmitError> {
        self.inner.decide(req)
    }

    fn submit(
        &self,
        req: &SubmitRequest,
        run: &SamplerRun,
        ev: &mut CqmEvaluator,
        rng: &mut ChaCha8Rng,
        obs: &mut ReadObserver,
    ) -> Result<AnnealResult, SubmitError> {
        self.inner.submit(req, run, ev, rng, obs)
    }
}

/// An ordered pool of heterogeneous backends the solver federates reads
/// across. Member order is semantic: member 0 is the primary for the first
/// rotation slot, retries and speculative hedges walk the pool in order.
///
/// Pool well-formedness (non-empty, unique ids) is validated by
/// `HybridSolverBuilder::build`, not here, so pools can be assembled
/// incrementally.
#[derive(Debug, Clone)]
pub struct BackendPool {
    members: Vec<Arc<dyn Backend>>,
}

impl BackendPool {
    /// A pool with the given members, in dispatch order.
    pub fn new(members: Vec<Arc<dyn Backend>>) -> Self {
        Self { members }
    }

    /// The one-member pool the single-backend shims build; byte-identical
    /// to the pre-federation solve path.
    pub fn single(backend: Arc<dyn Backend>) -> Self {
        Self {
            members: vec![backend],
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool has no members (rejected by the solver builder).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members, in dispatch order.
    pub fn members(&self) -> &[Arc<dyn Backend>] {
        &self.members
    }

    /// Member `idx`, panicking on out-of-range like slice indexing.
    pub fn member(&self, idx: usize) -> &Arc<dyn Backend> {
        &self.members[idx]
    }

    /// First member whose id matches, if any.
    pub fn find(&self, id: &BackendId) -> Option<usize> {
        self.members.iter().position(|b| b.id() == *id)
    }
}

impl Default for BackendPool {
    fn default() -> Self {
        Self::single(Arc::new(InProcessBackend))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultEntry;
    use qlrb_model::cqm::Cqm;
    use qlrb_model::eval::CompiledCqm;
    use qlrb_model::expr::{LinearExpr, Var};
    use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};
    use rand::SeedableRng;

    /// Minimize `(x0 + x1 + x2 − 1)²`, started from the all-ones state.
    fn tiny_evaluator() -> CqmEvaluator {
        let mut cqm = Cqm::new(3);
        let mut sum = LinearExpr::new();
        for i in 0..3u32 {
            sum.add_term(Var(i), 1.0);
        }
        cqm.add_squared_term(sum, 1.0, 1.0);
        let penalty = PenaltyConfig::auto(&cqm, 2.0, PenaltyStyle::ViolationQuadratic);
        let compiled = CompiledCqm::compile(&cqm, penalty);
        CqmEvaluator::with_state(compiled, &[1, 1, 1])
    }

    fn sa_run() -> SamplerRun {
        SamplerRun::for_portfolio(SamplerKind::Sa, 20, 4, 1.0)
    }

    fn request(read: usize, attempt: u32) -> SubmitRequest {
        SubmitRequest {
            read,
            attempt,
            sampler: SamplerKind::Sa,
            backend: IN_PROCESS_BACKEND_ID,
        }
    }

    #[test]
    fn in_process_backend_matches_direct_run() {
        let req = request(0, 0);
        let run = sa_run();

        let mut ev_a = tiny_evaluator();
        let mut rng_a = ChaCha8Rng::seed_from_u64(11);
        let mut obs_a = ReadObserver::disabled();
        let direct = run.run(&mut ev_a, &mut rng_a, &mut obs_a);

        let mut ev_b = tiny_evaluator();
        let mut rng_b = ChaCha8Rng::seed_from_u64(11);
        let mut obs_b = ReadObserver::disabled();
        let via_backend = InProcessBackend
            .submit(&req, &run, &mut ev_b, &mut rng_b, &mut obs_b)
            .unwrap();

        assert_eq!(direct.state, via_backend.state);
        assert_eq!(direct.energy, via_backend.energy);
    }

    #[test]
    fn fault_injection_fires_without_consuming_rng() {
        let plan = FaultPlan {
            entries: vec![FaultEntry {
                sampler: Some(SamplerKind::Sa),
                backend: None,
                read: Some(0),
                fail_attempts: Some(1),
                kind: FaultKind::Transient,
            }],
        };
        let backend = FaultInjectingBackend::new(plan);
        let run = sa_run();

        let mut ev = tiny_evaluator();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut obs = ReadObserver::disabled();
        let req = request(0, 0);
        let err = backend
            .submit(&req, &run, &mut ev, &mut rng, &mut obs)
            .unwrap_err();
        assert_eq!(err, SubmitError::Transient { attempt: 0 });

        // The failed attempt drew nothing: the next attempt's stream is the
        // pristine seed-5 stream.
        let mut fresh = ChaCha8Rng::seed_from_u64(5);
        let retry_req = request(0, 1);
        let retried = backend
            .submit(&retry_req, &run, &mut ev, &mut rng, &mut obs)
            .unwrap();
        let mut ev2 = tiny_evaluator();
        let direct = run.run(&mut ev2, &mut fresh, &mut ReadObserver::disabled());
        assert_eq!(retried.energy, direct.energy);
    }

    #[test]
    fn submit_errors_render_for_telemetry() {
        assert_eq!(SubmitError::Timeout.to_string(), "submission timed out");
        assert_eq!(
            SubmitError::Transient { attempt: 2 }.to_string(),
            "transient backend failure (attempt 2)"
        );
        assert_eq!(SubmitError::Crash.to_string(), "backend crashed");
        assert_eq!(
            SubmitError::Malformed.to_string(),
            "backend returned a malformed sample set"
        );
    }

    #[test]
    fn backend_ids_compare_by_name_across_representations() {
        let a = BackendId::from_static("qpu");
        let b = BackendId::new("qpu");
        assert_eq!(a, b);
        assert_eq!(a, "qpu");
        assert_ne!(b, "QPU"); // identities are case-sensitive
        assert_eq!(b.to_string(), "qpu");
        use std::collections::HashSet;
        let set: HashSet<BackendId> = [a, b].into_iter().collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn default_profile_is_the_neutral_legacy_envelope() {
        let p = BackendProfile::default();
        assert_eq!(p.latency_per_proposal, 1);
        assert_eq!(p.cost_per_read, 1.0);
        assert_eq!(p.reliability, ReliabilityClass::Reliable);
        assert_eq!(p.deadline_proposals, None);
        assert_eq!(InProcessBackend.profile(), p);
        assert_eq!(ReliabilityClass::Flaky.as_str(), "flaky");
        assert_eq!(ReliabilityClass::BestEffort.as_str(), "best-effort");
    }

    #[test]
    fn profiled_backend_reroutes_identity_but_delegates_faults() {
        // A plan keyed on the outer id "qpu" must fire through the adaptor.
        let plan = FaultPlan {
            entries: vec![FaultEntry {
                sampler: None,
                backend: Some("qpu".into()),
                read: None,
                fail_attempts: None,
                kind: FaultKind::Timeout,
            }],
        };
        let qpu = ProfiledBackend::new(
            BackendId::new("qpu"),
            BackendProfile {
                latency_per_proposal: 2,
                cost_per_read: 5.0,
                reliability: ReliabilityClass::Flaky,
                deadline_proposals: Some(1_000),
            },
            Arc::new(FaultInjectingBackend::new(plan)),
        );
        assert_eq!(qpu.id(), "qpu");
        assert_eq!(qpu.profile().cost_per_read, 5.0);

        let req = SubmitRequest {
            read: 3,
            attempt: 0,
            sampler: SamplerKind::Sqa,
            backend: qpu.id(),
        };
        assert_eq!(qpu.decide(&req), Err(SubmitError::Timeout));

        // The same request addressed to a different backend id passes.
        let other = SubmitRequest {
            backend: BackendId::new("fast"),
            ..req
        };
        assert_eq!(qpu.decide(&other), Ok(()));
    }

    #[test]
    fn pool_accessors_and_lookup() {
        let pool = BackendPool::new(vec![
            Arc::new(InProcessBackend),
            Arc::new(ProfiledBackend::new(
                BackendId::new("strong"),
                BackendProfile::default(),
                Arc::new(InProcessBackend),
            )),
        ]);
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
        assert_eq!(pool.member(1).id(), "strong");
        assert_eq!(pool.find(&BackendId::new("strong")), Some(1));
        assert_eq!(pool.find(&BackendId::new("missing")), None);
        let default = BackendPool::default();
        assert_eq!(default.len(), 1);
        assert_eq!(default.member(0).id(), IN_PROCESS_BACKEND_ID);
    }
}
