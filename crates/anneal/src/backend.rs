//! Fallible sampler backends: the submission boundary of the hybrid solver.
//!
//! The paper's workflow submits sampling work to a remote service (D-Wave
//! Leap) that can time out, fail transiently, crash, or return garbage.
//! [`Backend`] models that boundary: [`HybridCqmSolver`] hands each read's
//! [`SamplerRun`] to `submit()`, which either returns the sampler's
//! [`AnnealResult`] or a [`SubmitError`] the solver's retry/backoff and
//! degradation machinery reacts to.
//!
//! Two implementations ship:
//!
//! * [`InProcessBackend`] — the default: runs the sampler in-process and
//!   never fails. The solver's legacy behaviour is byte-identical through
//!   this path.
//! * [`FaultInjectingBackend`] — consults a deterministic [`FaultPlan`]
//!   *before* touching the RNG, so an injected fault consumes no entropy
//!   and the surviving attempts draw exactly the stream a clean run would.
//!
//! [`HybridCqmSolver`]: crate::hybrid::HybridCqmSolver

use std::error::Error;
use std::fmt;

use qlrb_model::eval::CqmEvaluator;
use qlrb_telemetry::ReadObserver;
use rand_chacha::ChaCha8Rng;

use crate::faults::{FaultKind, FaultPlan};
use crate::hybrid::SamplerKind;
use crate::run::SamplerRun;
use crate::sa::AnnealResult;

/// Why a submission failed. Mirrors the failure taxonomy of a cloud
/// sampler endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The submission exceeded its service-side deadline.
    Timeout,
    /// A transient service error; retrying is expected to help.
    Transient {
        /// The submission attempt (0-based) that observed the error.
        attempt: u32,
    },
    /// The backend process died.
    Crash,
    /// The backend answered with an unusable sample set.
    Malformed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => f.write_str("submission timed out"),
            Self::Transient { attempt } => {
                write!(f, "transient backend failure (attempt {attempt})")
            }
            Self::Crash => f.write_str("backend crashed"),
            Self::Malformed => f.write_str("backend returned a malformed sample set"),
        }
    }
}

impl Error for SubmitError {}

/// Identity of one submission: which read and attempt is being sent, and to
/// which portfolio member. This is all a fault plan may key on — no wall
/// clock, no entropy — keeping faulty runs deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Read index within the solve.
    pub read: usize,
    /// Submission attempt for this read (0 = first try).
    pub attempt: u32,
    /// Portfolio member the read was assigned to.
    pub sampler: SamplerKind,
}

/// The submission boundary between the hybrid solver and its samplers.
///
/// Implementations must be deterministic: given the same request and RNG
/// state, `submit` must reach the same verdict and (on success) consume the
/// RNG identically. Failures must be decided *before* drawing randomness so
/// retries of other attempts see unperturbed streams.
pub trait Backend: Send + Sync + fmt::Debug {
    /// Short stable name recorded into solver-config telemetry.
    fn name(&self) -> &'static str;

    /// The fault verdict for one submission identity, without running
    /// anything. The batched path asks this per read *before* packing
    /// survivors into a lane group, so fault plans keep read-granularity
    /// semantics even when 64 reads share one kernel invocation.
    ///
    /// The default accepts every request; [`submit`](Self::submit)
    /// implementations must fail exactly when `decide` does.
    ///
    /// # Errors
    /// Returns the [`SubmitError`] this attempt would observe.
    fn decide(&self, req: &SubmitRequest) -> Result<(), SubmitError> {
        let _ = req;
        Ok(())
    }

    /// Runs (or refuses) one sampler submission.
    ///
    /// # Errors
    /// Returns the [`SubmitError`] the backend observed for this attempt.
    fn submit(
        &self,
        req: &SubmitRequest,
        run: &SamplerRun,
        ev: &mut CqmEvaluator,
        rng: &mut ChaCha8Rng,
        obs: &mut ReadObserver,
    ) -> Result<AnnealResult, SubmitError>;
}

/// The default backend: samplers run in-process and never fail.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcessBackend;

impl Backend for InProcessBackend {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn submit(
        &self,
        _req: &SubmitRequest,
        run: &SamplerRun,
        ev: &mut CqmEvaluator,
        rng: &mut ChaCha8Rng,
        obs: &mut ReadObserver,
    ) -> Result<AnnealResult, SubmitError> {
        Ok(run.run(ev, rng, obs))
    }
}

/// A backend that injects the faults a [`FaultPlan`] schedules and
/// delegates everything else to the in-process samplers.
#[derive(Debug, Clone, Default)]
pub struct FaultInjectingBackend {
    plan: FaultPlan,
}

impl FaultInjectingBackend {
    /// A backend injecting `plan`'s faults.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The schedule this backend injects.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl Backend for FaultInjectingBackend {
    fn name(&self) -> &'static str {
        "fault-injection"
    }

    fn decide(&self, req: &SubmitRequest) -> Result<(), SubmitError> {
        match self
            .plan
            .fault_for(&req.sampler.to_string(), req.read, req.attempt)
        {
            Some(kind) => Err(match kind {
                FaultKind::Timeout => SubmitError::Timeout,
                FaultKind::Transient => SubmitError::Transient {
                    attempt: req.attempt,
                },
                FaultKind::Crash => SubmitError::Crash,
                FaultKind::Malformed => SubmitError::Malformed,
            }),
            None => Ok(()),
        }
    }

    fn submit(
        &self,
        req: &SubmitRequest,
        run: &SamplerRun,
        ev: &mut CqmEvaluator,
        rng: &mut ChaCha8Rng,
        obs: &mut ReadObserver,
    ) -> Result<AnnealResult, SubmitError> {
        // Decide the fault before any RNG use: an injected failure must not
        // perturb the streams surviving attempts draw from.
        self.decide(req)?;
        InProcessBackend.submit(req, run, ev, rng, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultEntry;
    use qlrb_model::cqm::Cqm;
    use qlrb_model::eval::CompiledCqm;
    use qlrb_model::expr::{LinearExpr, Var};
    use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};
    use rand::SeedableRng;

    /// Minimize `(x0 + x1 + x2 − 1)²`, started from the all-ones state.
    fn tiny_evaluator() -> CqmEvaluator {
        let mut cqm = Cqm::new(3);
        let mut sum = LinearExpr::new();
        for i in 0..3u32 {
            sum.add_term(Var(i), 1.0);
        }
        cqm.add_squared_term(sum, 1.0, 1.0);
        let penalty = PenaltyConfig::auto(&cqm, 2.0, PenaltyStyle::ViolationQuadratic);
        let compiled = CompiledCqm::compile(&cqm, penalty);
        CqmEvaluator::with_state(compiled, &[1, 1, 1])
    }

    fn sa_run() -> SamplerRun {
        SamplerRun::for_portfolio(SamplerKind::Sa, 20, 4, 1.0)
    }

    #[test]
    fn in_process_backend_matches_direct_run() {
        let req = SubmitRequest {
            read: 0,
            attempt: 0,
            sampler: SamplerKind::Sa,
        };
        let run = sa_run();

        let mut ev_a = tiny_evaluator();
        let mut rng_a = ChaCha8Rng::seed_from_u64(11);
        let mut obs_a = ReadObserver::disabled();
        let direct = run.run(&mut ev_a, &mut rng_a, &mut obs_a);

        let mut ev_b = tiny_evaluator();
        let mut rng_b = ChaCha8Rng::seed_from_u64(11);
        let mut obs_b = ReadObserver::disabled();
        let via_backend = InProcessBackend
            .submit(&req, &run, &mut ev_b, &mut rng_b, &mut obs_b)
            .unwrap();

        assert_eq!(direct.state, via_backend.state);
        assert_eq!(direct.energy, via_backend.energy);
    }

    #[test]
    fn fault_injection_fires_without_consuming_rng() {
        let plan = FaultPlan {
            entries: vec![FaultEntry {
                sampler: Some("SA".into()),
                read: Some(0),
                fail_attempts: Some(1),
                kind: FaultKind::Transient,
            }],
        };
        let backend = FaultInjectingBackend::new(plan);
        let run = sa_run();

        let mut ev = tiny_evaluator();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut obs = ReadObserver::disabled();
        let req = SubmitRequest {
            read: 0,
            attempt: 0,
            sampler: SamplerKind::Sa,
        };
        let err = backend
            .submit(&req, &run, &mut ev, &mut rng, &mut obs)
            .unwrap_err();
        assert_eq!(err, SubmitError::Transient { attempt: 0 });

        // The failed attempt drew nothing: the next attempt's stream is the
        // pristine seed-5 stream.
        let mut fresh = ChaCha8Rng::seed_from_u64(5);
        let retry_req = SubmitRequest {
            read: 0,
            attempt: 1,
            sampler: SamplerKind::Sa,
        };
        let retried = backend
            .submit(&retry_req, &run, &mut ev, &mut rng, &mut obs)
            .unwrap();
        let mut ev2 = tiny_evaluator();
        let direct = run.run(&mut ev2, &mut fresh, &mut ReadObserver::disabled());
        assert_eq!(retried.energy, direct.energy);
    }

    #[test]
    fn submit_errors_render_for_telemetry() {
        assert_eq!(SubmitError::Timeout.to_string(), "submission timed out");
        assert_eq!(
            SubmitError::Transient { attempt: 2 }.to_string(),
            "transient backend failure (attempt 2)"
        );
        assert_eq!(SubmitError::Crash.to_string(), "backend crashed");
        assert_eq!(
            SubmitError::Malformed.to_string(),
            "backend returned a malformed sample set"
        );
    }
}
