//! Single-flip tabu search.
//!
//! Steepest-descent moves with a recency-based tabu list and the standard
//! aspiration criterion (a tabu move is allowed if it beats the incumbent).
//! Used inside the hybrid portfolio, where its cycling resistance
//! complements annealing.
//!
//! Tabu reads every candidate delta on every iteration, so it opts into the
//! evaluator's incrementally maintained flip-delta cache
//! ([`Evaluator::enable_delta_cache`]) when available: the full-neighbourhood
//! scan becomes a flat array read (O(n)) instead of n on-demand delta
//! recomputations (O(n·nnz) with per-expression penalty evaluations), and
//! the single accepted flip per iteration pays the cache maintenance.
//! Evaluators without cache support (e.g. [`qlrb_model::eval::BqmEvaluator`])
//! fall back to the on-demand scan unchanged.

use qlrb_model::eval::Evaluator;
use rand::Rng;

/// Tabu search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TabuParams {
    /// How many iterations a flipped variable stays tabu. `0` picks
    /// `max(8, n/10)` at run time.
    pub tenure: usize,
    /// Total move budget.
    pub max_iters: usize,
    /// Stop early after this many non-improving moves in a row.
    pub stall_limit: usize,
}

impl Default for TabuParams {
    fn default() -> Self {
        Self {
            tenure: 0,
            max_iters: 2_000,
            stall_limit: 400,
        }
    }
}

/// Result of a tabu run.
#[derive(Debug, Clone)]
pub struct TabuResult {
    /// Best assignment found.
    pub state: Vec<u8>,
    /// Its energy.
    pub energy: f64,
    /// Moves performed.
    pub iterations: usize,
}

/// Runs tabu search from the evaluator's current state.
#[allow(clippy::needless_range_loop)] // indexed loops here touch several parallel arrays
pub fn tabu_search<E: Evaluator>(
    ev: &mut E,
    params: &TabuParams,
    rng: &mut impl Rng,
) -> TabuResult {
    let n = ev.num_vars();
    let mut best_state = ev.state().to_vec();
    let mut best_energy = ev.energy();
    if n == 0 || params.max_iters == 0 {
        return TabuResult {
            state: best_state,
            energy: best_energy,
            iterations: 0,
        };
    }
    let tenure = if params.tenure == 0 {
        (n / 10).max(8)
    } else {
        params.tenure
    };
    // Neighbourhood scan covers the active set only — presolve-fixed
    // variables have flip delta 0 forever and would just pollute the
    // steepest-move selection.
    let active: Vec<usize> = match ev.active_vars() {
        Some(active) => active.to_vec(),
        None => (0..n).collect(),
    };
    // tabu_until[v]: first iteration at which v may be flipped again.
    let mut tabu_until = vec![0usize; n];
    let mut stall = 0usize;
    let mut iters = 0usize;
    let use_cache = ev.enable_delta_cache();
    for iter in 0..params.max_iters {
        // Steepest admissible move; ties broken by a random perturbation so
        // plateaus don't lock onto variable 0.
        let mut chosen: Option<(usize, f64)> = None;
        let mut chosen_key = f64::INFINITY;
        let energy = ev.energy();
        if use_cache {
            let deltas = ev.cached_deltas().expect("cache enabled above"); // qlrb-lint: allow(no-unwrap)
            for &v in &active {
                let delta = deltas[v];
                let aspiration = energy + delta < best_energy - 1e-12;
                if tabu_until[v] > iter && !aspiration {
                    continue;
                }
                let key = delta + rng.random::<f64>() * 1e-9;
                if key < chosen_key {
                    chosen_key = key;
                    chosen = Some((v, delta));
                }
            }
        } else {
            for &v in &active {
                let delta = ev.flip_delta(v);
                let aspiration = energy + delta < best_energy - 1e-12;
                if tabu_until[v] > iter && !aspiration {
                    continue;
                }
                let key = delta + rng.random::<f64>() * 1e-9;
                if key < chosen_key {
                    chosen_key = key;
                    chosen = Some((v, delta));
                }
            }
        }
        let Some((v, delta)) = chosen else { break };
        ev.flip_known(v, delta);
        tabu_until[v] = iter + tenure;
        iters = iter + 1;
        if ev.energy() < best_energy - 1e-12 {
            best_energy = ev.energy();
            best_state.copy_from_slice(ev.state());
            stall = 0;
        } else {
            stall += 1;
            if stall >= params.stall_limit {
                break;
            }
        }
        if iters.is_multiple_of(512) {
            ev.resync();
        }
    }
    ev.resync();
    if ev.energy() < best_energy {
        best_energy = ev.energy();
        best_state.copy_from_slice(ev.state());
    }
    TabuResult {
        state: best_state,
        energy: best_energy,
        iterations: iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_model::bqm::BinaryQuadraticModel;
    use qlrb_model::eval::BqmEvaluator;
    use qlrb_model::Var;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// A two-minimum landscape where plain descent gets stuck: tabu must
    /// cross a barrier.
    fn barrier_bqm() -> BinaryQuadraticModel {
        // E(x) over 4 vars: deep minimum at 1111 (E = -6), shallow at 0000
        // (E = 0); any single flip from 0000 costs +1.
        let mut bqm = BinaryQuadraticModel::new(4);
        for i in 0..4u32 {
            bqm.add_linear(Var(i), 1.0);
        }
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                bqm.add_quadratic(Var(i), Var(j), -5.0 / 3.0);
            }
        }
        bqm
    }

    #[test]
    fn escapes_local_minimum() {
        let bqm = barrier_bqm();
        let ground = bqm.energy(&[1, 1, 1, 1]);
        assert!(ground < 0.0);
        let mut ev = BqmEvaluator::new(Arc::new(bqm)); // starts at 0000 (local min)
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let res = tabu_search(&mut ev, &TabuParams::default(), &mut rng);
        assert_eq!(res.state, vec![1, 1, 1, 1]);
        assert!((res.energy - ground).abs() < 1e-9);
    }

    #[test]
    fn respects_zero_budget() {
        let mut ev = BqmEvaluator::new(Arc::new(barrier_bqm()));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let res = tabu_search(
            &mut ev,
            &TabuParams {
                max_iters: 0,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(res.iterations, 0);
        assert_eq!(res.state, vec![0; 4]);
    }

    #[test]
    fn deterministic_under_seed() {
        let model = Arc::new(barrier_bqm());
        let run = |seed| {
            let mut ev = BqmEvaluator::new(Arc::clone(&model));
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            tabu_search(&mut ev, &TabuParams::default(), &mut rng)
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.state, b.state);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn uses_delta_cache_on_cqm_models() {
        use qlrb_model::cqm::{Cqm, Sense};
        use qlrb_model::eval::{CompiledCqm, CqmEvaluator};
        use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};
        use qlrb_model::{LinearExpr, Var};

        // minimize (x0 + 2·x1 + 3·x2 − 3)²  s.t.  x0 + x1 + x2 ≤ 2;
        // optimum 0 at e.g. x2 = 1 alone.
        let mut cqm = Cqm::new(3);
        let mut obj = LinearExpr::new();
        obj.add_term(Var(0), 1.0)
            .add_term(Var(1), 2.0)
            .add_term(Var(2), 3.0);
        cqm.add_squared_term(obj, 3.0, 1.0);
        let mut cap = LinearExpr::new();
        cap.add_term(Var(0), 1.0)
            .add_term(Var(1), 1.0)
            .add_term(Var(2), 1.0);
        cqm.add_constraint(cap, Sense::Le, 2.0, "cap");
        let compiled = CompiledCqm::compile(
            &cqm,
            PenaltyConfig::uniform(25.0, PenaltyStyle::ViolationQuadratic),
        );
        let mut ev = CqmEvaluator::new(compiled);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let res = tabu_search(&mut ev, &TabuParams::default(), &mut rng);
        assert!(
            ev.cached_deltas().is_some(),
            "tabu must opt the CQM evaluator into the delta cache"
        );
        assert!(res.energy.abs() < 1e-9, "optimum is 0, got {}", res.energy);
    }
}
