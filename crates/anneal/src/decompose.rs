//! Active-window decomposition frontend (DESIGN.md §Decomposition).
//!
//! The monolithic portfolio refuses (checked path) or degrades (legacy
//! path) models wider than the tabu cap. This module breaks that ceiling
//! without touching the samplers, the scheduler, or the batched kernels:
//! it solves a large CQM through a deterministic sequence of *windows* —
//!
//! 1. **Score** every variable by its structural flip impact at the
//!    incumbent assignment: how much flipping the bit would move each
//!    squared term, each constraint (violation *reductions* weighted by
//!    the model's [`Cqm::objective_unit_scale`], so bits that can repair
//!    infeasibility outrank objective-only ones, matching the solver's
//!    lexicographic `(violation, objective)` preference — flips that
//!    would only create violation earn nothing, else bits pinned by a
//!    tight constraint crowd improvable ones out of the window), and the
//!    linear objective.
//!    Scoring walks the structural CQM directly — expression sums are
//!    computed once per window, then each incident coefficient contributes
//!    in O(1) — so the full model's penalty CSR is never compiled.
//! 2. **Freeze** everything outside the top-`tabu_max_vars` scorers and
//!    extract the induced subproblem with [`Cqm::subview`]; frozen
//!    variables fold into targets and right-hand sides as constants.
//! 3. **Solve** the window with a sub-solver inheriting this
//!    configuration (decomposition off, private sink, round-salted seed),
//!    seeded with the incumbent's projection.
//! 4. **Fold back** the window's best sample and accept it only if it
//!    strictly improves `(violation, objective)` on the *full* model;
//!    repeat until two consecutive windows fail to improve.
//!
//! Determinism: window selection sorts by `(score desc, index asc)` with
//! total float ordering, sub-solvers are seeded from the master seed and
//! the round index alone, and acceptance compares exact re-evaluations of
//! the full model — identical seeds give byte-identical final states and
//! telemetry (wall-clock fields excluded from the trace digest).

use std::sync::Arc;
use std::time::Instant;

use qlrb_model::cqm::violation_of;
use qlrb_model::Cqm;
use qlrb_telemetry::{
    DecompositionLevelRecord, DecompositionRecord, DecompositionWindowRecord, NoopSink,
};

use crate::hybrid::{HybridCqmSolver, SamplerKind};
use crate::sampleset::{Sample, SampleSet, SolverTiming};

/// Hard cap on window rounds; a safety net over the plateau stop.
const MAX_ROUNDS: usize = 32;

/// Consecutive non-improving windows tolerated before stopping.
const PLATEAU_WINDOWS: usize = 2;

/// What the active-window loop produced: the final sample set (best
/// incumbent first) plus the telemetry record describing every window.
#[derive(Debug, Clone)]
pub struct ActiveWindowOutcome {
    /// Single-sample set holding the final incumbent.
    pub set: SampleSet,
    /// Per-window telemetry, ready to attach to a `SolveRecord`.
    pub record: DecompositionRecord,
}

/// Solves `cqm` through the active-window loop described in the module
/// docs, using `solver`'s configuration for every window sub-solve.
///
/// `seeds` are candidate full-width assignments; the best of them (by
/// `(violation, objective)`, wrong-width entries ignored) becomes the
/// initial incumbent, falling back to all-zeros.
pub fn solve_active_windows(
    solver: &HybridCqmSolver,
    cqm: &Cqm,
    seeds: &[Vec<u8>],
) -> ActiveWindowOutcome {
    let started = Instant::now(); // qlrb-lint: allow(no-wallclock) — telemetry timing around sub-solves, not inside a sweep
    let width = cqm.num_vars();
    let cap = solver.tabu_max_vars().max(1).min(width.max(1));

    let mut incumbent = initial_incumbent(cqm, seeds);
    let (mut best_viol, mut best_obj) = evaluate(cqm, &incumbent);
    let initial_obj = best_obj;
    let viol_weight = cqm.objective_unit_scale();

    let mut windows: Vec<DecompositionWindowRecord> = Vec::new();
    let mut touched = vec![false; width];
    let mut dry = 0usize;
    for round in 0..MAX_ROUNDS {
        if dry >= PLATEAU_WINDOWS || width == 0 {
            break;
        }
        let active = select_window(cqm, &incumbent, cap, viol_weight);
        let sub = cqm.subview(&active, &incumbent);
        let sub_solver = solver
            .to_builder()
            .decompose(false)
            .sink(Arc::new(NoopSink))
            .seed(window_seed(solver.seed(), round as u64))
            .build()
            .expect("window sub-solver inherits a validated configuration"); // qlrb-lint: allow(no-unwrap)

        let window_started = Instant::now(); // qlrb-lint: allow(no-wallclock) — telemetry timing around a sub-solve
        let window_seeds = vec![sub.project(&incumbent)];
        let set = sub_solver.solve(sub.cqm(), &window_seeds);
        let wall_ms = window_started.elapsed().as_secs_f64() * 1e3;

        let mut candidate = incumbent.clone();
        if let Some(best) = set.best() {
            sub.fold_back(&best.state, &mut candidate);
        }
        let (cand_viol, cand_obj) = evaluate(cqm, &candidate);
        let accepted = cand_viol < best_viol - 1e-12
            || (cand_viol <= best_viol + 1e-12 && cand_obj < best_obj - 1e-12);
        windows.push(DecompositionWindowRecord {
            level: 0,
            window: round,
            vars: active.len(),
            objective_before: best_obj,
            objective_after: if accepted { cand_obj } else { best_obj },
            accepted,
            wall_ms,
        });
        if accepted {
            for &v in &active {
                touched[v] = true;
            }
            incumbent = candidate;
            best_viol = cand_viol;
            best_obj = cand_obj;
            dry = 0;
        } else {
            dry += 1;
        }
    }

    let sub_solves = windows.len();
    let solved_vars = touched.iter().filter(|&&t| t).count();
    let record = DecompositionRecord {
        strategy: "active-window".to_string(),
        window_cap: cap,
        levels: vec![DecompositionLevelRecord {
            level: 0,
            size: width,
            solved_vars,
            objective_before: initial_obj,
            objective_after: best_obj,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        }],
        windows,
        sub_solves,
    };

    let set = SampleSet {
        samples: vec![Sample {
            objective: best_obj,
            violation: best_viol,
            feasible: best_viol == 0.0,
            state: incumbent,
            sampler: SamplerKind::Sa,
        }],
        timing: SolverTiming::default(),
    };
    ActiveWindowOutcome { set, record }
}

/// The `(violation, objective)` pair acceptance compares lexicographically.
fn evaluate(cqm: &Cqm, state: &[u8]) -> (f64, f64) {
    (cqm.total_violation(state), cqm.objective(state))
}

/// Best full-width seed by `(violation, objective)` with deterministic
/// first-wins tie-breaking; all-zeros when no seed fits.
fn initial_incumbent(cqm: &Cqm, seeds: &[Vec<u8>]) -> Vec<u8> {
    let width = cqm.num_vars();
    let mut best: Option<(f64, f64, &Vec<u8>)> = None;
    for s in seeds.iter().filter(|s| s.len() == width) {
        let (v, o) = evaluate(cqm, s);
        let better = match &best {
            None => true,
            Some((bv, bo, _)) => v < *bv - 1e-12 || (v <= *bv + 1e-12 && o < *bo - 1e-12),
        };
        if better {
            best = Some((v, o, s));
        }
    }
    match best {
        Some((_, _, s)) => s.clone(),
        None => vec![0u8; width],
    }
}

/// Scores every variable's structural flip impact at `state` and returns
/// the top-`cap` indices, ascending. Two passes per expression: one sum at
/// the incumbent, then an O(1) delta per incident coefficient.
fn select_window(cqm: &Cqm, state: &[u8], cap: usize, viol_weight: f64) -> Vec<usize> {
    let width = cqm.num_vars();
    let mut score = vec![0.0f64; width];
    for t in &cqm.squared_terms {
        let s = t.expr.value(state);
        for &(v, c) in t.expr.terms() {
            let i = v.index();
            let flip = if state[i] == 0 { c } else { -c };
            let before = s - t.target;
            let after = before + flip;
            score[i] += t.weight * (after * after - before * before).abs();
        }
    }
    for &(v, c) in cqm.linear_objective.terms() {
        score[v.index()] += c.abs();
    }
    for cons in &cqm.constraints {
        let s = cons.expr.value(state);
        let before = violation_of(cons.sense, s, cons.rhs);
        for &(v, c) in cons.expr.terms() {
            let i = v.index();
            let flip = if state[i] == 0 { c } else { -c };
            let after = violation_of(cons.sense, s + flip, cons.rhs);
            // Reward only violation *reduction*: a flip that would create
            // violation is one the sub-solver will refuse anyway, and
            // scoring it pins satisfied-constraint bits at the top of the
            // window while genuinely improvable ones starve.
            score[i] += viol_weight * (before - after).max(0.0);
        }
    }

    let mut order: Vec<usize> = (0..width).collect();
    order.sort_unstable_by(|&a, &b| score[b].total_cmp(&score[a]).then_with(|| a.cmp(&b)));
    order.truncate(cap);
    order.sort_unstable();
    order
}

/// Deterministic per-round sub-solver seed: splitmix64 over the master
/// seed and the round index.
fn window_seed(master: u64, round: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(round.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::{HybridCqmSolver, SolveError};
    use qlrb_model::{LinearExpr, Sense, Var};
    use qlrb_telemetry::MemorySink;

    /// A partition-style model: `groups` disjoint triples, each pulled to
    /// sum 2 with a ≤2 capacity constraint. Optimal objective 0.
    fn partition_cqm(groups: usize) -> Cqm {
        let mut cqm = Cqm::new(3 * groups);
        for g in 0..groups {
            let mut sum = LinearExpr::new();
            for k in 0..3 {
                sum.add_term(Var((3 * g + k) as u32), 1.0);
            }
            cqm.add_squared_term(sum.clone(), 2.0, 1.0);
            cqm.add_constraint(sum, Sense::Le, 2.0, format!("cap{g}"));
        }
        cqm
    }

    fn tiny_windows_solver() -> HybridCqmSolver {
        HybridCqmSolver::fast()
            .to_builder()
            .tabu_max_vars(6)
            .decompose(true)
            .build()
            .expect("valid config")
    }

    #[test]
    fn windows_reach_the_monolithic_optimum() {
        let cqm = partition_cqm(8); // 24 vars, window cap 6
        let solver = tiny_windows_solver();
        let out = solve_active_windows(&solver, &cqm, &[]);
        let best = out.set.best_feasible().expect("feasible");
        assert_eq!(best.objective, 0.0);
        assert!(out.record.sub_solves >= 1);
        assert!(out.record.windows.iter().all(|w| w.vars <= 6));
        assert_eq!(out.record.levels.len(), 1);
        assert_eq!(out.record.levels[0].size, 24);
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let cqm = partition_cqm(8);
        let solver = tiny_windows_solver();
        let a = solve_active_windows(&solver, &cqm, &[]);
        let b = solve_active_windows(&solver, &cqm, &[]);
        assert_eq!(a.set.samples[0].state, b.set.samples[0].state);
        assert_eq!(a.record.sub_solves, b.record.sub_solves);
        let strip = |r: &DecompositionRecord| {
            r.windows
                .iter()
                .map(|w| {
                    (
                        w.level,
                        w.window,
                        w.vars,
                        w.objective_after.to_bits(),
                        w.accepted,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&a.record), strip(&b.record));
    }

    #[test]
    fn checked_solve_errors_without_decompose_and_windows_with_it() {
        let cqm = partition_cqm(8);
        let mono = HybridCqmSolver::fast()
            .to_builder()
            .tabu_max_vars(6)
            .build()
            .expect("valid config");
        match mono.solve_checked(&cqm, &[]) {
            Err(SolveError::TooLarge(e)) => {
                assert_eq!(e.vars, 24);
                assert_eq!(e.cap, 6);
                assert!(e.to_string().contains("--decompose"));
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }

        let sink = Arc::new(MemorySink::default());
        let dec = mono
            .to_builder()
            .decompose(true)
            .sink(sink.clone())
            .build()
            .expect("valid config");
        let set = dec.solve_checked(&cqm, &[]).expect("decomposed solve");
        assert!(set.best_feasible().is_some());
        let records = sink.take();
        assert_eq!(records.len(), 1, "one merged record for the whole solve");
        let rec = &records[0];
        assert_eq!(rec.termination, "decomposed");
        let d = rec.decomposition.as_ref().expect("decomposition attached");
        assert_eq!(d.strategy, "active-window");
        assert_eq!(d.window_cap, 6);
        assert!(!rec.trace_digest.is_empty());
    }

    #[test]
    fn in_cap_models_bypass_the_frontend() {
        let cqm = partition_cqm(1); // 3 vars, under any default cap
        let dec = HybridCqmSolver::fast()
            .to_builder()
            .decompose(true)
            .build()
            .expect("valid config");
        let mono = HybridCqmSolver::fast();
        let a = dec.solve(&cqm, &[]);
        let b = mono.solve(&cqm, &[]);
        assert_eq!(a.samples[0].state, b.samples[0].state);
        assert_eq!(a.samples[0].objective, b.samples[0].objective);
    }
}
