//! The paper's experiment groups (§V).

// qlrb-lint: allow-file(no-unwrap) — experiment driver: a failed baseline or
// invalid plan must abort the run loudly rather than skew the tables.

use std::fmt::Write as _;
use std::sync::Arc;

use qlrb_classical::{complexity, Greedy, KarmarkarKarp, ProactLb};
use qlrb_core::cqm::Variant;
use qlrb_core::{Instance, LrpCqm};
use qlrb_telemetry::{CaseTrace, MemorySink, MethodTrace, TraceSink};
use qlrb_workloads::groups as mxm_groups;
use rayon::prelude::*;

use crate::config::HarnessConfig;
use crate::rows::{run_method, run_method_with_base, CaseResult, ExperimentResult, MethodRow};

/// Runs the paper's seven methods on one instance. The quantum budgets
/// `k1`/`k2` are derived from ProactLB's and Greedy's migration counts on
/// this same instance, exactly as §V-B prescribes.
///
/// The classical methods run serially (the quantum budgets depend on their
/// migration counts); the four `Q_CQM*_k*` variants then run in parallel
/// over rayon. Each formulation's base CQM is compiled once and shared by
/// its two budget variants — only the budget right-hand side differs (see
/// [`LrpCqm::with_budget`]). Solver seeds depend only on the harness seed,
/// the budget, and the variable count, and the indexed parallel collect
/// preserves order, so rows are deterministic and arrive in the paper's
/// fixed method order regardless of scheduling.
pub fn run_paper_methods(inst: &Instance, cfg: &HarnessConfig, label: &str) -> CaseResult {
    run_paper_methods_inner(inst, cfg, label, false).0
}

/// [`run_paper_methods`] with telemetry: every quantum method solves
/// through its own recording [`MemorySink`], and the per-read traces come
/// back as a [`CaseTrace`] for manifest assembly. Rows are identical to the
/// untraced runner (recording only observes statistics the samplers already
/// produce; it never touches their RNG streams).
pub fn run_paper_methods_traced(
    inst: &Instance,
    cfg: &HarnessConfig,
    label: &str,
) -> (CaseResult, CaseTrace) {
    let (case, trace) = run_paper_methods_inner(inst, cfg, label, true);
    (case, trace.expect("tracing was requested"))
}

fn run_paper_methods_inner(
    inst: &Instance,
    cfg: &HarnessConfig,
    label: &str,
    tracing: bool,
) -> (CaseResult, Option<CaseTrace>) {
    use qlrb_core::Rebalancer as _;
    let greedy_plan = Greedy.rebalance(inst).expect("greedy").matrix;
    let kk_plan = KarmarkarKarp.rebalance(inst).expect("kk").matrix;
    let proact_plan = ProactLb.rebalance(inst).expect("proactlb").matrix;
    let greedy = run_method(inst, &Greedy);
    let kk = run_method(inst, &KarmarkarKarp);
    let proact = run_method(inst, &ProactLb);
    let k1 = proact.migrated;
    let k2 = greedy.migrated;

    // One compiled base formulation per variant; the budget is rewritten
    // per method inside `rebalance_with_base`.
    let base_reduced = LrpCqm::build(inst, Variant::Reduced, 0).expect("Q_CQM1 base");
    let base_full = LrpCqm::build(inst, Variant::Full, 0).expect("Q_CQM2 base");

    let quantum: Vec<(MethodRow, Option<MethodTrace>)> = [
        (Variant::Reduced, k1, "Q_CQM1_k1"),
        (Variant::Reduced, k2, "Q_CQM1_k2"),
        (Variant::Full, k1, "Q_CQM2_k1"),
        (Variant::Full, k2, "Q_CQM2_k2"),
    ]
    .into_par_iter()
    .map(|(variant, k, name)| {
        // Warm starts: every classical plan that fits the budget (the
        // quantum method filters them again defensively).
        let seeds = vec![greedy_plan.clone(), kk_plan.clone(), proact_plan.clone()];
        let mut method = cfg.quantum_seeded(inst, variant, k, name, seeds);
        let sink = tracing.then(|| Arc::new(MemorySink::new()));
        if let Some(sink) = &sink {
            method.solver = method
                .solver
                .to_builder()
                .sink(Arc::clone(sink) as Arc<dyn TraceSink>)
                .build()
                .expect("attaching a sink keeps the config valid");
        }
        let base = match variant {
            Variant::Reduced => &base_reduced,
            Variant::Full => &base_full,
        };
        let row = run_method_with_base(inst, &method, base);
        let trace = sink
            .and_then(|s| s.take().into_iter().next())
            .map(|solve| MethodTrace {
                method: name.to_string(),
                solve,
            });
        (row, trace)
    })
    .collect();

    let mut rows = vec![greedy, kk, proact];
    let mut methods = Vec::new();
    for (row, trace) in quantum {
        rows.push(row);
        methods.extend(trace);
    }
    let case = CaseResult {
        label: label.to_string(),
        baseline_r_imb: inst.stats().imbalance_ratio,
        rows,
    };
    let trace = tracing.then(|| CaseTrace {
        label: label.to_string(),
        methods,
        sim: None,
    });
    (case, trace)
}

/// Fig. 3 + Table II: five imbalance levels, 8 nodes × 50 MxM tasks.
///
/// Cases run in parallel over rayon; the indexed collect keeps them in
/// definition order and per-case results are seed-deterministic, so the
/// output is identical to the serial run.
pub fn varied_imbalance(cfg: &HarnessConfig) -> ExperimentResult {
    let cases = mxm_groups::imbalance_levels()
        .into_par_iter()
        .map(|(label, inst)| run_paper_methods(&inst, cfg, &label))
        .collect();
    ExperimentResult {
        id: "fig3_table2".into(),
        title: "Varying imbalance levels (8 nodes x 50 tasks, MxM)".into(),
        cases,
    }
}

/// Fig. 4 + Table III: node scaling {4, 8, 16, 32, 64} × 100 tasks.
pub fn varied_procs(cfg: &HarnessConfig) -> ExperimentResult {
    let cases = mxm_groups::node_scaling()
        .into_par_iter()
        .map(|(m, inst)| run_paper_methods(&inst, cfg, &format!("{m} nodes")))
        .collect();
    ExperimentResult {
        id: "fig4_table3".into(),
        title: "Varying the number of compute nodes (100 tasks/node, MxM)".into(),
        cases,
    }
}

/// Fig. 5 + Table IV: tasks per node {8 … 2048} on 8 nodes.
pub fn varied_tasks(cfg: &HarnessConfig) -> ExperimentResult {
    let cases = mxm_groups::task_scaling()
        .into_par_iter()
        .map(|(n, inst)| run_paper_methods(&inst, cfg, &format!("{n} tasks")))
        .collect();
    ExperimentResult {
        id: "fig5_table4".into(),
        title: "Varying the number of tasks per node (8 nodes, MxM)".into(),
        cases,
    }
}

/// Table V: the sam(oa)² oscillating-lake case (32 nodes × 208 tasks,
/// baseline R_imb = 4.1994), including the Baseline row.
pub fn samoa_case(cfg: &HarnessConfig) -> ExperimentResult {
    let inst = samoa_mini::scenario::table5_instance();
    let mut case = run_paper_methods(&inst, cfg, "sam(oa)2 oscillating lake");
    let baseline = run_method(&inst, &qlrb_core::algorithm::NoOp);
    case.rows.insert(0, baseline);
    ExperimentResult {
        id: "table5".into(),
        title: "Realistic use case: sam(oa)2 oscillating lake (32 nodes x 208 tasks)".into(),
        cases: vec![case],
    }
}

/// [`samoa_case`] with telemetry: the same Table V run with every quantum
/// solve traced, returning the per-method [`CaseTrace`] alongside the rows.
pub fn samoa_case_traced(cfg: &HarnessConfig) -> (ExperimentResult, CaseTrace) {
    let inst = samoa_mini::scenario::table5_instance();
    let (mut case, trace) = run_paper_methods_traced(&inst, cfg, "sam(oa)2 oscillating lake");
    let baseline = run_method(&inst, &qlrb_core::algorithm::NoOp);
    case.rows.insert(0, baseline);
    let exp = ExperimentResult {
        id: "table5".into(),
        title: "Realistic use case: sam(oa)2 oscillating lake (32 nodes x 208 tasks)".into(),
        cases: vec![case],
    };
    (exp, trace)
}

/// A second realistic case beyond the paper: the tsunami wave (sam(oa)²'s
/// namesake workload), with costs extracted from the actual finite-volume
/// run. Same seven-method protocol as Table V.
pub fn tsunami_case(cfg: &HarnessConfig) -> ExperimentResult {
    let inst = samoa_mini::TsunamiScenario::default().to_instance();
    let mut case = run_paper_methods(&inst, cfg, "tsunami wave (FV-driven)");
    let baseline = run_method(&inst, &qlrb_core::algorithm::NoOp);
    case.rows.insert(0, baseline);
    ExperimentResult {
        id: "extension_tsunami".into(),
        title: "Second realistic use case: propagating tsunami (8 nodes x 16 tasks)".into(),
        cases: vec![case],
    }
}

/// Table I: complexity and logical-qubit overview, symbolic rows plus
/// concrete counts for each experiment-group configuration.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== table1 — Complexity and logical qubits ==\n");
    let _ = writeln!(
        out,
        "{:<16} {:<22} Logical qubits",
        "Algorithm", "Complexity"
    );
    for row in complexity::table1_rows() {
        let _ = writeln!(
            out,
            "{:<16} {:<22} {}",
            row.algorithm, row.complexity, row.logical_qubits
        );
    }
    let _ = writeln!(
        out,
        "\nConcrete counts (paper formula vs this implementation's variables):"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>8} {:>14} {:>14}",
        "Configuration", "M", "n", "Q_CQM1", "Q_CQM2"
    );
    let configs: Vec<(&str, u64, u64)> = vec![
        ("Fig3/TableII", 8, 50),
        ("Fig4 max scale", 64, 100),
        ("Fig5 max tasks", 8, 2048),
        ("Table V samoa", 32, 208),
    ];
    for (label, m, n) in configs {
        let q = complexity::concrete_qubits(m, n);
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>8} {:>6}/{:<7} {:>6}/{:<7}",
            label, m, n, q[0].1, q[0].2, q[1].1, q[1].2
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_methods_produce_seven_rows() {
        let inst = Instance::uniform(10, vec![1.0, 2.0, 4.0]).unwrap();
        let case = run_paper_methods(&inst, &HarnessConfig::fast(), "t");
        let names: Vec<&str> = case.rows.iter().map(|r| r.algorithm.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Greedy",
                "KK",
                "ProactLB",
                "Q_CQM1_k1",
                "Q_CQM1_k2",
                "Q_CQM2_k1",
                "Q_CQM2_k2"
            ]
        );
        // k-budget discipline: quantum rows never exceed their budget.
        let k1 = case.row("ProactLB").unwrap().migrated;
        let k2 = case.row("Greedy").unwrap().migrated;
        assert!(case.row("Q_CQM1_k1").unwrap().migrated <= k1);
        assert!(case.row("Q_CQM1_k2").unwrap().migrated <= k2);
        assert!(case.row("Q_CQM2_k1").unwrap().migrated <= k1);
        assert!(case.row("Q_CQM2_k2").unwrap().migrated <= k2);
        // Hybrid rows carry QPU time; classical rows don't.
        for r in &case.rows {
            assert_eq!(
                r.qpu_ms.is_some(),
                r.algorithm.starts_with("Q_"),
                "{}",
                r.algorithm
            );
        }
    }

    #[test]
    fn tsunami_case_runs_all_methods() {
        let exp = tsunami_case(&HarnessConfig::fast());
        let case = &exp.cases[0];
        assert_eq!(case.rows.len(), 8, "baseline + seven methods");
        let baseline = case.row("Baseline").unwrap();
        assert_eq!(baseline.migrated, 0);
        for row in &case.rows {
            assert!(row.r_imb <= case.baseline_r_imb + 1e-9, "{}", row.algorithm);
        }
    }

    #[test]
    fn table1_mentions_all_methods() {
        let t = table1();
        for name in ["Greedy", "KK", "ProactLB", "Q_CQM1", "Q_CQM2"] {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(
            t.contains("28672") || t.contains("28 672"),
            "largest config count"
        );
    }
}
