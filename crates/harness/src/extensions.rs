//! Experiments beyond the paper's evaluation section.
//!
//! * [`optimality_gap`] — anchors every method against the certified
//!   branch-and-bound optimum on small instances: how far from optimal are
//!   the heuristics and the hybrid solver really?
//! * [`dynamic_comparison`] — pits the paper's migrate-then-run methods
//!   against classic *work stealing* on the simulated runtime, across
//!   steal-latency settings (the related-work §III trade-off, measured).

// qlrb-lint: allow-file(no-unwrap) — experiment driver: a failed baseline or
// invalid plan must abort the run loudly rather than skew the tables.

use chameleon_sim::{steal_from_instance, SimConfig};
use qlrb_classical::{BranchAndBound, Greedy, KarmarkarKarp, ProactLb};
use qlrb_core::cqm::Variant;
use qlrb_core::{Instance, Rebalancer};

use crate::config::HarnessConfig;
use crate::rows::{run_method, CaseResult, ExperimentResult, MethodRow};

/// Small instances where the exact optimum is computable.
fn gap_instances() -> Vec<(String, Instance)> {
    vec![
        (
            "mild 4x10".into(),
            Instance::uniform(10, vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
        ),
        (
            "hotspot 5x8".into(),
            Instance::uniform(8, vec![1.0, 1.0, 1.0, 1.0, 9.0]).unwrap(),
        ),
        (
            "spread 6x6".into(),
            Instance::uniform(6, vec![1.0, 1.5, 2.25, 3.4, 5.1, 7.6]).unwrap(),
        ),
    ]
}

/// Runs all methods plus the exact optimum; `r_imb` of the `BnB-optimal`
/// row is the floor every other row can be compared against.
pub fn optimality_gap(cfg: &HarnessConfig) -> ExperimentResult {
    let cases = gap_instances()
        .into_iter()
        .map(|(label, inst)| {
            let k = inst.num_tasks() / 2;
            let rows = vec![
                run_method(&inst, &Greedy),
                run_method(&inst, &KarmarkarKarp),
                run_method(&inst, &ProactLb),
                run_method(&inst, &cfg.quantum(&inst, Variant::Reduced, k, "Q_CQM1")),
                run_method(&inst, &BranchAndBound::default()),
            ];
            CaseResult {
                label,
                baseline_r_imb: inst.stats().imbalance_ratio,
                rows,
            }
        })
        .collect();
    ExperimentResult {
        id: "extension_optimality_gap".into(),
        title: "Heuristics and hybrid vs the certified optimum (small instances)".into(),
        cases,
    }
}

/// Migrate-then-run vs work stealing on the simulated runtime.
///
/// For each steal-cost setting the `r_imb` column is reused to report the
/// *makespan* normalized by the zero-cost lower bound `L_total/M` (1.0 =
/// perfect), and `speedup` is makespan(static)/makespan(method).
pub fn dynamic_comparison(cfg: &HarnessConfig) -> ExperimentResult {
    let inst = crate::ablations::ablation_instance();
    let m = inst.num_procs() as f64;
    let perfect = inst.loads().iter().sum::<f64>() / m;
    let mut cases = Vec::new();
    for (latency, label) in [
        (0.0, "free steals"),
        (0.5, "cheap steals"),
        (4.0, "costly steals"),
    ] {
        let sim_cfg = SimConfig {
            comp_threads: 1,
            comm_latency: latency,
            comm_cost_per_load: 0.02,
            iterations: 1,
        };
        let static_ms = steal_from_instance(&inst, &sim_cfg, false).makespan;

        let mut rows = Vec::new();
        // Work stealing.
        let steal = steal_from_instance(&inst, &sim_cfg, true);
        rows.push(MethodRow {
            algorithm: "WorkStealing".into(),
            r_imb: steal.makespan / perfect,
            speedup: static_ms / steal.makespan,
            migrated: steal.steals,
            migrated_per_proc: steal.steals as f64 / m,
            runtime_ms: 0.0,
            qpu_ms: None,
            peak_rss_mb: 0.0,
        });
        // Migrate-then-run methods, executed on the same runtime model.
        for (name, plan) in [
            (
                "ProactLB",
                ProactLb.rebalance(&inst).expect("proactlb").matrix,
            ),
            ("Greedy", Greedy.rebalance(&inst).expect("greedy").matrix),
            (
                "Q_CQM1",
                cfg.quantum(&inst, Variant::Reduced, inst.num_tasks() / 4, "Q_CQM1")
                    .rebalance(&inst)
                    .expect("hybrid")
                    .matrix,
            ),
        ] {
            // An invalid plan becomes a failure row instead of sinking
            // the whole sweep.
            rows.push(match crate::runtime::execute_plan(&inst, &plan, &sim_cfg) {
                Ok(cmp) => {
                    let rebalanced_ms = static_ms / cmp.achieved_speedup;
                    MethodRow {
                        algorithm: name.into(),
                        r_imb: rebalanced_ms / perfect,
                        speedup: cmp.achieved_speedup,
                        migrated: plan.num_migrated(),
                        migrated_per_proc: plan.migrated_per_proc(),
                        runtime_ms: 0.0,
                        qpu_ms: None,
                        peak_rss_mb: 0.0,
                    }
                }
                Err(_) => MethodRow::failure(name),
            });
        }
        cases.push(CaseResult {
            label: label.into(),
            baseline_r_imb: static_ms / perfect,
            rows,
        });
    }
    ExperimentResult {
        id: "extension_dynamic".into(),
        title: "Work stealing vs migrate-then-run (makespan / perfect-balance bound)".into(),
        cases,
    }
}

/// How rebalancing plans age on the oscillating lake.
///
/// Methods compute their plan from the `t = 0` snapshot; the lake keeps
/// moving, section costs are re-evaluated at later times, and each row
/// reports the imbalance ratio the aged plan actually delivers (`r_imb`
/// column) against the drifting no-plan baseline (`baseline_r_imb`).
pub fn drift_study(cfg: &HarnessConfig) -> ExperimentResult {
    use qlrb_core::ImbalanceStats;
    let scenario = samoa_mini::LakeScenario::small();
    let inst = scenario.to_instance();
    let k1 = ProactLb
        .rebalance(&inst)
        .expect("proactlb")
        .matrix
        .num_migrated();
    let plans: Vec<(String, qlrb_core::MigrationMatrix)> = vec![
        (
            "Greedy".into(),
            Greedy.rebalance(&inst).expect("greedy").matrix,
        ),
        (
            "ProactLB".into(),
            ProactLb.rebalance(&inst).expect("proactlb").matrix,
        ),
        (
            "Q_CQM1_k1".into(),
            cfg.quantum(&inst, Variant::Reduced, k1, "Q_CQM1_k1")
                .rebalance(&inst)
                .expect("hybrid")
                .matrix,
        ),
    ];
    let id = qlrb_core::MigrationMatrix::identity(&inst);
    let cases = (0..5)
        .map(|k| {
            let t = scenario.time + k as f64 * scenario.lake.period() / 8.0;
            let baseline =
                ImbalanceStats::from_loads(&scenario.drifted_loads(&id, t)).imbalance_ratio;
            let rows = plans
                .iter()
                .map(|(name, plan)| {
                    let loads = scenario.drifted_loads(plan, t);
                    let stats = ImbalanceStats::from_loads(&loads);
                    MethodRow {
                        algorithm: name.clone(),
                        r_imb: stats.imbalance_ratio,
                        speedup: (1.0 + baseline) / (1.0 + stats.imbalance_ratio),
                        migrated: plan.num_migrated(),
                        migrated_per_proc: plan.migrated_per_proc(),
                        runtime_ms: 0.0,
                        qpu_ms: None,
                        peak_rss_mb: 0.0,
                    }
                })
                .collect();
            CaseResult {
                label: format!("t = {k}/8 T"),
                baseline_r_imb: baseline,
                rows,
            }
        })
        .collect();
    ExperimentResult {
        id: "extension_drift".into(),
        title: "Plan aging under the oscillating lake (rebalanced at t = 0)".into(),
        cases,
    }
}

/// Re-planning frequency under drifting load.
///
/// The lake oscillates through `iterations` BSP steps of `Δt = T/16` each;
/// a strategy re-runs ProactLB on the *current* section ownership every `R`
/// iterations (`R = 0` means never). Each BSP step costs its makespan
/// (`max` node load at that time, single-threaded nodes) plus, on re-plan
/// steps, a per-migration communication charge. Reported per strategy:
/// `r_imb` column = total cost normalized by the perfect-balance bound;
/// `migrated` = cumulative migrations.
pub fn replan_frequency(_cfg: &HarnessConfig) -> ExperimentResult {
    use qlrb_core::ImbalanceStats;

    let scenario = samoa_mini::LakeScenario::small();
    let n_sections = scenario.nodes * scenario.sections_per_node;
    let iterations = 16usize;
    let dt = scenario.lake.period() / 16.0;
    let migration_charge = 0.5; // cost units per migrated section

    // Per-iteration section costs, precomputed.
    let costs_at: Vec<Vec<f64>> = (0..iterations)
        .map(|i| {
            samoa_mini::LakeScenario {
                time: scenario.time + i as f64 * dt,
                ..scenario.clone()
            }
            .section_costs()
        })
        .collect();
    let perfect: f64 = costs_at
        .iter()
        .map(|c| c.iter().sum::<f64>() / scenario.nodes as f64)
        .sum();

    let run_strategy = |replan_every: usize| -> (f64, u64, f64) {
        // owner[s] = node currently holding section s.
        let mut owner: Vec<usize> = (0..n_sections)
            .map(|s| s / scenario.sections_per_node)
            .collect();
        let mut total_cost = 0.0;
        let mut total_migrations = 0u64;
        let mut r_imb_sum = 0.0;
        for (i, costs) in costs_at.iter().enumerate() {
            if replan_every > 0 && i % replan_every == 0 {
                // Uniformized snapshot of the current ownership.
                let mut loads = vec![0.0; scenario.nodes];
                let mut counts = vec![0u64; scenario.nodes];
                for (s, &o) in owner.iter().enumerate() {
                    loads[o] += costs[s];
                    counts[o] += 1;
                }
                // ProactLB-style: donors shed whole sections (their own
                // cheapest-average view) toward deficits.
                let l_avg = loads.iter().sum::<f64>() / scenario.nodes as f64;
                for donor in 0..scenario.nodes {
                    while loads[donor] > l_avg {
                        // Move the donor's last-owned section to the most
                        // deficient node.
                        let Some(sec) = (0..n_sections).rev().find(|&s| owner[s] == donor) else {
                            break;
                        };
                        let recv = (0..scenario.nodes)
                            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
                            .expect("nodes exist");
                        if recv == donor || loads[recv] + costs[sec] > l_avg + costs[sec] / 2.0 {
                            break;
                        }
                        owner[sec] = recv;
                        loads[donor] -= costs[sec];
                        loads[recv] += costs[sec];
                        total_migrations += 1;
                        total_cost += migration_charge;
                        let _ = counts;
                    }
                }
            }
            let mut loads = vec![0.0; scenario.nodes];
            for (s, &o) in owner.iter().enumerate() {
                loads[o] += costs[s];
            }
            total_cost += loads.iter().copied().fold(0.0f64, f64::max);
            r_imb_sum += ImbalanceStats::from_loads(&loads).imbalance_ratio;
        }
        (total_cost, total_migrations, r_imb_sum / iterations as f64)
    };

    let strategies: [(usize, &str); 4] = [
        (0, "never"),
        (8, "every 8 it."),
        (4, "every 4 it."),
        (1, "every it."),
    ];
    let rows = strategies
        .iter()
        .map(|&(every, name)| {
            let (cost, migrations, mean_r) = run_strategy(every);
            MethodRow {
                algorithm: name.into(),
                r_imb: cost / perfect,
                speedup: mean_r,
                migrated: migrations,
                migrated_per_proc: migrations as f64 / scenario.nodes as f64,
                runtime_ms: 0.0,
                qpu_ms: None,
                peak_rss_mb: 0.0,
            }
        })
        .collect();
    ExperimentResult {
        id: "extension_replan".into(),
        title: "Re-planning frequency under the oscillating lake \
                (r_imb column = total cost / perfect bound; speedup column = mean R_imb)"
            .into(),
        cases: vec![CaseResult {
            label: format!("{iterations} iterations, Δt = T/16"),
            baseline_r_imb: run_strategy(0).0 / perfect,
            rows,
        }],
    }
}

/// Soft migration penalty vs the paper's hard budget.
///
/// Sweeps the per-migration objective charge `μ` with the hard cap slack
/// (`k = N`): the solver trades each move against the imbalance it cures,
/// tracing the same balance-vs-churn frontier the k-sweep does, but without
/// a feasibility cliff.
pub fn soft_penalty_sweep(cfg: &HarnessConfig) -> ExperimentResult {
    let inst = crate::ablations::ablation_instance();
    let n_total = inst.num_tasks();
    // μ is charged per migrated task; the objective is a squared load sum,
    // so meaningful values scale with L_avg·w (one move's first-order gain).
    let stats = inst.stats();
    let w_max = inst.weights().iter().copied().fold(0.0f64, f64::max);
    let unit = 2.0 * stats.l_avg * w_max / inst.num_procs() as f64;
    let mus: [(f64, &str); 5] = [
        (0.0, "mu=0"),
        (unit * 0.1, "mu=0.1u"),
        (unit * 1.0, "mu=1u"),
        (unit * 10.0, "mu=10u"),
        (unit * 100.0, "mu=100u"),
    ];
    let rows = mus
        .iter()
        .map(|&(mu, name)| {
            let mut method = cfg.quantum(&inst, Variant::Reduced, n_total, name);
            method.migration_penalty = mu;
            run_method(&inst, &method)
        })
        .collect();
    ExperimentResult {
        id: "extension_soft_penalty".into(),
        title: "Soft per-migration penalty (k slack at N) — multi-objective variant".into(),
        cases: vec![CaseResult {
            label: "Imb.3".into(),
            baseline_r_imb: inst.stats().imbalance_ratio,
            rows,
        }],
    }
}

/// Robustness to cost-model error: plans are computed on *expected* task
/// weights, then executed on the simulated runtime with per-task noise of
/// increasing coefficient of variation — the paper's "incorrect cost model"
/// premise, quantified. `r_imb` column = achieved speedup under noise.
pub fn noise_robustness(cfg: &HarnessConfig) -> ExperimentResult {
    use chameleon_sim::{simulate, SimInput};

    let inst = crate::ablations::ablation_instance();
    let plans: Vec<(String, qlrb_core::MigrationMatrix)> = vec![
        (
            "Greedy".into(),
            Greedy.rebalance(&inst).expect("greedy").matrix,
        ),
        (
            "ProactLB".into(),
            ProactLb.rebalance(&inst).expect("proactlb").matrix,
        ),
        (
            "Q_CQM1".into(),
            cfg.quantum(&inst, Variant::Reduced, inst.num_tasks() / 4, "Q_CQM1")
                .rebalance(&inst)
                .expect("hybrid")
                .matrix,
        ),
    ];
    let sim_cfg = SimConfig {
        comp_threads: 1,
        comm_latency: 0.01,
        comm_cost_per_load: 0.02,
        iterations: 4,
    };
    let cases = [0.0f64, 0.2, 0.5, 1.0]
        .iter()
        .map(|&cv| {
            // The same noise realization hits baseline and every plan.
            let baseline = simulate(
                &SimInput::from_instance(&inst).perturbed(cfg.seed, cv),
                &sim_cfg,
            );
            let rows = plans
                .iter()
                .map(|(name, plan)| {
                    // A plan rejected by the simulator is a failure row,
                    // not a panic — the rest of the noise sweep survives.
                    let Ok(input) = SimInput::from_plan(&inst, plan) else {
                        return MethodRow::failure(name);
                    };
                    let run = simulate(&input.perturbed(cfg.seed, cv), &sim_cfg);
                    MethodRow {
                        algorithm: name.clone(),
                        r_imb: run.speedup_over(&baseline),
                        speedup: run.speedup_over(&baseline),
                        migrated: plan.num_migrated(),
                        migrated_per_proc: plan.migrated_per_proc(),
                        runtime_ms: 0.0,
                        qpu_ms: None,
                        peak_rss_mb: 0.0,
                    }
                })
                .collect();
            CaseResult {
                label: format!("cv = {cv}"),
                baseline_r_imb: inst.stats().imbalance_ratio,
                rows,
            }
        })
        .collect();
    ExperimentResult {
        id: "extension_noise".into(),
        title: "Robustness to cost-model error (achieved speedup under task-time noise)".into(),
        cases,
    }
}

/// Node scaling past the monolithic size ceiling: 1024–4096 nodes, where
/// the `Q_CQM1` formulation is orders of magnitude over the solver's
/// variable cap. Greedy and KK provide the classical bounds the
/// decomposition's optimality gap is measured against; the monolithic
/// attempt documents the structured failure (a zero-speedup row carrying
/// the size error in its name). Rows sample the process peak RSS so the
/// results file doubles as a memory-scaling record.
pub fn decompose_scaling(cfg: &HarnessConfig) -> ExperimentResult {
    decompose_scaling_cases(cfg, qlrb_workloads::node_scaling_large())
}

/// [`decompose_scaling`] over explicit `(nodes, instance)` cases, so tests
/// and the `check_decompose.sh` gate can run the identical pipeline on
/// affordable sizes.
pub fn decompose_scaling_cases(
    cfg: &HarnessConfig,
    instances: Vec<(usize, Instance)>,
) -> ExperimentResult {
    use crate::rows::peak_rss_mb;
    use qlrb_core::RebalanceError;

    let cases = instances
        .into_iter()
        .map(|(m, inst)| {
            let mut rows = Vec::new();
            // Classical bounds first; Greedy's migration count doubles as
            // the hybrid budget (the paper's k1 derivation).
            let mut greedy = run_method(&inst, &Greedy);
            greedy.peak_rss_mb = peak_rss_mb();
            let k = greedy.migrated.max(1);
            rows.push(greedy);
            let mut kk = run_method(&inst, &KarmarkarKarp);
            kk.peak_rss_mb = peak_rss_mb();
            rows.push(kk);

            // Monolithic attempt: buildable instances get a real row; past
            // the cap the structured size error becomes a failure row
            // (speedup 0) instead of sinking the sweep.
            let mono = cfg.quantum(&inst, Variant::Reduced, k, "Q_CQM1_mono");
            rows.push(match mono.rebalance(&inst) {
                Ok(out) => {
                    let mut row = MethodRow::from_outcome(&inst, "Q_CQM1_mono", &out);
                    row.peak_rss_mb = peak_rss_mb();
                    row
                }
                Err(RebalanceError::ModelTooLarge { .. }) => MethodRow::failure("Q_CQM1_mono"),
                Err(e) => panic!("monolithic Q_CQM1 failed unexpectedly: {e}"),
            });

            // The multilevel frontend solves every size.
            let ml = cfg.decomposing(&inst, Variant::Reduced, k, "Q_CQM1_ML");
            let out = ml.rebalance(&inst).expect("decomposing rebalancer");
            out.matrix
                .validate(&inst)
                .expect("decomposed plan must be feasible");
            let mut row = MethodRow::from_outcome(&inst, "Q_CQM1_ML", &out);
            row.peak_rss_mb = peak_rss_mb();
            rows.push(row);

            CaseResult {
                label: format!("{m} nodes"),
                baseline_r_imb: inst.stats().imbalance_ratio,
                rows,
            }
        })
        .collect();
    ExperimentResult {
        id: "extension_decompose".into(),
        title: "Multilevel decomposition past the monolithic size ceiling (gap vs Greedy/KK)"
            .into(),
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_scaling_pipeline_on_small_cases() {
        // The real sweep runs 1024–4096 nodes; exercise the identical
        // pipeline on an affordable 16-node case.
        let inst = Instance::uniform(10, (0..16).map(|i| 1.0 + (i % 4) as f64).collect()).unwrap();
        let exp = decompose_scaling_cases(&HarnessConfig::fast(), vec![(16, inst)]);
        assert_eq!(exp.id, "extension_decompose");
        let case = &exp.cases[0];
        assert_eq!(case.label, "16 nodes");
        for name in ["Greedy", "KK", "Q_CQM1_mono", "Q_CQM1_ML"] {
            assert!(case.row(name).is_some(), "missing row {name}");
        }
        let ml = case.row("Q_CQM1_ML").unwrap();
        assert!(ml.speedup > 0.0, "decomposed plan must be real");
        assert!(ml.r_imb <= case.baseline_r_imb + 1e-9);
        // 16 nodes is under the cap, so the monolithic companion is real
        // too (a zero speedup would mean the size error misfired).
        assert!(case.row("Q_CQM1_mono").unwrap().speedup > 0.0);
        // Peak RSS sampling works on Linux hosts.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(ml.peak_rss_mb > 0.0);
        }
    }

    #[test]
    fn soft_penalty_traces_the_frontier() {
        let exp = soft_penalty_sweep(&HarnessConfig::fast());
        let case = &exp.cases[0];
        let row = |name: &str| case.row(name).unwrap();
        // μ = 0 balances hard; huge μ freezes migration entirely.
        assert!(row("mu=0").r_imb < 0.2, "{}", row("mu=0").r_imb);
        assert_eq!(
            row("mu=100u").migrated,
            0,
            "prohibitive charge freezes moves"
        );
        // Monotone-ish: more charge, fewer moves (compare extremes).
        assert!(row("mu=10u").migrated <= row("mu=0").migrated);
    }

    #[test]
    fn noise_erodes_but_rarely_destroys_speedup() {
        let exp = noise_robustness(&HarnessConfig::fast());
        assert_eq!(exp.cases.len(), 4);
        let clean = &exp.cases[0];
        for row in &clean.rows {
            assert!(row.speedup > 1.5, "{}: {}", row.algorithm, row.speedup);
        }
        // Under heavy noise every plan keeps at least *some* benefit on
        // average... not guaranteed pointwise, so assert the mild case.
        let mild = &exp.cases[1];
        for row in &mild.rows {
            assert!(
                row.speedup > 1.0,
                "{} at cv=0.2: {}",
                row.algorithm,
                row.speedup
            );
        }
    }

    #[test]
    fn replanning_beats_never_and_respects_costs() {
        let exp = replan_frequency(&HarnessConfig::fast());
        let case = &exp.cases[0];
        let cost = |name: &str| case.row(name).unwrap().r_imb;
        let moved = |name: &str| case.row(name).unwrap().migrated;
        assert_eq!(moved("never"), 0);
        // Any replanning beats never on total cost here.
        assert!(cost("every 4 it.") < cost("never"));
        assert!(cost("every it.") < cost("never"));
        // More frequent replanning moves more sections.
        assert!(moved("every it.") >= moved("every 4 it."));
        assert!(moved("every 4 it.") >= moved("every 8 it."));
        // Mean residual imbalance shrinks with replan frequency.
        let mean_r = |name: &str| case.row(name).unwrap().speedup;
        assert!(mean_r("every it.") < mean_r("never"));
    }

    #[test]
    fn drift_study_shows_decay() {
        let exp = drift_study(&HarnessConfig::fast());
        assert_eq!(exp.cases.len(), 5);
        // At the design time every plan beats the baseline.
        let first = &exp.cases[0];
        for row in &first.rows {
            assert!(
                row.r_imb < first.baseline_r_imb,
                "{} should help at t = 0",
                row.algorithm
            );
        }
        // Somewhere later, some plan's advantage has shrunk substantially.
        let gap =
            |case: &CaseResult, name: &str| case.baseline_r_imb - case.row(name).unwrap().r_imb;
        let g0 = gap(first, "Greedy");
        let decayed = exp.cases[1..].iter().any(|c| gap(c, "Greedy") < 0.75 * g0);
        assert!(decayed, "Greedy's benefit never decayed");
    }

    #[test]
    fn optimum_is_the_floor() {
        let exp = optimality_gap(&HarnessConfig::fast());
        for case in &exp.cases {
            let opt = case.row("BnB-optimal").expect("optimal row");
            for row in &case.rows {
                // Compare L_max via R_imb (same L_avg for every method).
                assert!(
                    opt.r_imb <= row.r_imb + 1e-9,
                    "[{}] optimal ({}) beaten by {} ({})",
                    case.label,
                    opt.r_imb,
                    row.algorithm,
                    row.r_imb
                );
            }
        }
    }

    #[test]
    fn stealing_wins_free_loses_costly() {
        let exp = dynamic_comparison(&HarnessConfig::fast());
        let free = &exp.cases[0];
        let costly = &exp.cases[2];
        let ws_free = free.row("WorkStealing").unwrap().r_imb;
        let ws_costly = costly.row("WorkStealing").unwrap().r_imb;
        assert!(
            ws_free < ws_costly,
            "steal cost must hurt: {ws_free} vs {ws_costly}"
        );
        // With free steals, work stealing is essentially perfect.
        assert!(ws_free < 1.1, "free stealing near the bound: {ws_free}");
        // With costly steals, the proactive migrator beats it.
        let proact_costly = costly.row("ProactLB").unwrap().r_imb;
        assert!(
            proact_costly < ws_costly,
            "proactive ({proact_costly}) should beat costly stealing ({ws_costly})"
        );
    }
}
