//! Run-manifest assembly: turns per-case solve traces into the JSON
//! artifact regeneration binaries write next to their CSV/JSON outputs.
//!
//! The heavy lifting (schema, validation, medians) lives in
//! [`qlrb_telemetry`]; this module just stamps the harness configuration
//! into the snapshot and finalizes the timing table.

use qlrb_telemetry::{CaseTrace, ConfigSnapshot, HarnessSnapshot, RunManifest};

use crate::config::HarnessConfig;

/// The number of rayon worker threads this process actually samples with —
/// what [`RunManifest::rayon_threads`] should record. Exposed here so the
/// CLI and bench binaries (which do not depend on rayon directly) can
/// stamp their manifests with the same value the solver waves saw.
pub fn rayon_threads() -> usize {
    rayon::current_num_threads()
}

/// Builds a finalized manifest for a harness run: `command` names the entry
/// point (e.g. `"regen_table5"`), the config snapshot records the harness
/// knobs, and the timing medians are computed across `cases`.
pub fn assemble_manifest(command: &str, cfg: &HarnessConfig, cases: Vec<CaseTrace>) -> RunManifest {
    let mut manifest = RunManifest::new(
        command,
        ConfigSnapshot {
            harness: Some(HarnessSnapshot {
                seed: cfg.seed,
                reads: cfg.reads,
                sweeps: cfg.sweeps,
            }),
            ..Default::default()
        },
    );
    manifest.rayon_threads = rayon_threads();
    manifest.cases = cases;
    manifest.finalize();
    manifest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::run_paper_methods_traced;
    use qlrb_core::Instance;

    #[test]
    fn traced_run_assembles_a_valid_manifest() {
        let cfg = HarnessConfig::fast();
        let inst = Instance::uniform(10, vec![1.0, 2.0, 4.0]).unwrap();
        let (case, trace) = run_paper_methods_traced(&inst, &cfg, "t");
        // The traced rows match the untraced runner's on everything except
        // wall time (solve results are deterministic; clocks are not).
        let plain = crate::groups::run_paper_methods(&inst, &cfg, "t");
        assert_eq!(case.label, plain.label);
        assert_eq!(case.baseline_r_imb, plain.baseline_r_imb);
        assert_eq!(case.rows.len(), plain.rows.len());
        for (a, b) in case.rows.iter().zip(&plain.rows) {
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.r_imb, b.r_imb, "{}", a.algorithm);
            assert_eq!(a.speedup, b.speedup, "{}", a.algorithm);
            assert_eq!(a.migrated, b.migrated, "{}", a.algorithm);
            assert_eq!(a.qpu_ms, b.qpu_ms, "{}", a.algorithm);
        }
        // Every quantum method contributed a solve trace. With the
        // adaptive scheduler on, early termination may spend fewer reads
        // than requested — never more, never zero.
        assert_eq!(trace.methods.len(), 4);
        for m in &trace.methods {
            assert!(m.method.starts_with("Q_CQM"), "{}", m.method);
            assert!(!m.solve.reads.is_empty());
            assert!(m.solve.reads.len() <= m.solve.requested_reads);
            assert!(!m.solve.waves.is_empty());
            assert!(!m.solve.termination.is_empty());
        }

        let manifest = assemble_manifest("test_run", &cfg, vec![trace]);
        manifest.validate().expect("manifest is well-formed");
        assert_eq!(manifest.timing.len(), 4);
        assert_eq!(
            manifest.config.harness.map(|h| h.seed),
            Some(cfg.seed),
            "harness knobs are snapshotted"
        );
        // Timing medians match the recorded solves (single case → the
        // median is the one solve's cpu time).
        let back = RunManifest::from_json(&manifest.to_json_pretty()).unwrap();
        assert_eq!(back, manifest);
    }
}
