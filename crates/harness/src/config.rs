//! Harness configuration: sizing the hybrid solver per experiment.

use qlrb_anneal::hybrid::{HybridCqmSolver, LintMode, SamplerKind};
use qlrb_core::cqm::{logical_qubits, Variant};
use qlrb_core::{DecomposingRebalancer, Instance, QuantumRebalancer};

/// Controls how much effort the hybrid solver spends per quantum method.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Master seed (the whole experiment suite is deterministic given it).
    pub seed: u64,
    /// Reads per hybrid solve on small models.
    pub reads: usize,
    /// SA sweeps on small models; larger models are scaled down.
    pub sweeps: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            seed: 2024,
            reads: 6,
            sweeps: 800,
        }
    }
}

impl HarnessConfig {
    /// A drastically cheaper configuration for unit/integration tests.
    pub fn fast() -> Self {
        Self {
            seed: 7,
            reads: 3,
            sweeps: 120,
        }
    }

    /// Builds a `Q_CQM*` rebalancer sized for the instance: the sweep/read
    /// budget shrinks as the binary-variable count grows, mirroring how a
    /// fixed hybrid-solver time budget covers less search space on bigger
    /// problems (the effect behind the paper's Q_CQM2 instability at scale).
    pub fn quantum(
        &self,
        inst: &Instance,
        variant: Variant,
        k: u64,
        label: &str,
    ) -> QuantumRebalancer {
        self.quantum_seeded(inst, variant, k, label, Vec::new())
    }

    /// Like [`HarnessConfig::quantum`], with classical warm-start plans
    /// (the paper runs the classical methods first to derive `k`; their
    /// plans are legitimate candidates for the hybrid solver's classical
    /// frontend).
    pub fn quantum_seeded(
        &self,
        inst: &Instance,
        variant: Variant,
        k: u64,
        label: &str,
        seeds: Vec<qlrb_core::MigrationMatrix>,
    ) -> QuantumRebalancer {
        let vars = logical_qubits(variant, inst.num_procs() as u64, inst.tasks_per_proc());
        let shrink = if vars > 20_000 {
            8
        } else if vars > 5_000 {
            4
        } else if vars > 1_000 {
            2
        } else {
            1
        };
        let solver = HybridCqmSolver::builder()
            .num_reads((self.reads / if shrink >= 4 { 2 } else { 1 }).max(2))
            .sweeps((self.sweeps / shrink).max(60))
            .sqa_replicas(if shrink >= 4 { 6 } else { 10 })
            .seed(self.seed ^ (k.rotate_left(17)) ^ (vars as u64))
            .samplers(vec![SamplerKind::Sa, SamplerKind::Sqa, SamplerKind::Tabu])
            // The adaptive scheduler stops spending reads once the best
            // feasible plan plateaus (or presolve/lower-bound proves it
            // optimal) and re-allocates the remaining waves toward whichever
            // sampler is earning its proposals — deterministic per seed.
            .adaptive(true)
            .early_stop(true)
            // Experiment results must never come from a model the linter can
            // prove broken — refuse instead of silently sampling garbage.
            .lint(LintMode::Deny)
            .build()
            .expect("harness sizing always yields a valid configuration"); // qlrb-lint: allow(no-unwrap)
        QuantumRebalancer {
            variant,
            k,
            solver,
            label: Some(label.to_string()),
            extra_seed_plans: seeds,
            prune_tolerance: 0.02,
            migration_penalty: 0.0,
        }
    }

    /// Builds a multilevel decomposing rebalancer
    /// ([`DecomposingRebalancer`]) for instances past the monolithic size
    /// ceiling. The sub-solver is sized for the *coarse core* (≈ 32
    /// processes — the only model the portfolio actually compiles, whatever
    /// the fine width), so the budget does not shrink with the fine
    /// instance the way [`HarnessConfig::quantum`]'s does.
    pub fn decomposing(
        &self,
        inst: &Instance,
        variant: Variant,
        k: u64,
        label: &str,
    ) -> DecomposingRebalancer {
        let solver = HybridCqmSolver::builder()
            .num_reads((self.reads / 2).max(2))
            .sweeps((self.sweeps / 4).max(60))
            .sqa_replicas(6)
            .seed(self.seed ^ k.rotate_left(17) ^ (inst.num_procs() as u64))
            .samplers(vec![SamplerKind::Sa, SamplerKind::Sqa, SamplerKind::Tabu])
            .adaptive(true)
            .early_stop(true)
            .lint(LintMode::Deny)
            .decompose(true)
            .build()
            .expect("harness sizing always yields a valid configuration"); // qlrb-lint: allow(no-unwrap)
        let mut dr = DecomposingRebalancer::new(variant, k);
        dr.solver = solver;
        dr.label = Some(label.to_string());
        dr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_shrinks_with_problem_size() {
        let cfg = HarnessConfig::default();
        let small = Instance::uniform(10, vec![1.0; 4]).unwrap();
        let big = Instance::uniform(100, vec![1.0; 64]).unwrap();
        let qs = cfg.quantum(&small, Variant::Full, 5, "s");
        let qb = cfg.quantum(&big, Variant::Full, 5, "b");
        assert!(qb.solver.sweeps() < qs.solver.sweeps());
        assert!(qb.solver.num_reads() <= qs.solver.num_reads());
    }

    #[test]
    fn labels_pass_through() {
        let cfg = HarnessConfig::fast();
        let inst = Instance::uniform(10, vec![1.0; 4]).unwrap();
        let q = cfg.quantum(&inst, Variant::Reduced, 3, "Q_CQM1_k1");
        assert_eq!(q.label.as_deref(), Some("Q_CQM1_k1"));
        assert_eq!(q.k, 3);
    }

    #[test]
    fn harness_solvers_deny_broken_models() {
        let cfg = HarnessConfig::fast();
        let inst = Instance::uniform(10, vec![1.0; 4]).unwrap();
        let q = cfg.quantum(&inst, Variant::Reduced, 3, "q");
        assert_eq!(q.solver.lint_mode(), LintMode::Deny);
    }
}
