//! Figure rendering: series tables and ASCII charts for Figs. 3–5.
//!
//! The paper's figures are grouped bar charts of imbalance ratio and
//! speedup across cases. In a terminal we render (a) a *series table* —
//! one column per case, one row per algorithm — which is the exact data a
//! plotting script needs, and (b) an ASCII bar panel per case for quick
//! visual inspection.

use std::fmt::Write as _;

use crate::rows::{CaseResult, ExperimentResult};

/// Which metric a figure panel shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Imbalance ratio after rebalancing (left panels of Figs. 3–5).
    RImb,
    /// Speedup (right panels of Figs. 3–5).
    Speedup,
    /// Total migrated tasks (Tables III/IV).
    Migrated,
}

impl Metric {
    fn name(self) -> &'static str {
        match self {
            Metric::RImb => "R_imb",
            Metric::Speedup => "Speedup",
            Metric::Migrated => "# migrated",
        }
    }

    fn value(self, row: &crate::rows::MethodRow) -> f64 {
        match self {
            Metric::RImb => row.r_imb,
            Metric::Speedup => row.speedup,
            Metric::Migrated => row.migrated as f64,
        }
    }
}

fn algorithms(exp: &ExperimentResult) -> Vec<String> {
    let mut names = Vec::new();
    for case in &exp.cases {
        for r in &case.rows {
            if !names.contains(&r.algorithm) {
                names.push(r.algorithm.clone());
            }
        }
    }
    names
}

/// One row per algorithm, one column per case — the figure's underlying
/// series.
pub fn series_table(exp: &ExperimentResult, metric: Metric) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {} ({}) --", exp.id, metric.name());
    let _ = write!(out, "{:<14}", "Algorithm");
    for case in &exp.cases {
        let _ = write!(out, " {:>12}", case.label);
    }
    let _ = writeln!(out);
    for name in algorithms(exp) {
        let _ = write!(out, "{name:<14}");
        for case in &exp.cases {
            match case.row(&name) {
                Some(r) => {
                    let v = metric.value(r);
                    if metric == Metric::Migrated {
                        let _ = write!(out, " {:>12}", v as u64);
                    } else {
                        let _ = write!(out, " {v:>12.5}");
                    }
                }
                None => {
                    let _ = write!(out, " {:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Horizontal ASCII bars for one case and metric.
pub fn ascii_bars(case: &CaseResult, metric: Metric, width: usize) -> String {
    let width = width.max(10);
    let max = case
        .rows
        .iter()
        .map(|r| metric.value(r))
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut out = String::new();
    let _ = writeln!(out, "[{}] {}", case.label, metric.name());
    for r in &case.rows {
        let v = metric.value(r);
        let filled = ((v / max) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{:<14} |{}{}| {:.5}",
            r.algorithm,
            "█".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
            v
        );
    }
    out
}

/// Both figure panels (imbalance + speedup) for an experiment, as the paper
/// lays them out.
pub fn figure_panels(exp: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str(&series_table(exp, Metric::RImb));
    out.push('\n');
    out.push_str(&series_table(exp, Metric::Speedup));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rows::MethodRow;

    fn experiment() -> ExperimentResult {
        let row = |name: &str, v: f64| MethodRow {
            algorithm: name.into(),
            r_imb: v,
            speedup: 1.0 / (v + 0.5),
            migrated: (v * 100.0) as u64,
            migrated_per_proc: v,
            runtime_ms: 1.0,
            qpu_ms: None,
            peak_rss_mb: 0.0,
        };
        ExperimentResult {
            id: "fig".into(),
            title: "t".into(),
            cases: vec![
                CaseResult {
                    label: "c1".into(),
                    baseline_r_imb: 1.0,
                    rows: vec![row("Greedy", 0.1), row("KK", 0.2)],
                },
                CaseResult {
                    label: "c2".into(),
                    baseline_r_imb: 2.0,
                    rows: vec![row("Greedy", 0.3), row("KK", 0.4)],
                },
            ],
        }
    }

    #[test]
    fn series_table_has_case_columns() {
        let t = series_table(&experiment(), Metric::RImb);
        assert!(t.contains("c1"));
        assert!(t.contains("c2"));
        assert!(t.contains("Greedy"));
        assert!(t.contains("0.10000"));
        assert!(t.contains("0.40000"));
    }

    #[test]
    fn migrated_renders_as_integers() {
        let t = series_table(&experiment(), Metric::Migrated);
        assert!(t.contains("10"));
        assert!(!t.contains("10.00000"));
    }

    #[test]
    fn bars_scale_to_max() {
        let exp = experiment();
        let bars = ascii_bars(&exp.cases[0], Metric::RImb, 20);
        // KK (0.2) is the max → full bar; Greedy (0.1) half bar.
        let lines: Vec<&str> = bars.lines().collect();
        let count = |l: &str| l.matches('█').count();
        assert_eq!(count(lines[2]), 20);
        assert_eq!(count(lines[1]), 10);
    }

    #[test]
    fn panels_combine_both_metrics() {
        let p = figure_panels(&experiment());
        assert!(p.contains("R_imb"));
        assert!(p.contains("Speedup"));
    }
}
