#![forbid(unsafe_code)]
//! # qlrb-harness — regenerate every table and figure of the paper
//!
//! One runner per experiment of the evaluation section (§V):
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Table I (complexity & qubits) | [`groups::table1`] |
//! | Fig. 3 + Table II (imbalance levels) | [`groups::varied_imbalance`] |
//! | Fig. 4 + Table III (node scaling) | [`groups::varied_procs`] |
//! | Fig. 5 + Table IV (task scaling) | [`groups::varied_tasks`] |
//! | Table V (sam(oa)² oscillating lake) | [`groups::samoa_case`] |
//! | k-sweep / penalty / sampler ablations (§VI future work) | [`ablations`] |
//!
//! Every runner executes the paper's seven methods — `Greedy`, `KK`,
//! `ProactLB`, `Q_CQM1_k1`, `Q_CQM1_k2`, `Q_CQM2_k1`, `Q_CQM2_k2` — where
//! `k1`/`k2` are derived at run time from ProactLB's and Greedy's migration
//! counts, exactly as in §V-B. Results come back as serializable rows plus
//! paper-style text tables; [`figures`] renders the figure panels as
//! aligned series tables and ASCII charts.

pub mod ablations;
pub mod config;
pub mod extensions;
pub mod figures;
pub mod groups;
pub mod manifest;
pub mod rows;
pub mod runtime;

pub use config::HarnessConfig;
pub use groups::{
    samoa_case, samoa_case_traced, table1, varied_imbalance, varied_procs, varied_tasks,
};
pub use manifest::{assemble_manifest, rayon_threads};
pub use rows::{CaseResult, ExperimentResult, MethodRow};
