//! Executing plans on the simulated Chameleon runtime.
//!
//! The paper computes speedup analytically from `L_max` ratios. Here a plan
//! can additionally be *executed* on the discrete-event runtime, which
//! charges real communication costs for each migrated task — quantifying
//! the overhead the paper's "number of migrated tasks" column proxies.
//!
//! An invalid plan is reported as an error, never a panic: experiment
//! drivers record the failure as a row and keep the rest of the sweep.

use chameleon_sim::{simulate, SimConfig, SimInput, SimReport};
use qlrb_core::{Instance, MigrationMatrix, RebalanceError};

/// Analytic vs achieved speedup of one plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeComparison {
    /// `L_max(before) / L_max(after)` — the paper's metric.
    pub analytic_speedup: f64,
    /// Makespan ratio measured on the simulated runtime, including
    /// migration communication.
    pub achieved_speedup: f64,
    /// Communication-thread busy time attributable to the plan's
    /// migrations (summed over nodes, iteration 0).
    pub migration_comm_time: f64,
}

/// Runs baseline and plan through the simulator under `sim_cfg`.
///
/// # Errors
/// Returns [`RebalanceError::InvalidPlan`] if `plan` fails validation
/// against `inst` — the caller decides whether that aborts the experiment
/// or becomes a failure row.
pub fn execute_plan(
    inst: &Instance,
    plan: &MigrationMatrix,
    sim_cfg: &SimConfig,
) -> Result<RuntimeComparison, RebalanceError> {
    let baseline = simulate(&SimInput::from_instance(inst), sim_cfg);
    let rebalanced = simulate(&SimInput::from_plan(inst, plan)?, sim_cfg);
    Ok(RuntimeComparison {
        analytic_speedup: inst.speedup(plan),
        achieved_speedup: rebalanced.speedup_over(&baseline),
        migration_comm_time: rebalanced.iterations[0]
            .nodes
            .iter()
            .map(|n| n.comm_busy)
            .sum(),
    })
}

/// Convenience: the full report pair for custom analysis.
///
/// # Errors
/// Returns [`RebalanceError::InvalidPlan`] if `plan` fails validation
/// against `inst`.
pub fn execute_plan_reports(
    inst: &Instance,
    plan: &MigrationMatrix,
    sim_cfg: &SimConfig,
) -> Result<(SimReport, SimReport), RebalanceError> {
    Ok((
        simulate(&SimInput::from_instance(inst), sim_cfg),
        simulate(&SimInput::from_plan(inst, plan)?, sim_cfg),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_classical::ProactLb;
    use qlrb_core::Rebalancer;

    #[test]
    fn analytic_config_matches_paper_metric() {
        let inst = Instance::uniform(20, vec![1.0, 2.0, 5.0, 8.0]).unwrap();
        let plan = ProactLb.rebalance(&inst).unwrap().matrix;
        let cmp = execute_plan(&inst, &plan, &SimConfig::analytic()).expect("valid plan");
        assert!(
            (cmp.analytic_speedup - cmp.achieved_speedup).abs() < 1e-9,
            "with free communication the simulator reproduces the L_max ratio: \
             {} vs {}",
            cmp.analytic_speedup,
            cmp.achieved_speedup
        );
        assert_eq!(cmp.migration_comm_time, 0.0);
    }

    #[test]
    fn communication_costs_eat_into_speedup() {
        let inst = Instance::uniform(20, vec![1.0, 2.0, 5.0, 8.0]).unwrap();
        let plan = ProactLb.rebalance(&inst).unwrap().matrix;
        // Expensive enough that iteration 0 is communication-bound: the
        // donor sheds ~10 tasks at 2 + 8 time units each, exceeding the
        // balanced compute makespan.
        let costly = SimConfig {
            comp_threads: 1,
            comm_latency: 2.0,
            comm_cost_per_load: 1.0,
            iterations: 1,
        };
        let cmp = execute_plan(&inst, &plan, &costly).expect("valid plan");
        assert!(cmp.migration_comm_time > 0.0);
        assert!(
            cmp.achieved_speedup <= cmp.analytic_speedup + 1e-9,
            "communication can only reduce the analytic speedup"
        );
        // Amortized over many iterations the migration pays off again.
        let amortized = SimConfig {
            iterations: 50,
            ..costly
        };
        let cmp50 = execute_plan(&inst, &plan, &amortized).expect("valid plan");
        assert!(cmp50.achieved_speedup > cmp.achieved_speedup);
    }

    #[test]
    fn invalid_plan_is_an_error_not_a_panic() {
        // A plan sized for a different instance must surface as a
        // recoverable error so sweeps can record it and continue.
        let inst = Instance::uniform(20, vec![1.0, 2.0, 5.0, 8.0]).unwrap();
        let foreign = qlrb_core::MigrationMatrix::zeros(7);
        let err = execute_plan(&inst, &foreign, &SimConfig::analytic()).unwrap_err();
        assert!(matches!(err, RebalanceError::InvalidPlan(_)), "{err}");
        let err = execute_plan_reports(&inst, &foreign, &SimConfig::analytic()).unwrap_err();
        assert!(matches!(err, RebalanceError::InvalidPlan(_)), "{err}");
    }
}
