//! Ablations the paper calls out as open questions (§VI).
//!
//! * **k-sweep** — "future work will explore the impact of the upper bound
//!   `k` of migrated tasks": sweep `k` over fractions of `N` and watch the
//!   balance-vs-migration trade-off.
//! * **Penalty encoding** — the paper notes inequality constraints are hard
//!   to represent and cites unbalanced penalization \[24\]: compare
//!   violation-quadratic, unbalanced, and slack-variable encodings.
//! * **Sampler** — isolate each portfolio member (SA / SQA / tabu) to see
//!   which solver actually earns the samples.

// qlrb-lint: allow-file(no-unwrap) — experiment driver: a failed baseline or
// invalid plan must abort the run loudly rather than skew the tables.

use qlrb_anneal::hybrid::SamplerKind;
use qlrb_core::cqm::Variant;
use qlrb_core::Instance;
use qlrb_model::penalty::PenaltyStyle;

use crate::config::HarnessConfig;
use crate::rows::{run_method, CaseResult, ExperimentResult};

/// A mid-spread MxM instance (the Imb.3 shape) used by all ablations.
pub fn ablation_instance() -> Instance {
    qlrb_workloads::groups::imbalance_levels()
        .into_iter()
        .find(|(label, _)| label == "Imb.3")
        .expect("Imb.3 exists")
        .1
}

/// Sweeps the migration budget `k` for both CQM variants.
pub fn k_sweep(cfg: &HarnessConfig) -> ExperimentResult {
    let inst = ablation_instance();
    let n_total = inst.num_tasks();
    let fractions: [(u64, &str); 6] = [
        (0, "k=0"),
        (n_total / 64, "k=N/64"),
        (n_total / 16, "k=N/16"),
        (n_total / 8, "k=N/8"),
        (n_total / 4, "k=N/4"),
        (n_total / 2, "k=N/2"),
    ];
    let cases = fractions
        .iter()
        .map(|&(k, label)| {
            let rows = [Variant::Reduced, Variant::Full]
                .iter()
                .map(|&variant| {
                    let name = format!("{}_{}", variant.label(), label);
                    let method = cfg.quantum(&inst, variant, k, &name);
                    run_method(&inst, &method)
                })
                .collect();
            CaseResult {
                label: label.to_string(),
                baseline_r_imb: inst.stats().imbalance_ratio,
                rows,
            }
        })
        .collect();
    ExperimentResult {
        id: "ablation_k".into(),
        title: "Migration-budget sweep on the Imb.3 instance".into(),
        cases,
    }
}

/// Compares the three inequality-penalty encodings on `Q_CQM1`.
pub fn penalty_ablation(cfg: &HarnessConfig) -> ExperimentResult {
    let inst = ablation_instance();
    let k = inst.num_tasks() / 4;
    let styles: [(PenaltyStyle, &str); 3] = [
        (PenaltyStyle::ViolationQuadratic, "violation-quadratic"),
        (
            PenaltyStyle::Unbalanced {
                l1: 0.96,
                l2: 0.0331,
            },
            "unbalanced",
        ),
        (PenaltyStyle::Slack, "slack-variables"),
    ];
    let rows = styles
        .iter()
        .map(|&(style, name)| {
            let mut method = cfg.quantum(&inst, Variant::Reduced, k, name);
            method.solver = method
                .solver
                .to_builder()
                .style(style)
                .build()
                .expect("style override keeps the config valid");
            run_method(&inst, &method)
        })
        .collect();
    ExperimentResult {
        id: "ablation_penalty".into(),
        title: "Inequality-penalty encodings (Q_CQM1, k = N/4)".into(),
        cases: vec![CaseResult {
            label: "Imb.3".into(),
            baseline_r_imb: inst.stats().imbalance_ratio,
            rows,
        }],
    }
}

/// Compares the paper's bounded-coefficient count encoding against plain
/// binary (which can represent counts exceeding `n`). Both run through the
/// same hybrid solver on the same `Q_CQM2` formulation; the paper's claim
/// (§IV) is that the bounded encoding "ensures the solution's correctness"
/// structurally — plain binary leans on the conservation constraints alone.
pub fn encoding_ablation(cfg: &HarnessConfig) -> ExperimentResult {
    use qlrb_core::cqm::LrpCqm;
    use qlrb_model::encoding::CoefficientSet;

    let inst = ablation_instance();
    let n = inst.tasks_per_proc();
    let k = inst.num_tasks() / 4;
    let encodings: [(CoefficientSet, &str); 2] = [
        (CoefficientSet::new(n), "bounded-coefficient"),
        (CoefficientSet::new_plain_binary(n), "plain-binary"),
    ];
    let rows = encodings
        .into_iter()
        .map(|(coeffs, name)| {
            let lrp = LrpCqm::build_with_encoding(&inst, Variant::Full, k, coeffs)
                .expect("encoding matches instance");
            // Raw solver view: how many reads end feasible. Both encodings
            // get the same classical frontend seeds (identity + greedy peak
            // shaving) — cold random starts satisfy the conservation
            // equalities for neither encoding, which says nothing about the
            // encodings themselves.
            let seeds: Vec<Vec<u8>> = [
                qlrb_core::MigrationMatrix::identity(&inst),
                qlrb_core::solve::greedy_seed_plan(&inst, k),
            ]
            .iter()
            .map(|p| {
                lrp.encode_plan(p)
                    .expect("plans encode in any count encoding")
            })
            .collect();
            let solver = cfg.quantum(&inst, Variant::Full, k, name).solver;
            let started = std::time::Instant::now();
            let set = solver.solve(&lrp.cqm, &seeds);
            let elapsed = started.elapsed();
            let sum = set.summary();
            let (feasible, total) = (sum.num_feasible, sum.num_samples);
            let decoded = set
                .best_feasible()
                .and_then(|s| lrp.decode(&s.state).ok())
                .filter(|m| m.validate(&inst).is_ok());
            let (r_imb, speedup, migrated, per_proc) = match &decoded {
                Some(m) => (
                    inst.stats_after(m).imbalance_ratio,
                    inst.speedup(m),
                    m.num_migrated(),
                    m.migrated_per_proc(),
                ),
                None => (inst.stats().imbalance_ratio, 1.0, 0, 0.0),
            };
            crate::rows::MethodRow {
                algorithm: format!("{name} ({feasible}/{total} feasible)"),
                r_imb,
                speedup,
                migrated,
                migrated_per_proc: per_proc,
                runtime_ms: elapsed.as_secs_f64() * 1e3,
                qpu_ms: Some(set.timing.qpu.as_secs_f64() * 1e3),
                peak_rss_mb: 0.0,
            }
        })
        .collect();
    ExperimentResult {
        id: "ablation_encoding".into(),
        title: "Count encodings on Q_CQM2 (k = N/4, identity-seeded)".into(),
        cases: vec![CaseResult {
            label: "Imb.3".into(),
            baseline_r_imb: inst.stats().imbalance_ratio,
            rows,
        }],
    }
}

/// Isolates each sampler of the hybrid portfolio.
pub fn sampler_ablation(cfg: &HarnessConfig) -> ExperimentResult {
    let inst = ablation_instance();
    let k = inst.num_tasks() / 4;
    let samplers: [(SamplerKind, &str); 4] = [
        (SamplerKind::Sa, "SA-only"),
        (SamplerKind::Sqa, "SQA-only"),
        (SamplerKind::Tabu, "Tabu-only"),
        (SamplerKind::Pt, "PT-only"),
    ];
    let rows = samplers
        .iter()
        .map(|&(kind, name)| {
            let mut method = cfg.quantum(&inst, Variant::Reduced, k, name);
            method.solver = method
                .solver
                .to_builder()
                .samplers(vec![kind])
                .build()
                .expect("single-sampler portfolio is valid");
            run_method(&inst, &method)
        })
        .collect();
    ExperimentResult {
        id: "ablation_sampler".into(),
        title: "Portfolio members in isolation (Q_CQM1, k = N/4)".into(),
        cases: vec![CaseResult {
            label: "Imb.3".into(),
            baseline_r_imb: inst.stats().imbalance_ratio,
            rows,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_zero_forces_identity() {
        let cfg = HarnessConfig::fast();
        let exp = k_sweep(&cfg);
        let k0 = &exp.cases[0];
        for row in &k0.rows {
            assert_eq!(row.migrated, 0, "{}", row.algorithm);
            assert!((row.r_imb - k0.baseline_r_imb).abs() < 1e-9);
        }
    }

    #[test]
    fn larger_budgets_never_hurt_balance() {
        let cfg = HarnessConfig::fast();
        let exp = k_sweep(&cfg);
        // Budgets are monotone; the achieved imbalance should broadly fall.
        // (Stochastic solver: compare first vs last rather than pairwise.)
        let first = exp.cases.first().unwrap().rows[0].r_imb;
        let last = exp.cases.last().unwrap().rows[0].r_imb;
        assert!(last < first, "k=N/2 ({last}) should beat k=0 ({first})");
    }

    #[test]
    fn penalty_ablation_all_styles_feasible() {
        let exp = penalty_ablation(&HarnessConfig::fast());
        let case = &exp.cases[0];
        assert_eq!(case.rows.len(), 3);
        let k = ablation_instance().num_tasks() / 4;
        for row in &case.rows {
            assert!(row.migrated <= k, "{} exceeded budget", row.algorithm);
            assert!(row.r_imb <= case.baseline_r_imb + 1e-9);
        }
    }

    #[test]
    fn encoding_ablation_decodes_valid_plans() {
        let exp = encoding_ablation(&HarnessConfig::fast());
        let case = &exp.cases[0];
        assert_eq!(case.rows.len(), 2);
        for row in &case.rows {
            assert!(row.algorithm.contains("feasible"));
            // A decodable feasible plan was found with either encoding
            // (the plain-binary one via constraints alone).
            assert!(row.r_imb <= case.baseline_r_imb + 1e-9, "{}", row.algorithm);
        }
    }

    #[test]
    fn sampler_ablation_runs_each_member() {
        let exp = sampler_ablation(&HarnessConfig::fast());
        let names: Vec<&str> = exp.cases[0]
            .rows
            .iter()
            .map(|r| r.algorithm.as_str())
            .collect();
        assert_eq!(names, vec!["SA-only", "SQA-only", "Tabu-only", "PT-only"]);
    }
}
