//! Result rows and paper-style table formatting.

// qlrb-lint: allow-file(no-unwrap) — experiment driver: a failed baseline or
// invalid plan must abort the run loudly rather than skew the tables.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use qlrb_core::{Instance, LrpCqm, QuantumRebalancer, RebalanceOutcome, Rebalancer};

/// One method's result on one instance — the union of every column the
/// paper's tables report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRow {
    /// Method name (`Greedy`, `Q_CQM1_k1`, …).
    pub algorithm: String,
    /// Imbalance ratio after rebalancing.
    pub r_imb: f64,
    /// `L_max(baseline) / L_max(after)`.
    pub speedup: f64,
    /// Total migrated tasks.
    pub migrated: u64,
    /// Average migrated tasks per process.
    pub migrated_per_proc: f64,
    /// Method runtime (CPU side), milliseconds.
    pub runtime_ms: f64,
    /// Simulated QPU access time, milliseconds (hybrid methods only).
    pub qpu_ms: Option<f64>,
    /// Process peak resident set (`VmHWM`) in MiB when the row was
    /// produced; `0.0` where it is not sampled (classical sweeps,
    /// non-Linux hosts, pre-v7 results files). A process-wide high-water
    /// mark, so within one sweep it is monotone across rows.
    #[serde(default)]
    pub peak_rss_mb: f64,
}

/// The process's peak resident set size in MiB, from `/proc/self/status`
/// (`VmHWM`). Returns `0.0` when the field is unavailable.
pub fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

impl MethodRow {
    /// A sentinel row for a method whose plan could not be executed (e.g.
    /// it failed validation against the instance). All metrics are zero —
    /// finite, so the row still serializes and tabulates — and a speedup of
    /// `0` is impossible for a real run, which makes failures easy to spot
    /// in tables and scripts.
    pub fn failure(algorithm: &str) -> Self {
        Self {
            algorithm: algorithm.to_string(),
            r_imb: 0.0,
            speedup: 0.0,
            migrated: 0,
            migrated_per_proc: 0.0,
            runtime_ms: 0.0,
            qpu_ms: None,
            peak_rss_mb: 0.0,
        }
    }

    /// Derives a row from a rebalancing outcome.
    pub fn from_outcome(inst: &Instance, name: &str, out: &RebalanceOutcome) -> Self {
        let after = inst.stats_after(&out.matrix);
        Self {
            algorithm: name.to_string(),
            r_imb: after.imbalance_ratio,
            speedup: inst.speedup(&out.matrix),
            migrated: out.matrix.num_migrated(),
            migrated_per_proc: out.matrix.migrated_per_proc(),
            runtime_ms: out.runtime.as_secs_f64() * 1e3,
            qpu_ms: out.qpu_time.map(|d| d.as_secs_f64() * 1e3),
            peak_rss_mb: 0.0,
        }
    }
}

/// Runs a method and converts straight to a row, re-validating the plan.
pub fn run_method(inst: &Instance, method: &dyn Rebalancer) -> MethodRow {
    let out = method
        .rebalance(inst)
        .unwrap_or_else(|e| panic!("{} failed: {e}", method.name()));
    out.matrix
        .validate(inst)
        .unwrap_or_else(|e| panic!("{} returned an invalid plan: {e}", method.name()));
    MethodRow::from_outcome(inst, &method.name(), &out)
}

/// Like [`run_method`], but solves against a pre-built base CQM shared
/// across budget variants (see [`QuantumRebalancer::rebalance_with_base`]):
/// only the budget right-hand side is rewritten per call, so the quadratic
/// objective is compiled once per formulation instead of once per method.
pub fn run_method_with_base(
    inst: &Instance,
    method: &QuantumRebalancer,
    base: &LrpCqm,
) -> MethodRow {
    let out = method
        .rebalance_with_base(inst, base)
        .unwrap_or_else(|e| panic!("{} failed: {e}", method.name()));
    out.matrix
        .validate(inst)
        .unwrap_or_else(|e| panic!("{} returned an invalid plan: {e}", method.name()));
    MethodRow::from_outcome(inst, &method.name(), &out)
}

/// One experiment case: a labelled instance and all method rows on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Case label (`Imb.3`, `16 nodes`, `512 tasks`, …).
    pub label: String,
    /// Baseline imbalance ratio (no rebalancing).
    pub baseline_r_imb: f64,
    /// Per-method rows.
    pub rows: Vec<MethodRow>,
}

impl CaseResult {
    /// The row for a given algorithm, if present.
    pub fn row(&self, algorithm: &str) -> Option<&MethodRow> {
        self.rows.iter().find(|r| r.algorithm == algorithm)
    }
}

/// A whole experiment (one paper table/figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (`table2`, `fig4_table3`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// All cases.
    pub cases: Vec<CaseResult>,
}

impl ExperimentResult {
    /// Formats every case as an aligned text table (paper-table style).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for case in &self.cases {
            let _ = writeln!(
                out,
                "\n[{}]  baseline R_imb = {:.5}",
                case.label, case.baseline_r_imb
            );
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>9} {:>10} {:>10} {:>12} {:>9}",
                "Algorithm", "R_imb", "Speedup", "# mig.", "mig/proc", "Runtime(ms)", "QPU(ms)"
            );
            for r in &case.rows {
                let qpu = r
                    .qpu_ms
                    .map(|q| format!("{q:.1}"))
                    .unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "{:<14} {:>10.5} {:>9.4} {:>10} {:>10.2} {:>12.4} {:>9}",
                    r.algorithm,
                    r.r_imb,
                    r.speedup,
                    r.migrated,
                    r.migrated_per_proc,
                    r.runtime_ms,
                    qpu
                );
            }
        }
        out
    }

    /// Aggregates a column across cases per algorithm — the form of the
    /// paper's Table II ("average over the 5 imbalance cases").
    pub fn averages(&self) -> Vec<MethodRow> {
        let mut names: Vec<String> = Vec::new();
        for case in &self.cases {
            for r in &case.rows {
                if !names.contains(&r.algorithm) {
                    names.push(r.algorithm.clone());
                }
            }
        }
        names
            .iter()
            .map(|name| {
                let rows: Vec<&MethodRow> = self.cases.iter().filter_map(|c| c.row(name)).collect();
                let n = rows.len().max(1) as f64;
                let any_qpu = rows.iter().any(|r| r.qpu_ms.is_some());
                MethodRow {
                    algorithm: name.clone(),
                    r_imb: rows.iter().map(|r| r.r_imb).sum::<f64>() / n,
                    speedup: rows.iter().map(|r| r.speedup).sum::<f64>() / n,
                    migrated: (rows.iter().map(|r| r.migrated).sum::<u64>() as f64 / n).round()
                        as u64,
                    migrated_per_proc: rows.iter().map(|r| r.migrated_per_proc).sum::<f64>() / n,
                    runtime_ms: rows.iter().map(|r| r.runtime_ms).sum::<f64>() / n,
                    qpu_ms: any_qpu.then(|| {
                        rows.iter().filter_map(|r| r.qpu_ms).sum::<f64>()
                            / rows.iter().filter(|r| r.qpu_ms.is_some()).count().max(1) as f64
                    }),
                    peak_rss_mb: rows.iter().map(|r| r.peak_rss_mb).fold(0.0, f64::max),
                }
            })
            .collect()
    }

    /// Serializes to pretty JSON (for EXPERIMENTS.md bookkeeping).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("rows serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, migrated: u64) -> MethodRow {
        MethodRow {
            algorithm: name.into(),
            r_imb: 0.1,
            speedup: 2.0,
            migrated,
            migrated_per_proc: migrated as f64 / 4.0,
            runtime_ms: 1.0,
            qpu_ms: name.starts_with("Q_").then_some(32.0),
            peak_rss_mb: 0.0,
        }
    }

    fn experiment() -> ExperimentResult {
        ExperimentResult {
            id: "t".into(),
            title: "test".into(),
            cases: vec![
                CaseResult {
                    label: "a".into(),
                    baseline_r_imb: 1.0,
                    rows: vec![row("Greedy", 10), row("Q_CQM1_k1", 4)],
                },
                CaseResult {
                    label: "b".into(),
                    baseline_r_imb: 2.0,
                    rows: vec![row("Greedy", 20), row("Q_CQM1_k1", 6)],
                },
            ],
        }
    }

    #[test]
    fn averages_per_algorithm() {
        let avg = experiment().averages();
        assert_eq!(avg.len(), 2);
        let greedy = avg.iter().find(|r| r.algorithm == "Greedy").unwrap();
        assert_eq!(greedy.migrated, 15);
        assert!(greedy.qpu_ms.is_none());
        let q = avg.iter().find(|r| r.algorithm == "Q_CQM1_k1").unwrap();
        assert_eq!(q.migrated, 5);
        assert_eq!(q.qpu_ms, Some(32.0));
    }

    #[test]
    fn table_renders_all_cases() {
        let t = experiment().to_table();
        assert!(t.contains("[a]"));
        assert!(t.contains("[b]"));
        assert!(t.contains("Greedy"));
        assert!(t.contains("Q_CQM1_k1"));
    }

    #[test]
    fn json_roundtrip() {
        let e = experiment();
        let back: ExperimentResult = serde_json::from_str(&e.to_json()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn rows_from_outcome() {
        use qlrb_core::algorithm::NoOp;
        let inst = Instance::uniform(5, vec![1.0, 3.0]).unwrap();
        let r = run_method(&inst, &NoOp);
        assert_eq!(r.algorithm, "Baseline");
        assert_eq!(r.migrated, 0);
        assert_eq!(r.speedup, 1.0);
        assert!(r.qpu_ms.is_none());
    }
}
