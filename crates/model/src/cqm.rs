//! Constrained quadratic models over binary variables.
//!
//! A [`Cqm`] mirrors what the paper submits to D-Wave's Leap hybrid CQM
//! solver: binary variables, a quadratic objective, and linear constraints
//! with `=` or `≤` sense. The objective is represented structurally as a
//! weighted sum of squared linear expressions plus an optional plain linear
//! part, because that is exactly the shape of the LRP objective
//! `Σ_i (L'_i − L_avg)²` — and the structure is what enables O(1)-ish
//! incremental flip deltas in [`crate::eval`].

use serde::{Deserialize, Serialize};

use crate::expr::{LinearExpr, Var};

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// `expr = rhs`
    Eq,
    /// `expr ≤ rhs`
    Le,
}

/// A linear constraint `expr (sense) rhs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinearExpr,
    /// Sense (`=` or `≤`).
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
    /// Human-readable label, e.g. `"conserve[j=3]"`.
    pub label: String,
}

impl Constraint {
    /// Signed violation of the constraint for a binary assignment:
    /// `0.0` when satisfied, positive magnitude of the violation otherwise.
    ///
    /// Floating-point tolerance: values within `1e-9 · (1 + |rhs|)` of the
    /// boundary count as satisfied, which matters because constraint sums are
    /// accumulated incrementally during annealing.
    pub fn violation(&self, state: &[u8]) -> f64 {
        let s = self.expr.value(state);
        violation_of(self.sense, s, self.rhs)
    }
}

/// Violation magnitude for a computed lhs sum `s` against `sense rhs`.
#[inline]
pub fn violation_of(sense: Sense, s: f64, rhs: f64) -> f64 {
    let tol = 1e-9 * (1.0 + rhs.abs());
    match sense {
        Sense::Eq => {
            let d = (s - rhs).abs();
            if d <= tol {
                0.0
            } else {
                d
            }
        }
        Sense::Le => {
            let d = s - rhs;
            if d <= tol {
                0.0
            } else {
                d
            }
        }
    }
}

/// One objective term `weight · (expr − target)²`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SquaredTerm {
    /// The linear expression being squared.
    pub expr: LinearExpr,
    /// The value the expression is pulled toward.
    pub target: f64,
    /// Non-negative weight.
    pub weight: f64,
}

impl SquaredTerm {
    /// Objective contribution for a binary assignment.
    pub fn value(&self, state: &[u8]) -> f64 {
        let d = self.expr.value(state) - self.target;
        self.weight * d * d
    }
}

/// A constrained quadratic model over binary variables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cqm {
    num_vars: usize,
    /// Objective: `Σ weight·(expr − target)²`.
    pub squared_terms: Vec<SquaredTerm>,
    /// Plus an optional plain linear objective part.
    pub linear_objective: LinearExpr,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

impl Cqm {
    /// Creates a model with `num_vars` binary variables and no terms.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            ..Default::default()
        }
    }

    /// Number of binary variables (= logical qubits in the paper's counting,
    /// assuming inequality constraints need no ancillas).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Appends `count` fresh variables, returning the index of the first.
    pub fn add_vars(&mut self, count: usize) -> Var {
        let first = Var(self.num_vars as u32);
        self.num_vars += count;
        first
    }

    /// Adds an objective term `weight·(expr − target)²`.
    ///
    /// # Panics
    /// Panics if `weight < 0` (the evaluators assume a convex penalty shape).
    pub fn add_squared_term(&mut self, mut expr: LinearExpr, target: f64, weight: f64) {
        assert!(weight >= 0.0, "squared-term weight must be non-negative");
        expr.compress();
        self.squared_terms.push(SquaredTerm {
            expr,
            target,
            weight,
        });
    }

    /// Adds a constraint.
    pub fn add_constraint(
        &mut self,
        mut expr: LinearExpr,
        sense: Sense,
        rhs: f64,
        label: impl Into<String>,
    ) {
        expr.compress();
        self.constraints.push(Constraint {
            expr,
            sense,
            rhs,
            label: label.into(),
        });
    }

    /// The objective value (squared terms + linear part) for an assignment.
    pub fn objective(&self, state: &[u8]) -> f64 {
        let sq: f64 = self.squared_terms.iter().map(|t| t.value(state)).sum();
        sq + self.linear_objective.value(state)
    }

    /// Violations of every constraint for an assignment.
    pub fn violations(&self, state: &[u8]) -> Vec<f64> {
        self.constraints
            .iter()
            .map(|c| c.violation(state))
            .collect()
    }

    /// Whether an assignment satisfies every constraint.
    pub fn is_feasible(&self, state: &[u8]) -> bool {
        self.constraints.iter().all(|c| c.violation(state) == 0.0)
    }

    /// Total violation magnitude (0 iff feasible).
    pub fn total_violation(&self, state: &[u8]) -> f64 {
        self.constraints.iter().map(|c| c.violation(state)).sum()
    }

    /// Number of equality constraints.
    pub fn num_eq_constraints(&self) -> usize {
        self.constraints
            .iter()
            .filter(|c| c.sense == Sense::Eq)
            .count()
    }

    /// Number of inequality constraints.
    pub fn num_le_constraints(&self) -> usize {
        self.constraints
            .iter()
            .filter(|c| c.sense == Sense::Le)
            .count()
    }

    /// A conservative scale for penalty weights: a bound on how much the
    /// objective can improve per unit of constraint violation.
    ///
    /// For each squared term, the objective's sensitivity to a change `δ` in
    /// one expression sum is at most `w·(2·B + δ)·δ` where `B` bounds
    /// `|expr − target|`; summing the per-term bounds for `δ = 1` gives a
    /// Lipschitz-style constant that a penalty weight must dominate.
    pub fn objective_unit_scale(&self) -> f64 {
        let mut scale = self.linear_objective.max_abs_coeff();
        for t in &self.squared_terms {
            let lo = t.expr.min_value() - t.target;
            let hi = t.expr.max_value() - t.target;
            let bound = lo.abs().max(hi.abs());
            let cmax = t.expr.max_abs_coeff();
            scale += t.weight * cmax * (2.0 * bound + cmax);
        }
        scale.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Cqm {
        // minimize (x0 + x1 - 1)^2 subject to x0 + x1 <= 1, x0 = 1
        let mut cqm = Cqm::new(2);
        let mut obj = LinearExpr::new();
        obj.add_term(Var(0), 1.0).add_term(Var(1), 1.0);
        cqm.add_squared_term(obj.clone(), 1.0, 1.0);
        cqm.add_constraint(obj, Sense::Le, 1.0, "cap");
        let mut fix = LinearExpr::new();
        fix.add_term(Var(0), 1.0);
        cqm.add_constraint(fix, Sense::Eq, 1.0, "fix_x0");
        cqm
    }

    #[test]
    fn objective_and_feasibility() {
        let cqm = toy();
        assert_eq!(cqm.objective(&[1, 0]), 0.0);
        assert_eq!(cqm.objective(&[0, 0]), 1.0);
        assert!(cqm.is_feasible(&[1, 0]));
        assert!(!cqm.is_feasible(&[0, 1])); // violates fix_x0
        assert!(!cqm.is_feasible(&[1, 1])); // violates cap
        assert_eq!(cqm.total_violation(&[1, 1]), 1.0);
    }

    #[test]
    fn violation_tolerance_absorbs_rounding() {
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 0.1 + 0.2); // 0.30000000000000004
        let c = Constraint {
            expr: e,
            sense: Sense::Le,
            rhs: 0.3,
            label: "t".into(),
        };
        assert_eq!(c.violation(&[1]), 0.0);
    }

    #[test]
    fn counts_by_sense() {
        let cqm = toy();
        assert_eq!(cqm.num_eq_constraints(), 1);
        assert_eq!(cqm.num_le_constraints(), 1);
    }

    #[test]
    fn add_vars_extends() {
        let mut cqm = Cqm::new(3);
        let first = cqm.add_vars(4);
        assert_eq!(first, Var(3));
        assert_eq!(cqm.num_vars(), 7);
    }

    #[test]
    fn serde_roundtrip_preserves_semantics() {
        let cqm = toy();
        let json = serde_json::to_string(&cqm).expect("serializes");
        let back: Cqm = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.num_vars(), cqm.num_vars());
        for state in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
            assert_eq!(back.objective(&state), cqm.objective(&state));
            assert_eq!(back.violations(&state), cqm.violations(&state));
        }
    }

    #[test]
    fn unit_scale_dominates_single_flip_gain() {
        let cqm = toy();
        let scale = cqm.objective_unit_scale();
        // Flipping any single bit changes the objective by at most `scale`.
        for a in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
            for bit in 0..2 {
                let mut b = a;
                b[bit] ^= 1;
                let d = (cqm.objective(&a) - cqm.objective(&b)).abs();
                assert!(d <= scale + 1e-12, "delta {d} > scale {scale}");
            }
        }
    }
}
