//! Batched (structure-of-arrays) evaluation: one CSR traversal, 64 lanes.
//!
//! [`BatchedEvaluator`] holds up to [`MAX_LANES`] independent binary states
//! over one [`CompiledCqm`]. States are packed as a `u64` bitset per
//! variable — bit `l` of `bits[v]` is lane `l`'s value of variable `v` — and
//! every per-expression quantity is laid out lane-contiguous
//! (`sums[e * lanes + l]`), so a single walk of the variable→expression CSR
//! produces flip deltas for all lanes at once. The per-expression kind
//! dispatch is hoisted out of the lane loop, leaving branch-free per-lane
//! arithmetic that the compiler can auto-vectorize.
//!
//! # Bit-exactness contract
//!
//! Every lane performs *exactly* the floating-point operations of the scalar
//! [`CqmEvaluator`] path, in the same order: `flip_deltas(v)[l]` is
//! bit-identical to `CqmEvaluator::flip_delta(v)` evaluated at lane `l`'s
//! state, and the same holds for energies, objectives, violations, and the
//! incrementally maintained delta cache. Samplers can therefore run the
//! batched kernels and reproduce scalar trajectories lane by lane; the
//! equivalence is enforced by proptests below.
//!
//! Lane membership is a *sampler* concern: the hybrid solver packs one read
//! per lane for SA/tabu/descent waves and one Trotter replica per lane for
//! SQA. This module only guarantees that lanes never interact.

use std::sync::Arc;

use crate::cqm::{violation_of, Sense};
use crate::eval::{CompiledCqm, ExprKind};
use crate::penalty::PenaltyStyle;

/// Maximum number of lanes a [`BatchedEvaluator`] supports (`u64` width).
pub const MAX_LANES: usize = 64;

/// A multi-lane incremental evaluator over a [`CompiledCqm`].
///
/// See the module docs for layout and the bit-exactness contract.
#[derive(Debug, Clone)]
pub struct BatchedEvaluator {
    model: Arc<CompiledCqm>,
    lanes: usize,
    /// Bit `l` of `bits[v]` is lane `l`'s value of variable `v`.
    bits: Vec<u64>,
    /// Expression sums, lane-contiguous: `sums[e * lanes + l]`.
    sums: Vec<f64>,
    /// Tracked total energy per lane.
    energy: Vec<f64>,
    /// Flip-delta cache, lane-contiguous: `deltas[v * lanes + l]`.
    /// Empty unless `deltas_live`.
    deltas: Vec<f64>,
    deltas_live: bool,
}

impl BatchedEvaluator {
    /// Creates an evaluator with `lanes` lanes, all at the all-zeros state.
    ///
    /// # Panics
    /// Panics unless `1 <= lanes <= MAX_LANES`.
    pub fn new(model: Arc<CompiledCqm>, lanes: usize) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lanes must be in 1..=64, got {lanes}"
        );
        let n = model.num_vars();
        let ne = model.num_exprs();
        let mut ev = Self {
            model,
            lanes,
            bits: vec![0; n],
            sums: vec![0.0; ne * lanes],
            energy: vec![0.0; lanes],
            deltas: Vec::new(),
            deltas_live: false,
        };
        ev.resync();
        ev
    }

    /// The compiled model.
    pub fn model(&self) -> &Arc<CompiledCqm> {
        &self.model
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of binary variables (compiled width).
    pub fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    /// Variables that can change the energy when flipped (ascending).
    pub fn active_vars(&self) -> &[usize] {
        self.model.active_vars()
    }

    /// The packed lane bits of one variable.
    #[inline]
    pub fn var_bits(&self, var: usize) -> u64 {
        self.bits[var]
    }

    /// Lane `lane`'s value of `var` (0 or 1).
    #[inline]
    pub fn lane_bit(&self, var: usize, lane: usize) -> u8 {
        ((self.bits[var] >> lane) & 1) as u8
    }

    /// Tracked energy of one lane.
    #[inline]
    pub fn energy(&self, lane: usize) -> f64 {
        self.energy[lane]
    }

    /// Tracked energies of all lanes.
    pub fn energies(&self) -> &[f64] {
        &self.energy
    }

    /// Replaces lane `lane`'s state (narrower states are zero-extended, as
    /// in [`crate::eval::Evaluator::set_state`]) and resyncs that lane.
    pub fn set_lane_state(&mut self, lane: usize, state: &[u8]) {
        assert!(lane < self.lanes, "lane out of range");
        assert!(
            state.len() <= self.bits.len(),
            "state wider than compiled model"
        );
        let mask = 1u64 << lane;
        for (v, b) in self.bits.iter_mut().enumerate() {
            let set = v < state.len() && state[v] != 0;
            if set {
                *b |= mask;
            } else {
                *b &= !mask;
            }
        }
        self.resync_lane(lane);
    }

    /// Writes lane `lane`'s state into `out` (must be compiled width).
    pub fn write_lane_state(&self, lane: usize, out: &mut [u8]) {
        assert_eq!(out.len(), self.bits.len(), "state width mismatch");
        for (o, &b) in out.iter_mut().zip(&self.bits) {
            *o = ((b >> lane) & 1) as u8;
        }
    }

    /// Lane `lane`'s state as a fresh byte vector.
    pub fn lane_state(&self, lane: usize) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len()];
        self.write_lane_state(lane, &mut out);
        out
    }

    /// Objective value (no penalties) of one lane; matches
    /// [`crate::eval::CqmEvaluator::objective`] bit-for-bit.
    pub fn objective(&self, lane: usize) -> f64 {
        let m = &*self.model;
        let l = self.lanes;
        let mut obj = m.linear_const;
        for (v, &b) in self.bits.iter().enumerate() {
            if (b >> lane) & 1 != 0 {
                obj += m.linear[v];
            }
        }
        for (e, kind) in m.kinds.iter().enumerate() {
            if let ExprKind::Squared { target, weight } = *kind {
                let d = self.sums[e * l + lane] - target;
                obj += weight * d * d;
            }
        }
        obj
    }

    /// Total true violation magnitude of one lane.
    pub fn total_violation(&self, lane: usize) -> f64 {
        let m = &*self.model;
        let l = self.lanes;
        let mut v = 0.0;
        for (e, kind) in m.kinds.iter().enumerate() {
            if let ExprKind::Constraint { sense, rhs, .. } = *kind {
                v += violation_of(sense, self.sums[e * l + lane], rhs);
            }
        }
        v
    }

    /// Whether lane `lane` satisfies all constraints.
    pub fn is_feasible(&self, lane: usize) -> bool {
        self.total_violation(lane) == 0.0
    }

    /// Scalar flip delta for one `(var, lane)` pair — the reference each
    /// batched lane must match. Same arithmetic as
    /// [`crate::eval::CqmEvaluator::flip_delta`].
    pub fn flip_delta_lane(&self, var: usize, lane: usize) -> f64 {
        let m = &*self.model;
        let l = self.lanes;
        let dir = if (self.bits[var] >> lane) & 1 == 0 {
            1.0
        } else {
            -1.0
        };
        let mut delta = dir * m.linear[var];
        let (exprs, coeffs) = m.incident(var);
        for (&e, &c) in exprs.iter().zip(coeffs) {
            let e = e as usize;
            let old = self.sums[e * l + lane];
            let new = old + dir * c;
            let kind = &m.kinds[e];
            delta += m.penalty_energy(kind, new) - m.penalty_energy(kind, old);
        }
        delta
    }

    /// Flip deltas of `var` for every lane in one CSR walk.
    ///
    /// `out[l]` is bit-identical to what the scalar evaluator's
    /// `flip_delta(var)` would return at lane `l`'s state.
    pub fn flip_deltas(&self, var: usize, out: &mut [f64]) {
        let m = &*self.model;
        let l = self.lanes;
        assert!(out.len() >= l, "output narrower than lane count");
        let out = &mut out[..l];
        let w = self.bits[var];
        let mut dir = [0.0f64; MAX_LANES];
        for (i, d) in dir[..l].iter_mut().enumerate() {
            // Same value the scalar path derives from the byte state.
            *d = if (w >> i) & 1 == 0 { 1.0 } else { -1.0 };
        }
        let dir = &dir[..l];
        let lin = m.linear[var];
        for (o, &d) in out.iter_mut().zip(dir) {
            *o = d * lin;
        }
        let (exprs, coeffs) = m.incident(var);
        for (&e, &c) in exprs.iter().zip(coeffs) {
            let e = e as usize;
            let row = &self.sums[e * l..(e + 1) * l];
            // One match per expression; the lane loops below repeat the
            // scalar `penalty_energy(new) - penalty_energy(old)` arithmetic
            // verbatim so each lane stays bit-exact.
            match m.kinds[e] {
                ExprKind::Squared { target, weight } => {
                    for ((o, &old), &d) in out.iter_mut().zip(row).zip(dir) {
                        let new = old + d * c;
                        let dn = new - target;
                        let dold = old - target;
                        *o += weight * dn * dn - weight * dold * dold;
                    }
                }
                ExprKind::Constraint { sense, rhs, weight } => match sense {
                    Sense::Eq => {
                        for ((o, &old), &d) in out.iter_mut().zip(row).zip(dir) {
                            let new = old + d * c;
                            let dn = new - rhs;
                            let dold = old - rhs;
                            *o += weight * dn * dn - weight * dold * dold;
                        }
                    }
                    Sense::Le => match m.penalty().style {
                        PenaltyStyle::Unbalanced { l1, l2 } => {
                            let vertex = if l2 > 0.0 { -l1 / (2.0 * l2) } else { 0.0 };
                            for ((o, &old), &d) in out.iter_mut().zip(row).zip(dir) {
                                let new = old + d * c;
                                let gn = (new - rhs).max(vertex);
                                let go = (old - rhs).max(vertex);
                                *o += weight * (l1 * gn + l2 * gn * gn)
                                    - weight * (l1 * go + l2 * go * go);
                            }
                        }
                        _ => {
                            for ((o, &old), &d) in out.iter_mut().zip(row).zip(dir) {
                                let new = old + d * c;
                                let dn = (new - rhs).max(0.0);
                                let dold = (old - rhs).max(0.0);
                                *o += weight * dn * dn - weight * dold * dold;
                            }
                        }
                    },
                },
            }
        }
    }

    /// Applies the flip of `var` on every lane whose bit is set in `mask`,
    /// using caller-supplied deltas (`deltas[l]` is read only for masked
    /// lanes). Updates sums, per-lane energy, and — when enabled — the
    /// batched delta cache, mirroring the scalar `apply_flip` per lane.
    pub fn flip_lanes(&mut self, var: usize, mask: u64, deltas: &[f64]) {
        if mask == 0 {
            return;
        }
        let l = self.lanes;
        assert!(deltas.len() >= l, "deltas narrower than lane count");
        debug_assert!(l == MAX_LANES || mask < (1u64 << l), "mask has dead lanes");
        let m = Arc::clone(&self.model);
        let w = self.bits[var];
        let (exprs, coeffs) = m.incident(var);
        if self.deltas_live {
            let mut os = [0.0f64; MAX_LANES];
            let mut ns = [0.0f64; MAX_LANES];
            for (&e, &c) in exprs.iter().zip(coeffs) {
                let ei = e as usize;
                let kind = &m.kinds[ei];
                let row_base = ei * l;
                let mut bits_iter = mask;
                while bits_iter != 0 {
                    let lane = bits_iter.trailing_zeros() as usize;
                    bits_iter &= bits_iter - 1;
                    let dir = if (w >> lane) & 1 == 0 { 1.0 } else { -1.0 };
                    let o = self.sums[row_base + lane];
                    os[lane] = o;
                    ns[lane] = o + dir * c;
                }
                let (vars_e, coeffs_e) = m.members(ei);
                for (&u, &cu) in vars_e.iter().zip(coeffs_e) {
                    let u = u as usize;
                    if u == var {
                        continue;
                    }
                    let wu = self.bits[u];
                    let du_base = u * l;
                    let mut bits_iter = mask;
                    while bits_iter != 0 {
                        let lane = bits_iter.trailing_zeros() as usize;
                        bits_iter &= bits_iter - 1;
                        let du = if (wu >> lane) & 1 == 0 { 1.0 } else { -1.0 };
                        self.deltas[du_base + lane] +=
                            m.flip_correction(kind, os[lane], ns[lane], du * cu);
                    }
                }
                let mut bits_iter = mask;
                while bits_iter != 0 {
                    let lane = bits_iter.trailing_zeros() as usize;
                    bits_iter &= bits_iter - 1;
                    self.sums[row_base + lane] = ns[lane];
                }
            }
            let dv_base = var * l;
            let mut bits_iter = mask;
            while bits_iter != 0 {
                let lane = bits_iter.trailing_zeros() as usize;
                bits_iter &= bits_iter - 1;
                self.deltas[dv_base + lane] = -deltas[lane];
            }
        } else {
            for (&e, &c) in exprs.iter().zip(coeffs) {
                let row_base = e as usize * l;
                let mut bits_iter = mask;
                while bits_iter != 0 {
                    let lane = bits_iter.trailing_zeros() as usize;
                    bits_iter &= bits_iter - 1;
                    let dir = if (w >> lane) & 1 == 0 { 1.0 } else { -1.0 };
                    self.sums[row_base + lane] += dir * c;
                }
            }
        }
        self.bits[var] ^= mask;
        let mut bits_iter = mask;
        while bits_iter != 0 {
            let lane = bits_iter.trailing_zeros() as usize;
            bits_iter &= bits_iter - 1;
            self.energy[lane] += deltas[lane];
        }
    }

    /// Flips `var` on a single lane with a known delta.
    pub fn flip_lane(&mut self, var: usize, lane: usize, delta: f64) {
        assert!(lane < self.lanes, "lane out of range");
        let mut tmp = [0.0f64; MAX_LANES];
        tmp[lane] = delta;
        self.flip_lanes(var, 1u64 << lane, &tmp[..self.lanes]);
    }

    /// Opts into the lane-contiguous flip-delta cache (`deltas[v*lanes+l]`),
    /// maintained through [`Self::flip_lanes`] exactly like the scalar
    /// evaluator's cache.
    pub fn enable_delta_cache(&mut self) -> bool {
        if !self.deltas_live {
            self.deltas = vec![0.0; self.model.num_vars() * self.lanes];
            self.deltas_live = true;
            self.rebuild_deltas();
        }
        true
    }

    /// The cached deltas (`deltas[v * lanes + l]`) if the cache is enabled.
    pub fn cached_deltas(&self) -> Option<&[f64]> {
        if self.deltas_live {
            Some(&self.deltas)
        } else {
            None
        }
    }

    fn rebuild_deltas(&mut self) {
        let l = self.lanes;
        let n = self.model.num_vars();
        let mut scratch = [0.0f64; MAX_LANES];
        for v in 0..n {
            self.flip_deltas(v, &mut scratch[..l]);
            self.deltas[v * l..(v + 1) * l].copy_from_slice(&scratch[..l]);
        }
    }

    /// Recomputes sums, energies, and cache for every lane from the packed
    /// bits, clearing floating-point drift. Per lane this performs the same
    /// operations in the same order as the scalar `resync`.
    pub fn resync(&mut self) {
        let m = Arc::clone(&self.model);
        let l = self.lanes;
        for (e, &cst) in m.consts.iter().enumerate() {
            self.sums[e * l..(e + 1) * l].fill(cst);
        }
        for (v, &b) in self.bits.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let (exprs, coeffs) = m.incident(v);
            for (&e, &c) in exprs.iter().zip(coeffs) {
                let row_base = e as usize * l;
                let mut bits_iter = b;
                while bits_iter != 0 {
                    let lane = bits_iter.trailing_zeros() as usize;
                    bits_iter &= bits_iter - 1;
                    self.sums[row_base + lane] += c;
                }
            }
        }
        self.energy.fill(m.linear_const);
        for (v, &b) in self.bits.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let lin = m.linear[v];
            let mut bits_iter = b;
            while bits_iter != 0 {
                let lane = bits_iter.trailing_zeros() as usize;
                bits_iter &= bits_iter - 1;
                self.energy[lane] += lin;
            }
        }
        for (e, kind) in m.kinds.iter().enumerate() {
            for lane in 0..l {
                self.energy[lane] += m.penalty_energy(kind, self.sums[e * l + lane]);
            }
        }
        if self.deltas_live {
            self.rebuild_deltas();
        }
    }

    /// Recomputes one lane's sums, energy, and cache column from its bits.
    pub fn resync_lane(&mut self, lane: usize) {
        assert!(lane < self.lanes, "lane out of range");
        let m = Arc::clone(&self.model);
        let l = self.lanes;
        let mask = 1u64 << lane;
        for (e, &cst) in m.consts.iter().enumerate() {
            self.sums[e * l + lane] = cst;
        }
        for (v, &b) in self.bits.iter().enumerate() {
            if b & mask != 0 {
                let (exprs, coeffs) = m.incident(v);
                for (&e, &c) in exprs.iter().zip(coeffs) {
                    self.sums[e as usize * l + lane] += c;
                }
            }
        }
        let mut en = m.linear_const;
        for (v, &b) in self.bits.iter().enumerate() {
            if b & mask != 0 {
                en += m.linear[v];
            }
        }
        for (e, kind) in m.kinds.iter().enumerate() {
            en += m.penalty_energy(kind, self.sums[e * l + lane]);
        }
        self.energy[lane] = en;
        if self.deltas_live {
            for v in 0..m.num_vars() {
                self.deltas[v * l + lane] = self.flip_delta_lane(v, lane);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqm::Cqm;
    use crate::eval::{CqmEvaluator, Evaluator};
    use crate::expr::{LinearExpr, Var};
    use crate::penalty::PenaltyConfig;
    use proptest::prelude::*;

    fn styles() -> [PenaltyStyle; 3] {
        [
            PenaltyStyle::ViolationQuadratic,
            PenaltyStyle::Unbalanced {
                l1: 0.96,
                l2: 0.0331,
            },
            PenaltyStyle::Slack,
        ]
    }

    fn small_model(style: PenaltyStyle) -> Arc<CompiledCqm> {
        // minimize (x0 + 2·x1 + 3·x2 − 3)²  s.t.  x0 + x1 + x2 ≤ 2, x0 = 1
        let mut cqm = Cqm::new(3);
        let mut obj = LinearExpr::new();
        obj.add_term(Var(0), 1.0)
            .add_term(Var(1), 2.0)
            .add_term(Var(2), 3.0);
        cqm.add_squared_term(obj, 3.0, 1.0);
        let mut cap = LinearExpr::new();
        cap.add_term(Var(0), 1.0)
            .add_term(Var(1), 1.0)
            .add_term(Var(2), 1.0);
        cqm.add_constraint(cap, Sense::Le, 2.0, "cap");
        let mut fix = LinearExpr::new();
        fix.add_term(Var(0), 1.0);
        cqm.add_constraint(fix, Sense::Eq, 1.0, "fix");
        CompiledCqm::compile(&cqm, PenaltyConfig::uniform(25.0, style))
    }

    /// A randomly structured CQM description proptest can generate: per
    /// expression a list of `(var, coeff)` terms plus target/rhs. Variables
    /// outside every expression model presolve-masked dead bits.
    #[derive(Debug, Clone)]
    struct RandomCqm {
        num_vars: usize,
        squared: Vec<(Vec<(usize, i8)>, i8)>,
        les: Vec<(Vec<(usize, i8)>, i8)>,
        eqs: Vec<(Vec<(usize, i8)>, i8)>,
    }

    impl RandomCqm {
        fn build(&self) -> Cqm {
            let mut cqm = Cqm::new(self.num_vars);
            for (terms, target) in &self.squared {
                let mut e = LinearExpr::new();
                for &(v, c) in terms {
                    e.add_term(Var(v as u32), f64::from(c));
                }
                cqm.add_squared_term(e, f64::from(*target), 1.0);
            }
            for (i, (terms, rhs)) in self.les.iter().enumerate() {
                let mut e = LinearExpr::new();
                for &(v, c) in terms {
                    e.add_term(Var(v as u32), f64::from(c));
                }
                cqm.add_constraint(e, Sense::Le, f64::from(*rhs), format!("le{i}"));
            }
            for (i, (terms, rhs)) in self.eqs.iter().enumerate() {
                let mut e = LinearExpr::new();
                for &(v, c) in terms {
                    e.add_term(Var(v as u32), f64::from(c));
                }
                cqm.add_constraint(e, Sense::Eq, f64::from(*rhs), format!("eq{i}"));
            }
            cqm
        }
    }

    fn random_cqm_strategy() -> impl Strategy<Value = RandomCqm> {
        let terms = |n: usize| {
            proptest::collection::vec((0..n, -3i8..=3), 1..=n.min(5))
                .prop_map(|mut t| {
                    t.dedup_by_key(|x| x.0);
                    t
                })
                .prop_filter("nonzero coeff", |t| t.iter().any(|&(_, c)| c != 0))
        };
        (2usize..10).prop_flat_map(move |n| {
            (
                Just(n),
                proptest::collection::vec((terms(n), -4i8..=4), 0..3),
                proptest::collection::vec((terms(n), -2i8..=6), 0..3),
                proptest::collection::vec((terms(n), -2i8..=4), 0..3),
            )
                .prop_map(|(num_vars, squared, les, eqs)| RandomCqm {
                    num_vars,
                    squared,
                    les,
                    eqs,
                })
        })
    }

    #[test]
    fn lanes_track_independent_scalar_evaluators() {
        for style in styles() {
            let m = small_model(style);
            let lanes = 4;
            let mut bev = BatchedEvaluator::new(Arc::clone(&m), lanes);
            let mut evs: Vec<CqmEvaluator> = (0..lanes)
                .map(|_| CqmEvaluator::new(Arc::clone(&m)))
                .collect();
            // Distinct per-lane flip sequences.
            let seqs = [vec![0, 1], vec![2], vec![0, 1, 2, 1], vec![]];
            let mut deltas = [0.0f64; MAX_LANES];
            for (lane, seq) in seqs.iter().enumerate() {
                for &v in seq {
                    bev.flip_deltas(v, &mut deltas);
                    let want = evs[lane].flip_delta(v);
                    assert_eq!(deltas[lane], want, "style {style:?} lane {lane} var {v}");
                    bev.flip_lane(v, lane, deltas[lane]);
                    evs[lane].flip(v);
                }
            }
            for (lane, ev) in evs.iter().enumerate() {
                assert_eq!(bev.lane_state(lane), ev.state(), "style {style:?}");
                assert_eq!(bev.energy(lane), ev.energy(), "style {style:?}");
                assert_eq!(bev.objective(lane), ev.objective(), "style {style:?}");
                assert_eq!(
                    bev.total_violation(lane),
                    ev.total_violation(),
                    "style {style:?}"
                );
                assert_eq!(bev.is_feasible(lane), ev.is_feasible(), "style {style:?}");
            }
        }
    }

    #[test]
    fn flip_lanes_applies_shared_flip_to_masked_lanes_only() {
        let m = small_model(PenaltyStyle::ViolationQuadratic);
        let mut bev = BatchedEvaluator::new(Arc::clone(&m), 3);
        let mut deltas = [0.0f64; MAX_LANES];
        bev.flip_deltas(1, &mut deltas);
        bev.flip_lanes(1, 0b101, &deltas);
        assert_eq!(bev.lane_state(0)[1], 1);
        assert_eq!(bev.lane_state(1)[1], 0);
        assert_eq!(bev.lane_state(2)[1], 1);
        let scalar = CqmEvaluator::with_state(Arc::clone(&m), &[0, 1, 0]);
        assert_eq!(bev.energy(0), scalar.energy());
        assert_eq!(bev.energy(1), CqmEvaluator::new(m).energy());
    }

    #[test]
    fn set_lane_state_zero_extends_and_resyncs() {
        let m = small_model(PenaltyStyle::Slack);
        assert!(m.num_vars() > 3);
        let mut bev = BatchedEvaluator::new(Arc::clone(&m), 2);
        bev.set_lane_state(1, &[1, 0, 1]);
        let scalar = CqmEvaluator::with_state(Arc::clone(&m), &[1, 0, 1]);
        assert_eq!(bev.lane_state(1), scalar.state());
        assert_eq!(bev.energy(1), scalar.energy());
        // Lane 0 untouched.
        assert_eq!(bev.energy(0), CqmEvaluator::new(m).energy());
    }

    #[test]
    fn batched_cache_matches_scalar_cache() {
        for style in styles() {
            let m = small_model(style);
            let n = m.num_vars();
            let mut bev = BatchedEvaluator::new(Arc::clone(&m), 2);
            let mut ev = CqmEvaluator::new(Arc::clone(&m));
            assert!(bev.enable_delta_cache());
            ev.enable_delta_cache();
            let mut deltas = [0.0f64; MAX_LANES];
            for &v in &[0usize, 1, 2, 2, 1, 0, 2] {
                let v = v % n;
                bev.flip_deltas(v, &mut deltas);
                bev.flip_lane(v, 1, deltas[1]);
                ev.flip(v);
                let bc = bev.cached_deltas().expect("batched cache");
                let sc = ev.cached_deltas().expect("scalar cache");
                for u in 0..n {
                    assert_eq!(
                        bc[u * bev.lanes() + 1],
                        sc[u],
                        "style {style:?} var {u} after flip {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn resync_clears_nothing_on_exact_lanes() {
        let m = small_model(PenaltyStyle::ViolationQuadratic);
        let mut bev = BatchedEvaluator::new(m, 3);
        let mut deltas = [0.0f64; MAX_LANES];
        for v in 0..3 {
            bev.flip_deltas(v, &mut deltas);
            bev.flip_lanes(v, 0b111, &deltas);
        }
        let before: Vec<f64> = bev.energies().to_vec();
        bev.resync();
        for (lane, &e) in bev.energies().iter().enumerate() {
            assert!((e - before[lane]).abs() < 1e-9);
        }
    }

    proptest! {
        /// Satellite: for random CQMs and random per-lane flip sequences,
        /// every lane of the batched evaluator must match a scalar evaluator
        /// *exactly* — deltas, energy, objective, violation, feasibility —
        /// including models with dead (presolve-masked-style) variables.
        #[test]
        fn batched_lanes_match_scalar_exactly(
            rc in random_cqm_strategy(),
            style_idx in 0usize..3,
            flips in proptest::collection::vec((0usize..64, 0usize..8), 1..60),
        ) {
            let style = styles()[style_idx];
            let cqm = rc.build();
            let m = CompiledCqm::compile(&cqm, PenaltyConfig::uniform(7.0, style));
            let n = m.num_vars();
            let lanes = 8;
            let mut bev = BatchedEvaluator::new(Arc::clone(&m), lanes);
            bev.enable_delta_cache();
            let mut evs: Vec<CqmEvaluator> = (0..lanes)
                .map(|_| CqmEvaluator::new(Arc::clone(&m)))
                .collect();
            // Active sets agree (dead vars excluded identically).
            prop_assert_eq!(bev.active_vars(), evs[0].active_vars().expect("cqm active"));
            let mut deltas = [0.0f64; MAX_LANES];
            for &(v, lane) in &flips {
                let v = v % n;
                bev.flip_deltas(v, &mut deltas);
                for (l, ev) in evs.iter().enumerate() {
                    prop_assert_eq!(deltas[l], ev.flip_delta(v), "var {} lane {}", v, l);
                    prop_assert_eq!(deltas[l], bev.flip_delta_lane(v, l));
                }
                bev.flip_lane(v, lane, deltas[lane]);
                evs[lane].flip(v);
            }
            for (l, ev) in evs.iter().enumerate() {
                prop_assert_eq!(bev.lane_state(l), ev.state().to_vec());
                prop_assert_eq!(bev.energy(l), ev.energy());
                prop_assert_eq!(bev.objective(l), ev.objective());
                prop_assert_eq!(bev.total_violation(l), ev.total_violation());
                prop_assert_eq!(bev.is_feasible(l), ev.is_feasible());
            }
        }

        /// The batched delta cache stays equal to on-demand recomputation
        /// after arbitrary masked multi-lane flips.
        #[test]
        fn batched_cache_matches_on_demand(
            rc in random_cqm_strategy(),
            style_idx in 0usize..3,
            flips in proptest::collection::vec((0usize..64, 1u64..16), 1..40),
        ) {
            let style = styles()[style_idx];
            let cqm = rc.build();
            let m = CompiledCqm::compile(&cqm, PenaltyConfig::uniform(7.0, style));
            let n = m.num_vars();
            let lanes = 4;
            let mut bev = BatchedEvaluator::new(Arc::clone(&m), lanes);
            bev.enable_delta_cache();
            let mut deltas = [0.0f64; MAX_LANES];
            for &(v, mask) in &flips {
                let v = v % n;
                bev.flip_deltas(v, &mut deltas);
                bev.flip_lanes(v, mask & 0b1111, &deltas);
            }
            let cached = bev.cached_deltas().expect("cache enabled").to_vec();
            for v in 0..n {
                bev.flip_deltas(v, &mut deltas);
                for l in 0..lanes {
                    let got = cached[v * lanes + l];
                    let want = deltas[l];
                    prop_assert!(
                        (got - want).abs() <= 1e-6 * (1.0 + want.abs()),
                        "var {} lane {}: cached {} vs fresh {}", v, l, got, want
                    );
                }
            }
        }
    }
}
