//! The paper's non-standard binary ("bounded coefficient") encoding.
//!
//! To express a task count `x ∈ {0, …, n}` with binary variables, the paper
//! (§IV) uses the coefficient multiset
//!
//! ```text
//! C(n) = { 2^(l-1) | l = 1, …, ⌊log₂ n⌋ }  ∪  { n − 2^⌊log₂ n⌋ + 1 }
//! ```
//!
//! e.g. `C(13) = {1, 2, 4, 6}`, so `13 = 1+2+4+6` is `1111_C`. The key
//! property is that the coefficients sum to exactly `n`: setting *all* bits
//! represents "all `n` tasks", so the conservation constraint "every task is
//! either migrated or stays" becomes a simple linear sum. The encoding uses
//! `⌊log₂ n⌋ + 1` bits — the factor that appears in every qubit count of the
//! paper's Table I.

use serde::{Deserialize, Serialize};

/// The bounded-coefficient set `C(n)` for a maximum value `n ≥ 1`.
///
/// Coefficients are stored largest-power-first followed by the residual
/// coefficient, i.e. `[2^(f-1), …, 2, 1, r]` with `f = ⌊log₂ n⌋` and
/// `r = n − 2^f + 1`.
///
/// ```
/// use qlrb_model::CoefficientSet;
/// let c = CoefficientSet::new(13); // the paper's example
/// assert_eq!(c.coeffs(), &[4, 2, 1, 6]);
/// let bits = c.encode(11).unwrap();
/// assert_eq!(c.decode(&bits), 11);
/// assert_eq!(c.max_representable(), 13); // all bits set == all n tasks
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoefficientSet {
    n: u64,
    coeffs: Vec<u64>,
    /// Whether this is the paper's bounded encoding (sums to exactly `n`)
    /// or the plain power-of-two ladder.
    bounded: bool,
}

impl CoefficientSet {
    /// Builds `C(n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`; a process with zero tasks has nothing to encode.
    pub fn new(n: u64) -> Self {
        assert!(n >= 1, "CoefficientSet requires n >= 1");
        let f = n.ilog2(); // ⌊log₂ n⌋
        let mut coeffs: Vec<u64> = (0..f).rev().map(|l| 1u64 << l).collect();
        let residual = n - (1u64 << f) + 1;
        coeffs.push(residual);
        debug_assert_eq!(coeffs.iter().sum::<u64>(), n);
        Self {
            n,
            coeffs,
            bounded: true,
        }
    }

    /// The *plain* binary alternative the paper's encoding improves on:
    /// `⌈log₂(n+1)⌉` power-of-two coefficients, representing `0..2^b − 1` —
    /// a range that generally **overshoots** `n`, so "all bits set" no
    /// longer means "all tasks accounted for" and infeasible counts become
    /// representable. Kept for the encoding ablation.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new_plain_binary(n: u64) -> Self {
        assert!(n >= 1, "CoefficientSet requires n >= 1");
        let bits = (u64::BITS - n.leading_zeros()) as u64; // ⌈log₂(n+1)⌉
        let coeffs: Vec<u64> = (0..bits).rev().map(|l| 1u64 << l).collect();
        Self {
            n,
            coeffs,
            bounded: false,
        }
    }

    /// Largest value the coefficients can express (equals `n` for the
    /// bounded encoding; `2^b − 1 ≥ n` for plain binary).
    pub fn max_representable(&self) -> u64 {
        self.coeffs.iter().sum()
    }

    /// The maximum representable value (`n`).
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The coefficients, powers of two descending, then the residual.
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Number of bits, i.e. `|C(n)| = ⌊log₂ n⌋ + 1`.
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// `C(n)` is never empty for valid `n`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The residual coefficient `n − 2^⌊log₂ n⌋ + 1`.
    pub fn residual(&self) -> u64 {
        *self.coeffs.last().expect("non-empty by construction") // qlrb-lint: allow(no-unwrap)
    }

    /// Decomposes `value ∈ 0..=n` into bits over `C(n)` such that
    /// `Σ bit_l · c_l = value`.
    ///
    /// Strategy: the plain powers of two cover `0..2^f − 1`; any value at or
    /// above `2^f` must use the residual coefficient (and the remainder is
    /// then `< 2^f`, so plain binary decomposition finishes the job).
    ///
    /// Returns `None` if `value > n`.
    pub fn encode(&self, value: u64) -> Option<Vec<u8>> {
        if value > self.n {
            return None;
        }
        let mut bits = vec![0u8; self.coeffs.len()];
        let mut rest = value;
        if self.bounded {
            let f = self.n.ilog2();
            let powers_max = (1u64 << f) - 1;
            if rest > powers_max {
                rest -= self.residual();
                *bits.last_mut().expect("non-empty") = 1; // qlrb-lint: allow(no-unwrap)
            }
            debug_assert!(rest <= powers_max);
            for (slot, l) in (0..f).rev().enumerate() {
                let c = 1u64 << l;
                if rest >= c {
                    rest -= c;
                    bits[slot] = 1;
                }
            }
        } else {
            // Plain binary: coefficients are descending powers of two.
            for (slot, &c) in self.coeffs.iter().enumerate() {
                if rest >= c {
                    rest -= c;
                    bits[slot] = 1;
                }
            }
        }
        debug_assert_eq!(rest, 0);
        Some(bits)
    }

    /// Reconstructs the value from a bit assignment.
    ///
    /// # Panics
    /// Panics if `bits.len() != self.len()`.
    pub fn decode(&self, bits: &[u8]) -> u64 {
        assert_eq!(bits.len(), self.coeffs.len(), "bit width mismatch");
        bits.iter()
            .zip(&self.coeffs)
            .filter(|&(&b, _)| b != 0)
            .map(|(_, &c)| c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_13() {
        let c = CoefficientSet::new(13);
        // Paper lists {2^0, 2^1, 2^2, 6}; we store powers descending.
        assert_eq!(c.coeffs(), &[4, 2, 1, 6]);
        assert_eq!(c.len(), 4); // ⌊log₂ 13⌋ + 1
        assert_eq!(c.encode(13).unwrap(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn tiny_n() {
        assert_eq!(CoefficientSet::new(1).coeffs(), &[1]);
        assert_eq!(CoefficientSet::new(2).coeffs(), &[1, 1]);
        assert_eq!(CoefficientSet::new(3).coeffs(), &[1, 2]);
        assert_eq!(CoefficientSet::new(4).coeffs(), &[2, 1, 1]);
    }

    #[test]
    fn exact_power_of_two() {
        let c = CoefficientSet::new(8);
        assert_eq!(c.coeffs(), &[4, 2, 1, 1]);
        assert_eq!(c.residual(), 1);
        for v in 0..=8 {
            assert_eq!(c.decode(&c.encode(v).unwrap()), v);
        }
    }

    #[test]
    fn width_matches_paper_formula() {
        for n in [1u64, 2, 3, 7, 8, 50, 100, 208, 2048] {
            let c = CoefficientSet::new(n);
            assert_eq!(c.len() as u32, n.ilog2() + 1, "n = {n}");
        }
    }

    #[test]
    fn encode_out_of_range_is_none() {
        let c = CoefficientSet::new(50);
        assert!(c.encode(51).is_none());
        assert!(c.encode(u64::MAX).is_none());
    }

    #[test]
    fn all_bits_set_sums_to_n() {
        for n in 1..300u64 {
            let c = CoefficientSet::new(n);
            let all = vec![1u8; c.len()];
            assert_eq!(c.decode(&all), n, "n = {n}");
        }
    }

    #[test]
    fn exhaustive_roundtrip_small() {
        for n in 1..200u64 {
            let c = CoefficientSet::new(n);
            for v in 0..=n {
                let bits = c.encode(v).unwrap_or_else(|| panic!("encode {v} of {n}"));
                assert_eq!(c.decode(&bits), v, "n = {n}, v = {v}");
            }
        }
    }

    #[test]
    fn plain_binary_overshoots_where_bounded_cannot() {
        let plain = CoefficientSet::new_plain_binary(13);
        assert_eq!(plain.coeffs(), &[8, 4, 2, 1]);
        assert_eq!(plain.max_representable(), 15, "can express counts > n");
        let bounded = CoefficientSet::new(13);
        assert_eq!(bounded.max_representable(), 13, "all bits = exactly n");
        // Both round-trip every legal value.
        for v in 0..=13 {
            assert_eq!(plain.decode(&plain.encode(v).unwrap()), v);
        }
        // The all-ones state decodes past n for plain binary.
        assert_eq!(plain.decode(&[1, 1, 1, 1]), 15);
    }

    #[test]
    fn plain_binary_exact_power_edge() {
        // n = 8 needs 4 bits either way, but ranges differ: 0..=15 vs 0..=8.
        let plain = CoefficientSet::new_plain_binary(8);
        assert_eq!(plain.len(), 4);
        assert_eq!(plain.max_representable(), 15);
        assert_eq!(plain.decode(&plain.encode(8).unwrap()), 8);
        // n = 7: plain binary is exact (7 = 2³−1) and matches bounded width.
        let plain7 = CoefficientSet::new_plain_binary(7);
        assert_eq!(plain7.max_representable(), 7);
    }

    proptest! {
        #[test]
        fn plain_binary_roundtrip(n in 1u64..100_000, frac in 0.0f64..=1.0) {
            let v = ((n as f64) * frac).floor() as u64;
            let c = CoefficientSet::new_plain_binary(n);
            prop_assert_eq!(c.decode(&c.encode(v).unwrap()), v);
            prop_assert!(c.max_representable() >= n);
        }

        #[test]
        fn roundtrip(n in 1u64..100_000, frac in 0.0f64..=1.0) {
            let v = ((n as f64) * frac).floor() as u64;
            let c = CoefficientSet::new(n);
            let bits = c.encode(v).unwrap();
            prop_assert_eq!(c.decode(&bits), v);
            prop_assert_eq!(bits.len(), c.len());
        }

        #[test]
        fn coefficients_sum_to_n(n in 1u64..1_000_000) {
            let c = CoefficientSet::new(n);
            prop_assert_eq!(c.coeffs().iter().sum::<u64>(), n);
        }
    }
}
