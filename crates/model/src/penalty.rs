//! CQM → penalized-model conversions.
//!
//! The hybrid solver never hands constraints to a sampler directly; they are
//! folded into the energy. Three schemes are provided:
//!
//! * **Violation-quadratic** — `λ·max(0, s − rhs)²` for `≤`, `λ·(s − rhs)²`
//!   for `=`. Exact (zero penalty inside the feasible region) but not
//!   expressible as a QUBO; usable only through the incremental
//!   [`crate::eval::CqmEvaluator`].
//! * **Unbalanced penalization** (Montañez-Barrera et al. 2024, the paper's
//!   ref. \[24\]) — for `s ≤ rhs`, penalize with `λ₁·g + λ₂·g²` where
//!   `g = s − rhs`, a quadratic surrogate of `exp(g)`. No ancillary qubits,
//!   QUBO-representable; mildly rewards slack inside the feasible region.
//! * **Slack variables** — rewrite `s ≤ rhs` as `s + slack = rhs` with a
//!   bounded-coefficient binary slack, then penalize the equality. The
//!   textbook Glover et al. construction; costs extra qubits.
//!
//! [`to_bqm`] materializes an explicit [`BinaryQuadraticModel`] for the
//! QUBO-representable schemes (used by the Ising-based SQA path and tests).

use crate::bqm::BinaryQuadraticModel;
use crate::cqm::{Cqm, Sense};
use crate::encoding::CoefficientSet;
use crate::expr::{LinearExpr, Var};

/// How inequality constraints are penalized.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PenaltyStyle {
    /// `λ·max(0, s − rhs)²` — exact, evaluator-only.
    #[default]
    ViolationQuadratic,
    /// `λ·(λ₁·g + λ₂·g²)`, `g = s − rhs` — unbalanced penalization.
    Unbalanced {
        /// Linear coefficient `λ₁` (relative to the constraint weight).
        l1: f64,
        /// Quadratic coefficient `λ₂` (relative to the constraint weight).
        l2: f64,
    },
    /// Binary slack variables turn `≤` into `=`, penalized quadratically.
    Slack,
}

/// Weights and style for folding constraints into the energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyConfig {
    /// Weight on equality-constraint penalties.
    pub eq_weight: f64,
    /// Weight on inequality-constraint penalties.
    pub le_weight: f64,
    /// Inequality scheme.
    pub style: PenaltyStyle,
}

impl PenaltyConfig {
    /// Derives penalty weights from the model so that violating any
    /// constraint by one unit always costs more than the largest possible
    /// single-flip objective gain, times `factor` headroom.
    pub fn auto(cqm: &Cqm, factor: f64, style: PenaltyStyle) -> Self {
        let scale = cqm.objective_unit_scale() * factor.max(1.0);
        Self {
            eq_weight: scale,
            le_weight: scale,
            style,
        }
    }

    /// A config with explicit identical weights.
    pub fn uniform(weight: f64, style: PenaltyStyle) -> Self {
        Self {
            eq_weight: weight,
            le_weight: weight,
            style,
        }
    }
}

impl Default for PenaltyConfig {
    fn default() -> Self {
        PenaltyConfig::uniform(1.0, PenaltyStyle::default())
    }
}

/// Result of slack augmentation: the Eq-only model plus bookkeeping.
#[derive(Debug, Clone)]
pub struct SlackAugmented {
    /// The rewritten model; original variables keep their indices, slack
    /// variables are appended at the end.
    pub cqm: Cqm,
    /// Index of the first slack variable (== original `num_vars`).
    pub first_slack: usize,
}

/// Rewrites `≤` constraints with *integral* coefficients as equalities with
/// a binary slack using the paper's bounded-coefficient encoding on the
/// slack range `R = rhs − min(expr)`.
///
/// Constraints with non-integral coefficients are left as `≤`: a binary
/// ladder can only approximate a real-valued slack, so the rewritten
/// equality would be violated by up to half the ladder resolution in
/// *every* state — poisoning the penalty landscape and feasibility checks.
/// Downstream consumers (the evaluator and [`to_bqm`]) penalize the
/// remaining inequalities directly instead.
///
/// Constraints with `R < 0` are structurally infeasible and are kept
/// unchanged (they will show up as permanent violations, which the solver
/// reports rather than hiding).
pub fn augment_slacks(cqm: &Cqm) -> SlackAugmented {
    let mut out = cqm.clone();
    let first_slack = out.num_vars();
    let mut constraints = std::mem::take(&mut out.constraints);
    for c in &mut constraints {
        if c.sense != Sense::Le {
            continue;
        }
        let range = c.rhs - c.expr.min_value();
        if range < 0.0 {
            continue; // structurally infeasible; leave visible
        }
        let integral = c.rhs.fract().abs() < 1e-9
            && c.expr
                .terms()
                .iter()
                .all(|&(_, co)| co.fract().abs() < 1e-9)
            && c.expr.constant_part().fract().abs() < 1e-9;
        if !integral {
            continue; // keep as Le; penalized directly
        }
        let r = range.round() as u64;
        if r >= 1 {
            let coeffs = CoefficientSet::new(r);
            let first = out.add_vars(coeffs.len());
            for (k, &co) in coeffs.coeffs().iter().enumerate() {
                c.expr.add_term(Var(first.0 + k as u32), co as f64);
            }
        }
        c.sense = Sense::Eq;
        c.expr.compress();
    }
    out.constraints = constraints;
    SlackAugmented {
        cqm: out,
        first_slack,
    }
}

/// Adds `weight · (expr + shift)²` to a BQM, expanding the square.
fn add_squared_expansion(
    bqm: &mut BinaryQuadraticModel,
    expr: &LinearExpr,
    shift: f64,
    weight: f64,
) {
    let k = expr.constant_part() + shift;
    bqm.add_offset(weight * k * k);
    let terms = expr.terms();
    for (a, &(va, ca)) in terms.iter().enumerate() {
        // x² = x for binaries: diagonal folds into linear.
        bqm.add_linear(va, weight * (ca * ca + 2.0 * k * ca));
        for &(vb, cb) in &terms[a + 1..] {
            bqm.add_quadratic(va, vb, 2.0 * weight * ca * cb);
        }
    }
}

/// Error cases for [`to_bqm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BqmConversionError {
    /// `ViolationQuadratic` has no QUBO representation; use the evaluator.
    StyleNotRepresentable,
}

impl std::fmt::Display for BqmConversionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BqmConversionError::StyleNotRepresentable => write!(
                f,
                "ViolationQuadratic penalties cannot be expressed as a QUBO; \
                 use PenaltyStyle::Slack or PenaltyStyle::Unbalanced"
            ),
        }
    }
}

impl std::error::Error for BqmConversionError {}

/// Materializes the penalized CQM as an explicit QUBO.
///
/// With [`PenaltyStyle::Slack`] the returned model has more variables than
/// the CQM (the slacks); sampled states must be truncated to the original
/// width before decoding.
pub fn to_bqm(cqm: &Cqm, cfg: &PenaltyConfig) -> Result<BinaryQuadraticModel, BqmConversionError> {
    let working;
    let source: &Cqm = match cfg.style {
        PenaltyStyle::ViolationQuadratic => return Err(BqmConversionError::StyleNotRepresentable),
        PenaltyStyle::Slack => {
            working = augment_slacks(cqm).cqm;
            &working
        }
        PenaltyStyle::Unbalanced { .. } => cqm,
    };

    let mut bqm = BinaryQuadraticModel::new(source.num_vars());
    // Objective.
    for t in &source.squared_terms {
        add_squared_expansion(&mut bqm, &t.expr, -t.target, t.weight);
    }
    for &(v, c) in source.linear_objective.terms() {
        bqm.add_linear(v, c);
    }
    bqm.add_offset(source.linear_objective.constant_part());
    // Constraints.
    for c in &source.constraints {
        match c.sense {
            Sense::Eq => add_squared_expansion(&mut bqm, &c.expr, -c.rhs, cfg.eq_weight),
            Sense::Le => {
                // Direct QUBO penalty for an inequality: the unbalanced
                // form. Under PenaltyStyle::Slack this arm only sees the
                // constraints slack augmentation skipped (non-integral
                // coefficients, structural infeasibility); default
                // unbalanced coefficients are used for those.
                let (l1, l2) = match cfg.style {
                    PenaltyStyle::Unbalanced { l1, l2 } => (l1, l2),
                    PenaltyStyle::Slack => (0.96, 0.0331),
                    PenaltyStyle::ViolationQuadratic => unreachable!("rejected above"),
                };
                let w = cfg.le_weight;
                add_squared_expansion(&mut bqm, &c.expr, -c.rhs, w * l2);
                for &(v, co) in c.expr.terms() {
                    bqm.add_linear(v, w * l1 * co);
                }
                bqm.add_offset(w * l1 * (c.expr.constant_part() - c.rhs));
            }
        }
    }
    Ok(bqm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqm::Cqm;

    fn knapsackish() -> Cqm {
        // minimize (x0 + x1 + x2 - 2)^2  s.t.  2·x0 + x1 ≤ 2,  x2 = 1
        let mut cqm = Cqm::new(3);
        let mut obj = LinearExpr::new();
        obj.add_term(Var(0), 1.0)
            .add_term(Var(1), 1.0)
            .add_term(Var(2), 1.0);
        cqm.add_squared_term(obj, 2.0, 1.0);
        let mut cap = LinearExpr::new();
        cap.add_term(Var(0), 2.0).add_term(Var(1), 1.0);
        cqm.add_constraint(cap, Sense::Le, 2.0, "cap");
        let mut fix = LinearExpr::new();
        fix.add_term(Var(2), 1.0);
        cqm.add_constraint(fix, Sense::Eq, 1.0, "fix");
        cqm
    }

    fn enumerate_min(bqm: &BinaryQuadraticModel, width: usize) -> (Vec<u8>, f64) {
        let mut best = (vec![], f64::INFINITY);
        for bits in 0..(1u32 << width) {
            let state: Vec<u8> = (0..width).map(|i| ((bits >> i) & 1) as u8).collect();
            let e = bqm.energy(&state);
            if e < best.1 {
                best = (state, e);
            }
        }
        best
    }

    #[test]
    fn violation_quadratic_rejected_for_qubo() {
        let cqm = knapsackish();
        let cfg = PenaltyConfig::uniform(10.0, PenaltyStyle::ViolationQuadratic);
        assert_eq!(
            to_bqm(&cqm, &cfg).unwrap_err(),
            BqmConversionError::StyleNotRepresentable
        );
    }

    #[test]
    fn slack_qubo_minimum_is_feasible_optimum() {
        let cqm = knapsackish();
        let cfg = PenaltyConfig::auto(&cqm, 2.0, PenaltyStyle::Slack);
        let bqm = to_bqm(&cqm, &cfg).unwrap();
        assert!(bqm.num_vars() > cqm.num_vars(), "slacks were added");
        let (state, _) = enumerate_min(&bqm, bqm.num_vars());
        let orig = &state[..cqm.num_vars()];
        assert!(
            cqm.is_feasible(orig),
            "qubo minimum decodes feasible: {orig:?}"
        );
        // Feasible optimum: x = (0,1,1) or (1,0,1) giving objective 0... cap
        // forbids x0=x1=1 with x0 weighted 2 only when sum 3 > 2.
        assert_eq!(cqm.objective(orig), 0.0);
    }

    #[test]
    fn unbalanced_qubo_keeps_variable_count() {
        let cqm = knapsackish();
        let cfg = PenaltyConfig {
            eq_weight: 50.0,
            le_weight: 50.0,
            style: PenaltyStyle::Unbalanced {
                l1: 0.96,
                l2: 0.0331,
            },
        };
        let bqm = to_bqm(&cqm, &cfg).unwrap();
        assert_eq!(bqm.num_vars(), cqm.num_vars());
        let (state, _) = enumerate_min(&bqm, bqm.num_vars());
        assert!(
            cqm.is_feasible(&state),
            "unbalanced minimum feasible: {state:?}"
        );
    }

    #[test]
    fn squared_expansion_matches_direct_evaluation() {
        let mut expr = LinearExpr::new();
        expr.add_term(Var(0), 3.0)
            .add_term(Var(1), -2.0)
            .add_constant(1.0);
        let mut bqm = BinaryQuadraticModel::new(2);
        add_squared_expansion(&mut bqm, &expr, -2.0, 1.5);
        for bits in 0..4u8 {
            let state = [bits & 1, (bits >> 1) & 1];
            let v = expr.value(&state) - 2.0;
            assert!((bqm.energy(&state) - 1.5 * v * v).abs() < 1e-12);
        }
    }

    #[test]
    fn slack_augmentation_integral_uses_bounded_encoding() {
        let mut cqm = Cqm::new(2);
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 3.0).add_term(Var(1), 2.0);
        cqm.add_constraint(e, Sense::Le, 5.0, "c");
        let aug = augment_slacks(&cqm);
        // range = 5 → C(5) = {2,1,2}? C(5): f=2, powers {2,1}, residual 5-4+1=2.
        assert_eq!(
            aug.cqm.num_vars() - aug.first_slack,
            CoefficientSet::new(5).len()
        );
        assert_eq!(aug.cqm.num_le_constraints(), 0);
        assert_eq!(aug.cqm.num_eq_constraints(), 1);
        // Any original-feasible point extends to a slack assignment with 0 violation.
        let c = &aug.cqm.constraints[0];
        // x = (1,1): lhs 5 → slack 0 → satisfied.
        let mut state = vec![0u8; aug.cqm.num_vars()];
        state[0] = 1;
        state[1] = 1;
        assert_eq!(c.violation(&state), 0.0);
    }

    #[test]
    fn infeasible_le_left_visible() {
        let mut cqm = Cqm::new(1);
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 1.0).add_constant(5.0);
        cqm.add_constraint(e, Sense::Le, 2.0, "never");
        let aug = augment_slacks(&cqm);
        assert_eq!(aug.cqm.num_le_constraints(), 1, "kept as-is");
        assert!(aug.cqm.total_violation(&[0]) > 0.0);
    }
}
