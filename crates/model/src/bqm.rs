//! Binary quadratic models (QUBO) and the Ising view.
//!
//! `E(x) = Σ_i h_i x_i + Σ_{i<j} J_ij x_i x_j + offset`, `x ∈ {0,1}ⁿ`.
//!
//! The quadratic terms are stored as symmetric adjacency lists so flip deltas
//! are O(degree). A [`BinaryQuadraticModel`] is what the CQM penalty
//! conversion in [`crate::penalty`] produces, and is also the natural input
//! for the Ising-based simulated quantum annealer.

use serde::{Deserialize, Serialize};

use crate::expr::Var;

/// A QUBO: linear biases, symmetric quadratic couplings, constant offset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BinaryQuadraticModel {
    linear: Vec<f64>,
    /// `adj[i]` lists `(j, J_ij)` for every neighbour `j` of `i` (both
    /// directions are stored; the coupling is counted once in the energy).
    adj: Vec<Vec<(u32, f64)>>,
    offset: f64,
}

impl BinaryQuadraticModel {
    /// A model with `n` variables and all-zero biases.
    pub fn new(n: usize) -> Self {
        Self {
            linear: vec![0.0; n],
            adj: vec![Vec::new(); n],
            offset: 0.0,
        }
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.linear.len()
    }

    /// Constant energy offset.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Adds to the constant offset.
    pub fn add_offset(&mut self, c: f64) {
        self.offset += c;
    }

    /// Adds `c · x_v` to the model.
    pub fn add_linear(&mut self, v: Var, c: f64) {
        self.linear[v.index()] += c;
    }

    /// Linear bias of `v`.
    pub fn linear(&self, v: Var) -> f64 {
        self.linear[v.index()]
    }

    /// Adds `c · x_u x_v` to the model (`u != v`). Repeated calls accumulate.
    ///
    /// For `u == v`, `x² = x` for binaries, so the coupling folds into the
    /// linear bias.
    pub fn add_quadratic(&mut self, u: Var, v: Var, c: f64) {
        if c == 0.0 {
            return;
        }
        if u == v {
            self.add_linear(u, c);
            return;
        }
        // Accumulate into an existing entry when present to bound degree.
        match self.adj[u.index()].iter_mut().find(|(j, _)| *j == v.0) {
            Some(slot) => {
                slot.1 += c;
                let back = self.adj[v.index()]
                    .iter_mut()
                    .find(|(j, _)| *j == u.0)
                    .expect("symmetric adjacency"); // qlrb-lint: allow(no-unwrap)
                back.1 += c;
            }
            None => {
                self.adj[u.index()].push((v.0, c));
                self.adj[v.index()].push((u.0, c));
            }
        }
    }

    /// Neighbours of `v` with coupling strengths.
    pub fn neighbours(&self, v: Var) -> &[(u32, f64)] {
        &self.adj[v.index()]
    }

    /// Total number of (undirected) couplings.
    pub fn num_interactions(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Full energy of a 0/1 assignment.
    pub fn energy(&self, state: &[u8]) -> f64 {
        debug_assert_eq!(state.len(), self.num_vars());
        let mut e = self.offset;
        for (i, (&h, row)) in self.linear.iter().zip(&self.adj).enumerate() {
            if state[i] == 0 {
                continue;
            }
            e += h;
            for &(j, c) in row {
                // Count each pair once.
                if (j as usize) > i && state[j as usize] != 0 {
                    e += c;
                }
            }
        }
        e
    }

    /// Energy change if `v` were flipped in `state` (without flipping it).
    pub fn flip_delta(&self, state: &[u8], v: Var) -> f64 {
        let i = v.index();
        let mut field = self.linear[i];
        for &(j, c) in &self.adj[i] {
            if state[j as usize] != 0 {
                field += c;
            }
        }
        if state[i] == 0 {
            field
        } else {
            -field
        }
    }

    /// Converts to an Ising model `E(s) = Σ h'_i s_i + Σ J'_ij s_i s_j + off`,
    /// `s ∈ {−1,+1}`, via `x = (s+1)/2`. Returns `(h, couplings, offset)`
    /// where `couplings` lists each pair once as `(i, j, J'_ij)` with `i<j`.
    pub fn to_ising(&self) -> (Vec<f64>, Vec<(u32, u32, f64)>, f64) {
        let n = self.num_vars();
        let mut h = vec![0.0; n];
        let mut couplings = Vec::with_capacity(self.num_interactions());
        let mut offset = self.offset;
        for (i, &hi) in self.linear.iter().enumerate() {
            h[i] += hi / 2.0;
            offset += hi / 2.0;
        }
        for (i, row) in self.adj.iter().enumerate() {
            for &(j, c) in row {
                if (j as usize) > i {
                    couplings.push((i as u32, j, c / 4.0));
                    h[i] += c / 4.0;
                    h[j as usize] += c / 4.0;
                    offset += c / 4.0;
                }
            }
        }
        (h, couplings, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> BinaryQuadraticModel {
        let mut bqm = BinaryQuadraticModel::new(3);
        bqm.add_linear(Var(0), 1.0);
        bqm.add_linear(Var(1), -2.0);
        bqm.add_quadratic(Var(0), Var(1), 3.0);
        bqm.add_quadratic(Var(1), Var(2), -1.0);
        bqm.add_offset(0.5);
        bqm
    }

    #[test]
    fn energy_by_hand() {
        let bqm = sample();
        assert_eq!(bqm.energy(&[0, 0, 0]), 0.5);
        assert_eq!(bqm.energy(&[1, 0, 0]), 1.5);
        assert_eq!(bqm.energy(&[1, 1, 0]), 1.0 - 2.0 + 3.0 + 0.5);
        assert_eq!(bqm.energy(&[0, 1, 1]), -2.0 - 1.0 + 0.5);
    }

    #[test]
    fn self_coupling_folds_into_linear() {
        let mut bqm = BinaryQuadraticModel::new(1);
        bqm.add_quadratic(Var(0), Var(0), 2.0);
        assert_eq!(bqm.linear(Var(0)), 2.0);
        assert_eq!(bqm.num_interactions(), 0);
    }

    #[test]
    fn repeated_couplings_accumulate() {
        let mut bqm = BinaryQuadraticModel::new(2);
        bqm.add_quadratic(Var(0), Var(1), 1.0);
        bqm.add_quadratic(Var(1), Var(0), 2.0);
        assert_eq!(bqm.num_interactions(), 1);
        assert_eq!(bqm.energy(&[1, 1]), 3.0);
    }

    #[test]
    fn flip_delta_matches_energy_difference() {
        let bqm = sample();
        for bits in 0..8u8 {
            let state = [bits & 1, (bits >> 1) & 1, (bits >> 2) & 1];
            for v in 0..3 {
                let mut flipped = state;
                flipped[v] ^= 1;
                let expect = bqm.energy(&flipped) - bqm.energy(&state);
                let got = bqm.flip_delta(&state, Var(v as u32));
                assert!((expect - got).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ising_roundtrip_energy() {
        let bqm = sample();
        let (h, couplings, offset) = bqm.to_ising();
        for bits in 0..8u8 {
            let state = [bits & 1, (bits >> 1) & 1, (bits >> 2) & 1];
            let spins: Vec<f64> = state
                .iter()
                .map(|&b| if b == 1 { 1.0 } else { -1.0 })
                .collect();
            let mut e = offset;
            for (i, &hi) in h.iter().enumerate() {
                e += hi * spins[i];
            }
            for &(i, j, c) in &couplings {
                e += c * spins[i as usize] * spins[j as usize];
            }
            assert!(
                (e - bqm.energy(&state)).abs() < 1e-12,
                "state {state:?}: ising {e} vs qubo {}",
                bqm.energy(&state)
            );
        }
    }

    proptest! {
        #[test]
        fn random_flip_deltas_consistent(
            seedbits in proptest::collection::vec(0u8..=1, 6),
            hs in proptest::collection::vec(-5.0f64..5.0, 6),
        ) {
            let mut bqm = BinaryQuadraticModel::new(6);
            for (i, &h) in hs.iter().enumerate() {
                bqm.add_linear(Var(i as u32), h);
            }
            for i in 0..6u32 {
                for j in (i + 1)..6 {
                    bqm.add_quadratic(Var(i), Var(j), (i as f64) - (j as f64) / 2.0);
                }
            }
            let state = seedbits.clone();
            for v in 0..6 {
                let mut flipped = state.clone();
                flipped[v] ^= 1;
                let expect = bqm.energy(&flipped) - bqm.energy(&state);
                let got = bqm.flip_delta(&state, Var(v as u32));
                prop_assert!((expect - got).abs() < 1e-9);
            }
        }
    }
}
